//! Table 1: minimum perplexity achieved by each method family.
//!
//! Paper ranking: LDA 8.5 < LSTM 11.6 < n-grams 15.5 < unigram BOW 19.5.

use crate::experiments::{fig1_lstm, fig2_lda};
use crate::ExpScale;
use hlm_engine::ModelSpec;
use hlm_eval::report::{fmt_f, Table};
use hlm_lda::document_completion_perplexity;
use hlm_ngram::NgramConfig;

/// Minimum perplexity per method family.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Family label.
    pub method: String,
    /// Best test perplexity across the family's parameter grid.
    pub min_perplexity: f64,
}

/// Computes the Table-1 entries.
pub fn compute(scale: &ExpScale) -> Vec<MethodResult> {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);

    // LDA: best over 2/3/4 topics with binary input (the paper's winners).
    let train_docs = hlm_core::representations::binary_docs(&corpus, &split.train);
    let test_docs = hlm_core::representations::binary_docs(&corpus, &split.test);
    let lda_best = [2usize, 3, 4]
        .iter()
        .map(|&k| {
            eprintln!("[table1] LDA {k} topics…");
            let m = fig2_lda::train_lda(scale, &corpus, &train_docs, k);
            document_completion_perplexity(&m, &test_docs)
        })
        .fold(f64::INFINITY, f64::min);

    // LSTM: the paper's best architecture (1 layer, 200 nodes).
    let train_seqs = fig1_lstm::sequences(&corpus, &split.train);
    let valid_seqs = fig1_lstm::sequences(&corpus, &split.valid);
    let test_seqs = fig1_lstm::sequences(&corpus, &split.test);
    eprintln!("[table1] LSTM 1 layer × 200 nodes…");
    let lstm = fig1_lstm::train_and_eval(
        scale,
        corpus.vocab().len(),
        200,
        1,
        &train_seqs,
        &valid_seqs,
        &test_seqs,
    );

    // N-grams: best of bigram / trigram, trained through the engine.
    let m = corpus.vocab().len();
    let ngram_ppl = |cfg: NgramConfig| {
        ModelSpec::Ngram(cfg)
            .fit_sequences(&train_seqs, &[])
            .expect("valid n-gram spec")
            .perplexity(&test_seqs)
            .expect("n-grams support perplexity")
    };
    let ngram_best = [NgramConfig::bigram(m), NgramConfig::trigram(m)]
        .into_iter()
        .map(ngram_ppl)
        .fold(f64::INFINITY, f64::min);

    // Unigram bag-of-words.
    let unigram = ngram_ppl(NgramConfig::unigram(m));

    let mut results = vec![
        MethodResult {
            method: "LDA".into(),
            min_perplexity: lda_best,
        },
        MethodResult {
            method: "LSTM".into(),
            min_perplexity: lstm,
        },
        MethodResult {
            method: "N-grams".into(),
            min_perplexity: ngram_best,
        },
        MethodResult {
            method: "Unigram 'bag of words'".into(),
            min_perplexity: unigram,
        },
    ];
    results.sort_by(|a, b| {
        a.min_perplexity
            .partial_cmp(&b.min_perplexity)
            .expect("finite perplexities")
    });
    results
}

/// Runs the experiment and renders Table 1.
pub fn run(scale: &ExpScale) -> Vec<Table> {
    let results = compute(scale);
    let mut t = Table::new(
        format!(
            "Table 1 — minimum perplexities achieved by each method (scale: {})",
            scale.name
        ),
        &["rank", "method name", "min. perplexity"],
    );
    for (i, r) in results.iter().enumerate() {
        t.add_row(vec![
            (i + 1).to_string(),
            r.method.clone(),
            fmt_f(r.min_perplexity, 2),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline ranking of the paper, end-to-end at smoke scale: LDA
    /// beats the sequence models, which beat the unigram baseline.
    #[test]
    fn ranking_matches_paper() {
        let mut scale = ExpScale::smoke();
        scale.n_companies = 500;
        scale.lda_iters = 80;
        scale.lstm_epochs = 3;
        let results = compute(&scale);
        let rank: Vec<&str> = results.iter().map(|r| r.method.as_str()).collect();
        assert_eq!(rank[0], "LDA", "LDA must rank first: {results:?}");
        assert_eq!(
            rank[3], "Unigram 'bag of words'",
            "unigram must rank last: {results:?}"
        );
        // LDA should win by a clear margin over the unigram baseline.
        assert!(results[0].min_perplexity * 1.3 < results[3].min_perplexity);
    }
}
