//! One module per reproduced table/figure (see DESIGN.md §4).

pub mod ablations;
pub mod fig1_lstm;
pub mod fig2_lda;
pub mod fig3_fig4_recommendation;
pub mod fig5_fig6_bpmf;
pub mod fig7_silhouette;
pub mod fig8_fig9_tsne;
pub mod sequentiality;
pub mod table1;
