//! Ablations of the design choices called out in DESIGN.md §5.

use crate::experiments::fig1_lstm::sequences;
use crate::experiments::fig2_lda::train_lda;
use crate::ExpScale;
use hlm_chh::{ExactChh, StreamingChh};
use hlm_core::{neighbor_label_agreement, DistanceMetric};
use hlm_engine::{fit_lda, LdaEstimator, ModelSpec};
use hlm_eval::report::{fmt_f, Table};
use hlm_lda::{document_completion_perplexity, LdaConfig};
use hlm_ngram::NgramConfig;

/// LDA ablation: Gibbs sweep count vs held-out perplexity (convergence).
pub fn lda_sweeps(scale: &ExpScale) -> Table {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let train = hlm_core::representations::binary_docs(&corpus, &split.train);
    let test = hlm_core::representations::binary_docs(&corpus, &split.test);
    let mut t = Table::new(
        "Ablation — LDA Gibbs sweeps vs test perplexity (3 topics)",
        &["sweeps", "test perplexity"],
    );
    for iters in [10usize, 30, 60, 120, 240] {
        let cfg = LdaConfig {
            n_topics: 3,
            vocab_size: corpus.vocab().len(),
            n_iters: iters,
            burn_in: iters / 2,
            sample_lag: 2,
            seed: scale.seed,
            alpha: None,
            beta: 0.1,
            ..Default::default()
        };
        let model = fit_lda(cfg, LdaEstimator::Gibbs, &train).expect("valid LDA spec");
        t.add_row(vec![
            iters.to_string(),
            fmt_f(document_completion_perplexity(&model, &test), 3),
        ]);
    }
    t
}

/// N-gram ablation: interpolation weights vs perplexity (trigram model).
pub fn ngram_lambdas(scale: &ExpScale) -> Table {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let train = sequences(&corpus, &split.train);
    let test = sequences(&corpus, &split.test);
    let m = corpus.vocab().len();
    let mut t = Table::new(
        "Ablation — trigram interpolation weights vs test perplexity",
        &["lambdas (uni, bi, tri)", "test perplexity"],
    );
    for (label, lambdas) in [
        ("default 2^o", None),
        ("uniform", Some(vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0])),
        ("unigram-heavy", Some(vec![0.8, 0.1, 0.1])),
        ("trigram-heavy", Some(vec![0.05, 0.15, 0.8])),
    ] {
        let cfg = NgramConfig {
            order: 3,
            vocab_size: m,
            lambdas,
            add_k: 0.5,
        };
        let ppl = ModelSpec::Ngram(cfg)
            .fit_sequences(&train, &[])
            .expect("valid n-gram spec")
            .perplexity(&test)
            .expect("n-grams support perplexity");
        t.add_row(vec![label.to_string(), fmt_f(ppl, 3)]);
    }
    t
}

/// CHH ablation: exact tables vs budgeted streaming sketch — agreement of
/// the strongest rules and memory (tracked contexts).
pub fn chh_budget(scale: &ExpScale) -> Table {
    let corpus = scale.corpus();
    let ids: Vec<_> = corpus.ids().collect();
    let seqs: Vec<Vec<usize>> = corpus
        .sequences_for(&ids)
        .into_iter()
        .map(|s| s.into_iter().map(|p| p.index()).collect())
        .collect();
    let m = corpus.vocab().len();
    // Train both variants through the engine; the heavy-hitter diagnostics
    // need the concrete models, reached via `as_any` downcasts.
    let exact_trained = ModelSpec::ChhExact {
        depth: 2,
        vocab_size: m,
    }
    .fit_sequences(&seqs, &[])
    .expect("valid CHH spec");
    let exact = exact_trained
        .as_any()
        .downcast_ref::<ExactChh>()
        .expect("concrete ExactChh");
    let exact_top = exact.heavy_hitters(2, 0.2, 10);

    let mut t = Table::new(
        "Ablation — exact vs streaming CHH (depth 2, min prob 0.2, min support 10)",
        &[
            "variant",
            "tracked contexts",
            "heavy hitters found",
            "top-20 overlap with exact",
        ],
    );
    t.add_row(vec![
        "exact".into(),
        exact.context_count().to_string(),
        exact_top.len().to_string(),
        "1.000".into(),
    ]);
    for budget in [64usize, 256, 1024] {
        let stream_trained = ModelSpec::ChhStreaming {
            depth: 2,
            vocab_size: m,
            max_contexts: budget,
            counters_per_context: 8,
        }
        .fit_sequences(&seqs, &[])
        .expect("valid streaming CHH spec");
        let stream = stream_trained
            .as_any()
            .downcast_ref::<StreamingChh>()
            .expect("concrete StreamingChh");
        let stream_top = stream.heavy_hitters(0.2, 10);
        let key = |h: &hlm_chh::ConditionalHeavyHitter| (h.context.clone(), h.item);
        let exact_keys: std::collections::HashSet<_> = exact_top.iter().take(20).map(key).collect();
        let overlap = stream_top
            .iter()
            .take(20)
            .filter(|h| exact_keys.contains(&key(h)))
            .count() as f64
            / exact_keys.len().max(1) as f64;
        t.add_row(vec![
            format!("streaming (budget {budget})"),
            stream.context_count().to_string(),
            stream_top.len().to_string(),
            fmt_f(overlap, 3),
        ]);
    }
    t
}

/// Representation ablation: nearest-neighbour profile agreement per feature
/// space (the similarity-search design choice of Section 6).
pub fn representation_quality(scale: &ExpScale) -> Table {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let sample: Vec<_> = split
        .train
        .iter()
        .copied()
        .take(scale.silhouette_sample)
        .collect();
    let labels: Vec<usize> = sample
        .iter()
        .map(|&id| corpus.company(id).industry.0 as usize % 3)
        .collect();
    let tfidf = hlm_corpus::tfidf::TfIdf::fit(&corpus, &split.train);

    let docs = hlm_core::representations::binary_docs(&corpus, &sample);
    let lda = train_lda(scale, &corpus, &docs, 3);

    let binary = hlm_core::representations::raw_binary(&corpus, &sample);
    let spaces: Vec<(&str, hlm_linalg::Matrix)> = vec![
        (
            "raw TF-IDF",
            hlm_core::representations::raw_tfidf(&corpus, &sample, &tfidf),
        ),
        (
            "LDA3 topics",
            hlm_core::representations::lda_representations(&lda, &docs),
        ),
        (
            "LSI rank 3",
            hlm_core::representations::lsi_representations(&binary, 3, scale.seed)
                .expect("rank 3 fits the matrix"),
        ),
        (
            "Fisher vectors (GMM-3 over LDA3 product embeddings)",
            hlm_core::representations::fisher_representations(
                &corpus,
                &sample,
                &lda.product_embeddings(),
                3,
                scale.seed,
            )
            .expect("embeddings cover the vocabulary"),
        ),
        ("raw binary", binary),
    ];
    let mut t = Table::new(
        "Ablation — nearest-neighbour latent-profile agreement per representation",
        &["representation", "cosine", "euclidean"],
    );
    for (name, m) in &spaces {
        t.add_row(vec![
            name.to_string(),
            fmt_f(
                neighbor_label_agreement(m, &labels, DistanceMetric::Cosine),
                3,
            ),
            fmt_f(
                neighbor_label_agreement(m, &labels, DistanceMetric::Euclidean),
                3,
            ),
        ]);
    }
    t
}

/// LDA inference ablation: fold-in EM vs fold-in Gibbs θ estimates.
pub fn lda_inference(scale: &ExpScale) -> Table {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let train = hlm_core::representations::binary_docs(&corpus, &split.train);
    let test = hlm_core::representations::binary_docs(&corpus, &split.test);
    let model = train_lda(scale, &corpus, &train, 3);

    let mut max_l1 = 0.0f64;
    let mut mean_l1 = 0.0f64;
    let mut n = 0usize;
    for doc in test.iter().take(100) {
        if doc.is_empty() {
            continue;
        }
        let em = model.infer_theta(doc);
        let gibbs = model.infer_theta_gibbs(doc, 400, 100, scale.seed);
        let l1: f64 = em.iter().zip(&gibbs).map(|(a, b)| (a - b).abs()).sum();
        max_l1 = max_l1.max(l1);
        mean_l1 += l1;
        n += 1;
    }
    mean_l1 /= n.max(1) as f64;

    let mut t = Table::new(
        "Ablation — LDA fold-in inference: EM vs Gibbs θ estimates (100 test companies)",
        &["statistic", "L1 difference"],
    );
    t.add_row(vec!["mean".into(), fmt_f(mean_l1, 4)]);
    t.add_row(vec!["max".into(), fmt_f(max_l1, 4)]);
    t
}

/// LDA prior ablation: fixed symmetric alphas vs Minka's fixed-point
/// estimate (3 topics, binary input).
pub fn lda_alpha(scale: &ExpScale) -> Table {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let train = hlm_core::representations::binary_docs(&corpus, &split.train);
    let test = hlm_core::representations::binary_docs(&corpus, &split.test);
    let mut t = Table::new(
        "Ablation — LDA document-topic prior (3 topics)",
        &["alpha", "effective alpha after fit", "test perplexity"],
    );
    let base = LdaConfig {
        n_topics: 3,
        vocab_size: corpus.vocab().len(),
        n_iters: scale.lda_iters,
        burn_in: scale.lda_iters / 2,
        sample_lag: 5,
        seed: scale.seed,
        alpha: None,
        beta: 0.1,
        ..Default::default()
    };
    for (label, alpha, optimize) in [
        ("1/K (default)", None, false),
        ("0.05", Some(0.05), false),
        ("1.0", Some(1.0), false),
        ("50/K (Griffiths-Steyvers)", Some(50.0 / 3.0), false),
        ("Minka fixed-point (init 1.0)", Some(1.0), true),
    ] {
        let cfg = LdaConfig {
            alpha,
            optimize_alpha: optimize,
            ..base.clone()
        };
        let model = fit_lda(cfg, LdaEstimator::Gibbs, &train).expect("valid LDA spec");
        t.add_row(vec![
            label.to_string(),
            fmt_f(model.alpha(), 4),
            fmt_f(document_completion_perplexity(&model, &test), 3),
        ]);
    }
    t
}

/// Estimator ablation: collapsed Gibbs vs variational Bayes (the gensim
/// estimator the paper actually ran) on identical data.
pub fn gibbs_vs_vb(scale: &ExpScale) -> Table {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let train = hlm_core::representations::binary_docs(&corpus, &split.train);
    let test = hlm_core::representations::binary_docs(&corpus, &split.test);
    let cfg = LdaConfig {
        n_topics: 3,
        vocab_size: corpus.vocab().len(),
        n_iters: scale.lda_iters,
        burn_in: scale.lda_iters / 2,
        sample_lag: 5,
        seed: scale.seed,
        alpha: None,
        beta: 0.1,
        ..Default::default()
    };
    let gibbs = fit_lda(cfg.clone(), LdaEstimator::Gibbs, &train).expect("valid LDA spec");
    let vb = fit_lda(cfg, LdaEstimator::Vb, &train).expect("valid LDA spec");
    let mut t = Table::new(
        "Ablation — LDA estimator: collapsed Gibbs vs variational Bayes (3 topics)",
        &["estimator", "test perplexity"],
    );
    t.add_row(vec![
        "collapsed Gibbs".into(),
        fmt_f(document_completion_perplexity(&gibbs, &test), 3),
    ]);
    t.add_row(vec![
        "variational Bayes".into(),
        fmt_f(document_completion_perplexity(&vb, &test), 3),
    ]);
    t
}

/// RNN-cell ablation: GRU vs LSTM test perplexity at the same width — the
/// Section-3.4 discussion ("GRUs … do not outperform LSTM in general").
pub fn gru_vs_lstm(scale: &ExpScale) -> Table {
    use hlm_lstm::{AdamOptions, CellKind, LstmConfig, LstmLm, TrainOptions};
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let train = sequences(&corpus, &split.train);
    let valid = sequences(&corpus, &split.valid);
    let test = sequences(&corpus, &split.test);
    let m = corpus.vocab().len();

    let mut t = Table::new(
        "Ablation — recurrent cell family (1 layer × 100 nodes)",
        &["cell", "parameters", "test perplexity"],
    );
    for (label, cell) in [("LSTM", CellKind::Lstm), ("GRU", CellKind::Gru)] {
        eprintln!("[ablations] training {label}…");
        let spec = ModelSpec::Lstm {
            config: LstmConfig {
                vocab_size: m,
                hidden_size: 100,
                n_layers: 1,
                dropout: 0.2,
                cell,
            },
            train: TrainOptions {
                epochs: scale.lstm_epochs,
                batch_size: 16,
                adam: AdamOptions {
                    learning_rate: 5e-3,
                    ..Default::default()
                },
                patience: 3,
                seed: scale.seed,
                verbose: false,
                ..Default::default()
            },
            seed: scale.seed,
        };
        let trained = spec.fit_sequences(&train, &valid).expect("valid LSTM spec");
        let params = trained
            .as_any()
            .downcast_ref::<LstmLm>()
            .expect("concrete LstmLm")
            .parameter_count();
        t.add_row(vec![
            label.to_string(),
            params.to_string(),
            fmt_f(
                trained.perplexity(&test).expect("LSTM supports perplexity"),
                3,
            ),
        ]);
    }
    t
}

/// LSI baseline: silhouette of k-means clusters on truncated-SVD company
/// embeddings vs LDA topic mixtures (Section 3.5's interpretability
/// trade-off — LSI features work but are not interpretable).
pub fn lsi_vs_lda(scale: &ExpScale) -> Table {
    use hlm_cluster::{kmeans, silhouette_score, KmeansOptions};
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let sample: Vec<_> = split
        .train
        .iter()
        .copied()
        .take(scale.silhouette_sample)
        .collect();
    let binary = hlm_core::representations::raw_binary(&corpus, &sample);
    let docs = hlm_core::representations::binary_docs(&corpus, &sample);
    let lda = train_lda(scale, &corpus, &docs, 3);
    let lda_b = hlm_core::representations::lda_representations(&lda, &docs);
    let lsi = hlm_core::representations::lsi_representations(&binary, 3, scale.seed)
        .expect("rank 3 fits the matrix");

    let mut t = Table::new(
        "Ablation — LSI (rank-3 SVD) vs LDA3 company features",
        &["representation", "silhouette @ k=10", "silhouette @ k=30"],
    );
    let sil = |m: &hlm_linalg::Matrix, k: usize| {
        let res = kmeans(m, &KmeansOptions::new(k));
        silhouette_score(m, &res.assignments)
    };
    for (name, m) in [
        ("raw binary", &binary),
        ("LSI rank 3", &lsi),
        ("LDA3 topics", &lda_b),
    ] {
        t.add_row(vec![
            name.to_string(),
            fmt_f(sil(m, 10), 3),
            fmt_f(sil(m, 30), 3),
        ]);
    }
    t
}

/// Co-clustering failure (Section 3.1): spectral co-clustering of the raw
/// binary matrix concentrates popular products in the dominant co-cluster.
pub fn cocluster_failure(scale: &ExpScale) -> Table {
    use hlm_cluster::spectral_cocluster;
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let sample: Vec<_> = split
        .train
        .iter()
        .copied()
        .take(scale.silhouette_sample)
        .collect();
    let binary = hlm_core::representations::raw_binary(&corpus, &sample);
    let cc = spectral_cocluster(&binary, 5, scale.seed);

    // Popularity rank of each product (0 = most popular).
    let df = corpus.document_frequencies();
    let mut order: Vec<usize> = (0..df.len()).collect();
    order.sort_by_key(|&p| std::cmp::Reverse(df[p]));
    let mut rank = vec![0usize; df.len()];
    for (r, &p) in order.iter().enumerate() {
        rank[p] = r;
    }

    let mut t = Table::new(
        "Section 3.1 check — spectral co-clustering of the raw binary matrix (5 co-clusters)",
        &[
            "co-cluster",
            "companies",
            "products",
            "mean popularity rank of products (0 = most popular)",
        ],
    );
    let sizes = cc.sizes();
    for (c, &(rows, cols)) in sizes.iter().enumerate() {
        let cols_of = cc.columns_of(c);
        let mean_rank = if cols_of.is_empty() {
            f64::NAN
        } else {
            cols_of.iter().map(|&p| rank[p] as f64).sum::<f64>() / cols_of.len() as f64
        };
        t.add_row(vec![
            c.to_string(),
            rows.to_string(),
            cols.to_string(),
            fmt_f(mean_rank, 1),
        ]);
    }
    t
}

/// Runs every ablation.
pub fn run(scale: &ExpScale) -> Vec<Table> {
    eprintln!("[ablations] LDA sweep convergence…");
    let a = lda_sweeps(scale);
    eprintln!("[ablations] n-gram interpolation weights…");
    let b = ngram_lambdas(scale);
    eprintln!("[ablations] CHH budgets…");
    let c = chh_budget(scale);
    eprintln!("[ablations] representation quality…");
    let d = representation_quality(scale);
    eprintln!("[ablations] LDA inference…");
    let e = lda_inference(scale);
    eprintln!("[ablations] LDA alpha priors…");
    let a2 = lda_alpha(scale);
    eprintln!("[ablations] Gibbs vs VB…");
    let a3 = gibbs_vs_vb(scale);
    eprintln!("[ablations] GRU vs LSTM…");
    let f = gru_vs_lstm(scale);
    eprintln!("[ablations] LSI vs LDA…");
    let g = lsi_vs_lda(scale);
    eprintln!("[ablations] co-clustering failure…");
    let h = cocluster_failure(scale);
    vec![a, a2, a3, b, c, d, e, f, g, h]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_run_at_smoke_scale() {
        let mut scale = ExpScale::smoke();
        scale.n_companies = 250;
        scale.lda_iters = 40;
        scale.silhouette_sample = 120;
        let tables = run(&scale);
        assert_eq!(tables.len(), 10);
        for t in &tables {
            assert!(!t.is_empty());
        }
    }
}
