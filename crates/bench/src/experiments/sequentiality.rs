//! Section-5 baseline statistics: the sequentiality check quoted from [19]
//! (69% of bigrams / 43% of trigrams significantly non-i.i.d. on the HG
//! corpus) and the n-gram perplexity baselines (unigram 19.5, n-gram
//! ≥ 15.5).

use crate::experiments::fig1_lstm::sequences;
use crate::ExpScale;
use hlm_eval::report::{fmt_f, Table};
use hlm_eval::sequentiality_report;
use hlm_ngram::{NgramConfig, NgramLm};

/// Runs the sequentiality test and the baseline perplexities.
pub fn run(scale: &ExpScale) -> Vec<Table> {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let ids: Vec<_> = corpus.ids().collect();
    let product_seqs = corpus.sequences_for(&ids);

    let mut seq_table = Table::new(
        format!("Sequentiality of product time series (scale: {})", scale.name),
        &["order", "distinct n-grams", "significant (p < 0.05)", "fraction"],
    );
    for order in [2usize, 3] {
        let rep = sequentiality_report(&product_seqs, order, 0.05);
        seq_table.add_row(vec![
            order.to_string(),
            rep.distinct_ngrams.to_string(),
            rep.significant.to_string(),
            fmt_f(rep.significant_fraction, 3),
        ]);
    }

    let train = sequences(&corpus, &split.train);
    let test = sequences(&corpus, &split.test);
    let m = corpus.vocab().len();
    let mut ppl_table = Table::new(
        format!("Baseline n-gram perplexities on test data (scale: {})", scale.name),
        &["model", "test perplexity"],
    );
    for (name, cfg) in [
        ("unigram 'bag of words'", NgramConfig::unigram(m)),
        ("bigram", NgramConfig::bigram(m)),
        ("trigram", NgramConfig::trigram(m)),
    ] {
        let ppl = NgramLm::fit(cfg, &train).perplexity(&test);
        ppl_table.add_row(vec![name.to_string(), fmt_f(ppl, 2)]);
    }
    vec![seq_table, ppl_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_corpus_is_significantly_sequential() {
        let mut scale = ExpScale::smoke();
        scale.n_companies = 500;
        let corpus = scale.corpus();
        let ids: Vec<_> = corpus.ids().collect();
        let seqs = corpus.sequences_for(&ids);

        let bi = sequentiality_report(&seqs, 2, 0.05);
        let tri = sequentiality_report(&seqs, 3, 0.05);
        // The paper's corpus: 69% / 43% at 860k companies. The
        // scale-independent claim is that both fractions sit far above the
        // 5% false-positive rate an i.i.d. stream would produce (the exact
        // bigram/trigram ordering depends on corpus size — see
        // EXPERIMENTS.md).
        assert!(
            bi.significant_fraction > 0.15,
            "bigram fraction {}",
            bi.significant_fraction
        );
        assert!(
            tri.significant_fraction > 0.15,
            "trigram fraction {}",
            tri.significant_fraction
        );
    }

    #[test]
    fn ngram_perplexities_are_ordered_like_table_1() {
        let mut scale = ExpScale::smoke();
        scale.n_companies = 500;
        let corpus = scale.corpus();
        let split = scale.split(&corpus);
        let train = sequences(&corpus, &split.train);
        let test = sequences(&corpus, &split.test);
        let m = corpus.vocab().len();
        let uni = NgramLm::fit(NgramConfig::unigram(m), &train).perplexity(&test);
        let bi = NgramLm::fit(NgramConfig::bigram(m), &train).perplexity(&test);
        assert!(bi < uni, "bigram {bi} must beat unigram {uni}");
        // Popularity skew keeps the unigram well under the uniform 38.
        assert!(uni < 38.0 && uni > 5.0, "unigram perplexity {uni}");
    }
}
