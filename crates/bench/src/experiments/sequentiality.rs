//! Section-5 baseline statistics: the sequentiality check quoted from [19]
//! (69% of bigrams / 43% of trigrams significantly non-i.i.d. on the HG
//! corpus) and the n-gram perplexity baselines (unigram 19.5, n-gram
//! ≥ 15.5).

use crate::experiments::fig1_lstm::sequences;
use crate::ExpScale;
use hlm_engine::ModelSpec;
use hlm_eval::report::{fmt_f, Table};
use hlm_eval::sequentiality_report;
use hlm_ngram::NgramConfig;

/// Test perplexity of one n-gram configuration, trained via the engine.
fn ngram_perplexity(cfg: NgramConfig, train: &[Vec<usize>], test: &[Vec<usize>]) -> f64 {
    ModelSpec::Ngram(cfg)
        .fit_sequences(train, &[])
        .expect("valid n-gram spec")
        .perplexity(test)
        .expect("n-grams support perplexity")
}

/// Runs the sequentiality test and the baseline perplexities.
pub fn run(scale: &ExpScale) -> Vec<Table> {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let ids: Vec<_> = corpus.ids().collect();
    let product_seqs = corpus.sequences_for(&ids);

    let mut seq_table = Table::new(
        format!(
            "Sequentiality of product time series (scale: {})",
            scale.name
        ),
        &[
            "order",
            "distinct n-grams",
            "significant (p < 0.05)",
            "fraction",
        ],
    );
    for order in [2usize, 3] {
        let rep = sequentiality_report(&product_seqs, order, 0.05);
        seq_table.add_row(vec![
            order.to_string(),
            rep.distinct_ngrams.to_string(),
            rep.significant.to_string(),
            fmt_f(rep.significant_fraction, 3),
        ]);
    }

    let train = sequences(&corpus, &split.train);
    let test = sequences(&corpus, &split.test);
    let m = corpus.vocab().len();
    let mut ppl_table = Table::new(
        format!(
            "Baseline n-gram perplexities on test data (scale: {})",
            scale.name
        ),
        &["model", "test perplexity"],
    );
    for (name, cfg) in [
        ("unigram 'bag of words'", NgramConfig::unigram(m)),
        ("bigram", NgramConfig::bigram(m)),
        ("trigram", NgramConfig::trigram(m)),
    ] {
        let ppl = ngram_perplexity(cfg, &train, &test);
        ppl_table.add_row(vec![name.to_string(), fmt_f(ppl, 2)]);
    }
    vec![seq_table, ppl_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_corpus_is_significantly_sequential() {
        let mut scale = ExpScale::smoke();
        scale.n_companies = 500;
        let corpus = scale.corpus();
        let ids: Vec<_> = corpus.ids().collect();
        let seqs = corpus.sequences_for(&ids);

        let bi = sequentiality_report(&seqs, 2, 0.05);
        let tri = sequentiality_report(&seqs, 3, 0.05);
        // The paper's corpus: 69% / 43% at 860k companies. The
        // scale-independent claim is that both fractions sit far above the
        // 5% false-positive rate an i.i.d. stream would produce (the exact
        // bigram/trigram ordering depends on corpus size — see
        // EXPERIMENTS.md).
        assert!(
            bi.significant_fraction > 0.15,
            "bigram fraction {}",
            bi.significant_fraction
        );
        assert!(
            tri.significant_fraction > 0.15,
            "trigram fraction {}",
            tri.significant_fraction
        );
    }

    #[test]
    fn ngram_perplexities_are_ordered_like_table_1() {
        let mut scale = ExpScale::smoke();
        scale.n_companies = 500;
        let corpus = scale.corpus();
        let split = scale.split(&corpus);
        let train = sequences(&corpus, &split.train);
        let test = sequences(&corpus, &split.test);
        let m = corpus.vocab().len();
        let uni = ngram_perplexity(NgramConfig::unigram(m), &train, &test);
        let bi = ngram_perplexity(NgramConfig::bigram(m), &train, &test);
        assert!(bi < uni, "bigram {bi} must beat unigram {uni}");
        // The model's token alphabet is M + 2 (BOS/EOS share the LSTM
        // conventions), so a skew-free corpus would measure 40 here;
        // popularity skew must pull the unigram visibly below that.
        assert!(uni < 39.0 && uni > 5.0, "unigram perplexity {uni}");
    }
}
