//! Figure 2: LDA test perplexity vs number of latent topics, for binary and
//! TF-IDF inputs.
//!
//! Paper result: binary input beats TF-IDF input everywhere, and low topic
//! counts (2–4) give the lowest perplexity (8.5–8.9 on the HG corpus).

use crate::ExpScale;
use hlm_corpus::tfidf::TfIdf;
use hlm_corpus::Corpus;
use hlm_engine::LdaEstimator;
use hlm_eval::report::{fmt_f, Table};
use hlm_lda::{document_completion_perplexity, LdaConfig, LdaModel, WeightedDoc};

/// Topic counts swept (the paper's x-axis runs 2..16).
pub const TOPIC_GRID: [usize; 10] = [2, 3, 4, 5, 6, 8, 10, 12, 14, 16];

/// Trains one LDA configuration through the engine.
pub fn train_lda(
    scale: &ExpScale,
    corpus: &Corpus,
    docs: &[WeightedDoc],
    n_topics: usize,
) -> LdaModel {
    let config = LdaConfig {
        n_topics,
        vocab_size: corpus.vocab().len(),
        n_iters: scale.lda_iters,
        burn_in: scale.lda_iters / 2,
        sample_lag: 5,
        seed: scale.seed ^ n_topics as u64,
        alpha: None,
        beta: 0.1,
        ..Default::default()
    };
    hlm_engine::fit_lda(config, LdaEstimator::Gibbs, docs).expect("valid LDA spec")
}

/// Raw data point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct LdaPoint {
    /// Number of latent topics.
    pub topics: usize,
    /// Test perplexity with binary input.
    pub binary: f64,
    /// Test perplexity with TF-IDF input.
    pub tfidf: f64,
}

/// Runs the sweep and returns the raw series.
pub fn sweep(scale: &ExpScale) -> Vec<LdaPoint> {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let tfidf = TfIdf::fit(&corpus, &split.train);

    let train_bin = hlm_core::representations::binary_docs(&corpus, &split.train);
    let test_bin = hlm_core::representations::binary_docs(&corpus, &split.test);
    let train_tfidf = hlm_core::representations::tfidf_docs(&corpus, &split.train, &tfidf);
    let test_tfidf = hlm_core::representations::tfidf_docs(&corpus, &split.test, &tfidf);

    TOPIC_GRID
        .iter()
        .map(|&k| {
            eprintln!("[fig2] LDA with {k} topics…");
            let m_bin = train_lda(scale, &corpus, &train_bin, k);
            let m_tfidf = train_lda(scale, &corpus, &train_tfidf, k);
            LdaPoint {
                topics: k,
                binary: document_completion_perplexity(&m_bin, &test_bin),
                tfidf: document_completion_perplexity(&m_tfidf, &test_tfidf),
            }
        })
        .collect()
}

/// Runs the experiment and renders the Figure-2 series.
pub fn run(scale: &ExpScale) -> Vec<Table> {
    let points = sweep(scale);
    let mut t = Table::new(
        format!(
            "Figure 2 — LDA average perplexity per product on test data (scale: {})",
            scale.name
        ),
        &[
            "topics",
            "perplexity (binary input)",
            "perplexity (TF-IDF input)",
        ],
    );
    for p in &points {
        t.add_row(vec![
            p.topics.to_string(),
            fmt_f(p.binary, 3),
            fmt_f(p.tfidf, 3),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_shape_matches_paper() {
        let mut scale = ExpScale::smoke();
        scale.n_companies = 400;
        let corpus = scale.corpus();
        let split = scale.split(&corpus);
        let train = hlm_core::representations::binary_docs(&corpus, &split.train);
        let test = hlm_core::representations::binary_docs(&corpus, &split.test);

        let ppl = |k: usize| {
            let m = train_lda(&scale, &corpus, &train, k);
            document_completion_perplexity(&m, &test)
        };
        let p1 = ppl(1);
        let p3 = ppl(3);
        let p12 = ppl(12);
        // 3 topics (the planted truth) must beat the unigram-equivalent 1
        // topic; 12 topics must not beat 3 substantially.
        assert!(p3 < p1, "3 topics {p3} must beat 1 topic {p1}");
        assert!(
            p12 > p3 * 0.9,
            "12 topics {p12} should not dominate 3 topics {p3}"
        );
        assert!(p3 < 38.0, "sane perplexity bound");
    }
}
