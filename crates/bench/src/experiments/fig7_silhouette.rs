//! Figure 7: silhouette curves over the number of clusters for every
//! company representation.
//!
//! Paper results: raw binary representations score lowest; raw TF-IDF is
//! better (~0.6); LDA-on-TF-IDF better still; and LDA with raw binary input
//! and 2–4 topics produces the best-separated clusters, with 2 topics
//! winning at small cluster counts and 3–4 topics at larger ones.

use crate::experiments::fig2_lda::train_lda;
use crate::ExpScale;
use hlm_cluster::{kmeans, silhouette_score, KmeansOptions};
use hlm_corpus::tfidf::TfIdf;
use hlm_eval::report::{fmt_f, Table};
use hlm_linalg::Matrix;

/// The representations compared, in the paper's legend order.
pub const REPRESENTATIONS: [&str; 8] = [
    "raw",
    "raw_tfidf",
    "lda_2",
    "lda_3",
    "lda_4",
    "lda_7",
    "tfidf_lda_2",
    "tfidf_lda_4",
];

/// Builds all eight representation matrices for a company sample.
pub fn build_representations(scale: &ExpScale) -> Vec<(String, Matrix)> {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    // Silhouettes are O(n²): cluster a seeded sample of the training split.
    let sample: Vec<_> = split
        .train
        .iter()
        .copied()
        .take(scale.silhouette_sample)
        .collect();
    let tfidf = TfIdf::fit(&corpus, &split.train);

    let raw = hlm_core::representations::raw_binary(&corpus, &sample);
    let raw_tfidf = hlm_core::representations::raw_tfidf(&corpus, &sample, &tfidf);
    let bin_docs = hlm_core::representations::binary_docs(&corpus, &sample);
    let tf_docs = hlm_core::representations::tfidf_docs(&corpus, &sample, &tfidf);

    let mut out = vec![
        ("raw".to_string(), raw),
        ("raw_tfidf".to_string(), raw_tfidf),
    ];
    for k in [2usize, 3, 4, 7] {
        eprintln!("[fig7] LDA {k} topics (binary input)…");
        let model = train_lda(scale, &corpus, &bin_docs, k);
        out.push((
            format!("lda_{k}"),
            hlm_core::representations::lda_representations(&model, &bin_docs),
        ));
    }
    for k in [2usize, 4] {
        eprintln!("[fig7] LDA {k} topics (TF-IDF input)…");
        let model = train_lda(scale, &corpus, &tf_docs, k);
        out.push((
            format!("tfidf_lda_{k}"),
            hlm_core::representations::lda_representations(&model, &tf_docs),
        ));
    }
    out
}

/// Silhouette of k-means clusters on one representation.
pub fn silhouette_at(reps: &Matrix, k: usize, seed: u64) -> f64 {
    let res = kmeans(
        reps,
        &KmeansOptions {
            k,
            max_iters: 60,
            tol: 1e-6,
            seed,
        },
    );
    // k-means can leave fewer distinct labels than k on degenerate data;
    // silhouette needs >= 2.
    let mut distinct: Vec<usize> = res.assignments.clone();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() < 2 {
        return f64::NAN;
    }
    silhouette_score(reps, &res.assignments)
}

/// Runs the experiment and renders the Figure-7 curves.
pub fn run(scale: &ExpScale) -> Vec<Table> {
    let reps = build_representations(scale);
    let n = reps[0].1.rows();
    let counts: Vec<usize> = scale
        .cluster_counts
        .iter()
        .copied()
        .filter(|&k| k + 1 < n)
        .collect();

    let mut headers = vec!["clusters".to_string()];
    headers.extend(reps.iter().map(|(name, _)| name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        format!(
            "Figure 7 — silhouette score vs number of clusters, {} sampled companies (scale: {})",
            n, scale.name
        ),
        &header_refs,
    );
    for &k in &counts {
        eprintln!("[fig7] clustering with k = {k}…");
        let mut row = vec![k.to_string()];
        for (_, m) in &reps {
            row.push(fmt_f(silhouette_at(m, k, scale.seed), 3));
        }
        t.add_row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lda_representations_cluster_better_than_raw() {
        let mut scale = ExpScale::smoke();
        scale.n_companies = 350;
        scale.silhouette_sample = 200;
        scale.lda_iters = 80;
        let reps = build_representations(&scale);
        let get = |name: &str| &reps.iter().find(|(n, _)| n == name).expect("present").1;

        let k = 10;
        let s_raw = silhouette_at(get("raw"), k, 1);
        let s_lda3 = silhouette_at(get("lda_3"), k, 1);
        let s_tfidf = silhouette_at(get("raw_tfidf"), k, 1);
        assert!(
            s_lda3 > s_raw + 0.1,
            "lda_3 {s_lda3} must clearly beat raw {s_raw}"
        );
        assert!(
            s_lda3 > s_tfidf,
            "lda_3 {s_lda3} must beat raw_tfidf {s_tfidf}"
        );
    }

    #[test]
    fn all_eight_representations_are_built() {
        let mut scale = ExpScale::smoke();
        scale.n_companies = 200;
        scale.silhouette_sample = 100;
        scale.lda_iters = 40;
        let reps = build_representations(&scale);
        let names: Vec<&str> = reps.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, REPRESENTATIONS.to_vec());
        for (_, m) in &reps {
            assert_eq!(m.rows(), 100);
            assert!(m.is_finite());
        }
    }
}
