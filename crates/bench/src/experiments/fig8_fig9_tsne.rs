//! Figures 8 and 9: t-SNE 2-D projections of the LDA3 and LDA4 product
//! embeddings.
//!
//! Paper observation: hardware categories (`server_HW`, `storage_HW`,
//! `HW_other`, …) land close together, and business-software categories
//! (`commerce`, `media`, `collaboration`, `retail`, …) form their own
//! neighbourhood — LDA captures semantic proximity of products.

use crate::experiments::fig2_lda::train_lda;
use crate::ExpScale;
use hlm_cluster::{tsne, TsneOptions};
use hlm_eval::report::{fmt_f, Table};
use hlm_linalg::Matrix;

/// Product groups the paper calls out as co-located.
pub const HARDWARE_GROUP: [&str; 3] = ["server_HW", "storage_HW", "HW_other"];
/// Software products the paper lists as a second co-located group.
pub const SOFTWARE_GROUP: [&str; 5] = [
    "commerce",
    "media",
    "collaboration",
    "product_lifecycle",
    "retail",
];

/// t-SNE map of the product embeddings of a `k`-topic LDA model.
pub fn product_map(scale: &ExpScale, k: usize) -> (Vec<String>, Matrix) {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let docs = hlm_core::representations::binary_docs(&corpus, &split.train);
    eprintln!("[fig8/9] LDA {k} topics…");
    let model = train_lda(scale, &corpus, &docs, k);
    let embeddings = model.product_embeddings();
    // 38 points: a small learning rate keeps near-duplicate embeddings from
    // being catapulted by early exaggeration.
    let coords = tsne(
        &embeddings,
        &TsneOptions {
            perplexity: 5.0,
            n_iters: 600,
            learning_rate: 10.0,
            seed: scale.seed,
            ..Default::default()
        },
    );
    let names: Vec<String> = corpus
        .vocab()
        .iter()
        .map(|(_, name)| name.to_string())
        .collect();
    (names, coords)
}

/// Mean pairwise 2-D distance within a named product group.
pub fn group_spread(names: &[String], coords: &Matrix, group: &[&str]) -> f64 {
    let idx: Vec<usize> = group
        .iter()
        .map(|g| {
            names
                .iter()
                .position(|n| n == g)
                .expect("group product present")
        })
        .collect();
    let mut total = 0.0;
    let mut count = 0usize;
    for (a, &i) in idx.iter().enumerate() {
        for &j in &idx[a + 1..] {
            total += hlm_linalg::vector::euclidean_distance(coords.row(i), coords.row(j));
            count += 1;
        }
    }
    total / count as f64
}

/// Mean pairwise 2-D distance over all products.
pub fn overall_spread(coords: &Matrix) -> f64 {
    let n = coords.rows();
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            total += hlm_linalg::vector::euclidean_distance(coords.row(i), coords.row(j));
            count += 1;
        }
    }
    total / count as f64
}

fn figure_table(fig: &str, k: usize, scale_name: &str, names: &[String], coords: &Matrix) -> Table {
    let mut t = Table::new(
        format!("{fig} — t-SNE projection of LDA{k} product embeddings (scale: {scale_name})"),
        &["product category", "x", "y"],
    );
    for (i, name) in names.iter().enumerate() {
        t.add_row(vec![
            name.clone(),
            fmt_f(coords.get(i, 0), 2),
            fmt_f(coords.get(i, 1), 2),
        ]);
    }
    t
}

/// Runs the experiment and renders both maps plus the co-location check.
pub fn run(scale: &ExpScale) -> Vec<Table> {
    let mut out = Vec::new();
    let mut summary = Table::new(
        "Figures 8/9 — semantic co-location check (mean pairwise t-SNE distance)",
        &["model", "hardware group", "software group", "all products"],
    );
    for (fig, k) in [("Figure 8", 3usize), ("Figure 9", 4)] {
        let (names, coords) = product_map(scale, k);
        summary.add_row(vec![
            format!("LDA{k}"),
            fmt_f(group_spread(&names, &coords, &HARDWARE_GROUP), 2),
            fmt_f(group_spread(&names, &coords, &SOFTWARE_GROUP), 2),
            fmt_f(overall_spread(&coords), 2),
        ]);
        out.push(figure_table(fig, k, scale.name, &names, &coords));
    }
    out.push(summary);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_products_colocate_under_lda3() {
        let mut scale = ExpScale::smoke();
        scale.n_companies = 400;
        scale.lda_iters = 100;
        let (names, coords) = product_map(&scale, 3);
        assert_eq!(names.len(), 38);
        assert_eq!(coords.shape(), (38, 2));
        assert!(coords.is_finite());

        let hw = group_spread(&names, &coords, &HARDWARE_GROUP);
        let sw = group_spread(&names, &coords, &SOFTWARE_GROUP);
        let all = overall_spread(&coords);
        assert!(
            hw < all,
            "hardware group spread {hw} must be below overall {all}"
        );
        assert!(
            sw < all,
            "software group spread {sw} must be below overall {all}"
        );
    }
}
