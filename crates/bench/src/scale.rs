//! Experiment scale presets.

use hlm_corpus::{Corpus, Split};
use hlm_datagen::GeneratorConfig;

/// Scaling knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpScale {
    /// Preset name (for report headers).
    pub name: &'static str,
    /// Companies in the synthetic corpus.
    pub n_companies: usize,
    /// Generator / split seed.
    pub seed: u64,
    /// Collapsed-Gibbs sweeps for LDA fits.
    pub lda_iters: usize,
    /// LSTM training epochs (paper: 14).
    pub lstm_epochs: usize,
    /// LSTM node grid for Figure 1 (paper: 10, 100, 200, 300).
    pub lstm_nodes: Vec<usize>,
    /// LSTM layer grid for Figure 1 (paper: 1, 2, 3).
    pub lstm_layers: Vec<usize>,
    /// BPMF Gibbs sweeps.
    pub bpmf_iters: usize,
    /// Cluster-count grid for Figure 7.
    pub cluster_counts: Vec<usize>,
    /// Company sample used for silhouette curves (exact silhouette is
    /// O(n²)).
    pub silhouette_sample: usize,
    /// Retrain recommenders per sliding window (paper protocol) or once.
    pub retrain_per_window: bool,
}

impl ExpScale {
    /// CI-fast smoke preset.
    pub fn smoke() -> Self {
        ExpScale {
            name: "smoke",
            n_companies: 300,
            seed: 20190326,
            lda_iters: 60,
            lstm_epochs: 2,
            lstm_nodes: vec![10, 50],
            lstm_layers: vec![1, 2],
            bpmf_iters: 20,
            cluster_counts: vec![5, 10, 20],
            silhouette_sample: 200,
            retrain_per_window: false,
        }
    }

    /// Minutes-scale preset; all qualitative results hold.
    pub fn small() -> Self {
        ExpScale {
            name: "small",
            n_companies: 1_000,
            seed: 20190326,
            lda_iters: 150,
            lstm_epochs: 5,
            lstm_nodes: vec![10, 100, 200, 300],
            lstm_layers: vec![1, 2, 3],
            bpmf_iters: 40,
            cluster_counts: vec![5, 10, 20, 50, 100, 200],
            silhouette_sample: 400,
            retrain_per_window: false,
        }
    }

    /// Default preset used by the experiment binaries.
    pub fn medium() -> Self {
        ExpScale {
            name: "medium",
            n_companies: 4_000,
            seed: 20190326,
            lda_iters: 200,
            lstm_epochs: 8,
            lstm_nodes: vec![10, 100, 200, 300],
            lstm_layers: vec![1, 2, 3],
            bpmf_iters: 60,
            cluster_counts: vec![5, 10, 20, 50, 100, 200, 400],
            silhouette_sample: 600,
            retrain_per_window: false,
        }
    }

    /// Paper-protocol preset (14 LSTM epochs, per-window retraining). Slow.
    pub fn paper() -> Self {
        ExpScale {
            name: "paper",
            n_companies: 20_000,
            seed: 20190326,
            lda_iters: 300,
            lstm_epochs: 14,
            lstm_nodes: vec![10, 100, 200, 300],
            lstm_layers: vec![1, 2, 3],
            bpmf_iters: 100,
            cluster_counts: vec![5, 10, 20, 50, 100, 200, 400],
            silhouette_sample: 1_000,
            retrain_per_window: true,
        }
    }

    /// Out-of-core preset: one million companies. Only `hlm-bench` supports
    /// this scale, and only through the sharded pipeline — the corpus is
    /// stream-generated to disk shards and never materialised in RAM, so
    /// the in-memory experiment binaries refuse it by construction (their
    /// `corpus()` call would allocate the whole thing; don't).
    pub fn xl() -> Self {
        ExpScale {
            name: "xl",
            n_companies: 1_000_000,
            seed: 20190326,
            lda_iters: 2,
            lstm_epochs: 1,
            lstm_nodes: vec![10],
            lstm_layers: vec![1],
            bpmf_iters: 2,
            cluster_counts: vec![5],
            silhouette_sample: 200,
            retrain_per_window: false,
        }
    }

    /// Reads `HLM_SCALE` (`smoke` / `small` / `medium` / `paper` / `xl`);
    /// default `small`.
    ///
    /// # Panics
    /// Panics on an unknown value.
    pub fn from_env() -> Self {
        match std::env::var("HLM_SCALE").as_deref() {
            Ok("smoke") => Self::smoke(),
            Ok("small") | Err(_) => Self::small(),
            Ok("medium") => Self::medium(),
            Ok("paper") => Self::paper(),
            Ok("xl") => Self::xl(),
            Ok(other) => panic!("unknown HLM_SCALE {other:?} (use smoke|small|medium|paper|xl)"),
        }
    }

    /// Generates the experiment corpus for this scale.
    pub fn corpus(&self) -> Corpus {
        hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(
            self.n_companies,
            self.seed,
        ))
    }

    /// The paper's 70/10/20 split of that corpus.
    pub fn split(&self, corpus: &Corpus) -> Split {
        Split::paper(corpus, self.seed ^ 0xBEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        assert!(ExpScale::smoke().n_companies < ExpScale::small().n_companies);
        assert!(ExpScale::small().n_companies < ExpScale::medium().n_companies);
        assert!(ExpScale::medium().n_companies < ExpScale::paper().n_companies);
        assert!(ExpScale::paper().n_companies < ExpScale::xl().n_companies);
    }

    #[test]
    fn corpus_and_split_are_consistent() {
        let s = ExpScale::smoke();
        let c = s.corpus();
        assert_eq!(c.len(), 300);
        let split = s.split(&c);
        assert_eq!(split.len(), 300);
        assert_eq!(split.train.len(), 210);
    }
}
