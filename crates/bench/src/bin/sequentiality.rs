//! Regenerates the corresponding paper artefact; see DESIGN.md §4.
//! Scale via `HLM_SCALE=smoke|small|medium|paper` (default: small).

fn main() {
    let scale = hlm_bench::ExpScale::from_env();
    eprintln!(
        "[sequentiality] scale: {} ({} companies)",
        scale.name, scale.n_companies
    );
    for table in hlm_bench::experiments::sequentiality::run(&scale) {
        hlm_bench::emit(&table);
    }
}
