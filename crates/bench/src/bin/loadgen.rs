//! `hlm-loadgen` — load generator for the `hlm-serve` recommendation
//! server (PR 7), and the producer of its benchmark record.
//!
//! Two phases, both over real TCP against a real server:
//!
//! 1. **Closed loop** — `--connections` keep-alive clients fire
//!    `--requests` queries back-to-back (a new request the moment the
//!    previous answer lands). This measures the server's *sustained*
//!    throughput and the p50/p99 latency when it is busy but not
//!    overloaded. Every request must come back `200`.
//! 2. **Overload** — a wider pool of paced clients offers 2× the
//!    sustained throughput just measured. A robust server does not melt:
//!    it sheds the excess with `503 + Retry-After` at the admission
//!    queue and keeps the p99 of the requests it *does* accept under the
//!    deadline. The record reports the shed rate and the accepted-only
//!    percentiles so both halves of that claim are checkable.
//!
//! With `--fault-drill` the run ends with a nasty-client suite (partial
//! request + disconnect, garbage bytes, slow-loris, mid-response
//! disconnect) and verifies the server still answers cleanly afterwards.
//!
//! By default the binary self-hosts: it generates a corpus, trains a
//! small LDA model, and starts an in-process [`hlm_serve::Server`] with a
//! deliberately small admission queue (so overload is observable).
//! `--addr HOST:PORT` skips all that and drives an external server
//! instead — e.g. one started by `hlm serve` in CI.
//!
//! Usage:
//!   hlm-loadgen [--addr HOST:PORT] [--requests N] [--connections C]
//!               [--companies N] [--json [PATH]] [--fault-drill]
//!
//! `--json` writes the machine-readable record (default `BENCH_pr7.json`).
//! The closed-loop section breaks accepted-request p50/p99 out per
//! endpoint (similar / whitespace / recommend), and the record names the
//! `RepStore` precision variant that served the run (`f64`/`f32`; unknown
//! when driving an external server) both as a field and in the caveat.
//! `HLM_SCALE=smoke` shrinks the self-host corpus and request count for
//! CI; like the other bench records, structurally untrustworthy numbers
//! carry a `caveat` field — read it before quoting anything.

use hlm_core::representations::binary_docs;
use hlm_core::DistanceMetric;
use hlm_datagen::GeneratorConfig;
use hlm_engine::{Engine, LdaEstimator, ServeOptions};
use hlm_lda::LdaConfig;
use hlm_obs::json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-request deadline the generator sends and judges p99 against.
const DEADLINE_MS: u64 = 250;

struct Options {
    addr: Option<String>,
    requests: usize,
    connections: usize,
    companies: usize,
    json_path: Option<String>,
    fault_drill: bool,
}

fn parse_options() -> Options {
    let smoke = std::env::var("HLM_SCALE").as_deref() == Ok("smoke");
    let mut opts = Options {
        addr: None,
        requests: if smoke { 2_000 } else { 50_000 },
        connections: 4,
        companies: if smoke { 2_000 } else { 20_000 },
        json_path: None,
        fault_drill: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = "usage: hlm-loadgen [--addr HOST:PORT] [--requests N] \
                 [--connections C] [--companies N] [--json [PATH]] [--fault-drill]";
    let value = |i: &mut usize, argv: &[String], key: &str| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("option {key} is missing a value\n{usage}");
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => opts.addr = Some(value(&mut i, &argv, "--addr")),
            "--requests" => opts.requests = value(&mut i, &argv, "--requests").parse().unwrap_or(0),
            "--connections" => {
                opts.connections = value(&mut i, &argv, "--connections").parse().unwrap_or(0)
            }
            "--companies" => {
                opts.companies = value(&mut i, &argv, "--companies").parse().unwrap_or(0)
            }
            "--json" => {
                // Optional value, like hlm-bench: `--json` alone means the
                // default path.
                let next = argv.get(i + 1);
                if let Some(p) = next.filter(|p| !p.starts_with("--")) {
                    opts.json_path = Some(p.clone());
                    i += 1;
                } else {
                    opts.json_path = Some("BENCH_pr7.json".to_string());
                }
            }
            "--fault-drill" => opts.fault_drill = true,
            other => {
                eprintln!("unknown option {other:?}\n{usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if opts.requests == 0 || opts.connections == 0 || opts.companies == 0 {
        eprintln!("--requests, --connections and --companies must be positive\n{usage}");
        std::process::exit(2);
    }
    opts
}

// ---------------------------------------------------------------------------
// Minimal HTTP/1.1 keep-alive client
// ---------------------------------------------------------------------------

struct Client {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            addr: addr.to_string(),
            reader,
            writer: stream,
        })
    }

    /// One GET on the keep-alive connection; returns the status code.
    fn get_once(&mut self, path: &str) -> std::io::Result<u16> {
        write!(self.writer, "GET {path} HTTP/1.1\r\nhost: loadgen\r\n\r\n")?;
        // Status line.
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        // Headers: find content-length, note connection: close.
        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let mut h = String::new();
            if self.reader.read_line(&mut h)? == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            let lower = h.to_ascii_lowercase();
            if let Some(v) = lower.strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap_or(0);
            }
            if lower.starts_with("connection:") && lower.contains("close") {
                close = true;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        if close {
            // The server is done with this connection; make the next call
            // reconnect instead of failing.
            *self = Client::connect(&self.addr)?;
        }
        Ok(status)
    }

    /// GET with one transparent reconnect — keep-alive connections get
    /// recycled by the server after `max_requests_per_conn`.
    fn get(&mut self, path: &str) -> std::io::Result<u16> {
        match self.get_once(path) {
            Ok(s) => Ok(s),
            Err(_) => {
                *self = Client::connect(&self.addr)?;
                self.get_once(path)
            }
        }
    }
}

/// The endpoints `path_for` rotates through, in `endpoint_for` order.
const ENDPOINTS: [&str; 3] = ["similar", "whitespace", "recommend"];

/// Which endpoint request `i` hits — the same `i % 4` split `path_for`
/// uses, so per-endpoint latency buckets line up with the query mix.
fn endpoint_for(i: usize) -> usize {
    match i % 4 {
        0 | 1 => 0,
        2 => 1,
        _ => 2,
    }
}

/// The query mix: mostly similarity (the serving hot path), with
/// whitespace and next-product recommendations in rotation. Histories use
/// low product indices so they are valid against any vocabulary.
fn path_for(i: usize, companies: usize) -> String {
    let company = (i * 7919) % companies;
    match endpoint_for(i) {
        0 => format!("/v1/similar?company={company}&k=10&deadline_ms={DEADLINE_MS}"),
        1 => format!("/v1/whitespace?company={company}&k=10&deadline_ms={DEADLINE_MS}"),
        _ => format!(
            "/v1/recommend?history={},{}&top=5&deadline_ms={DEADLINE_MS}",
            i % 8,
            (i + 3) % 8
        ),
    }
}

/// p-th percentile of an unsorted millisecond sample (sorts in place).
fn pct_ms(sample: &mut [f64], p: f64) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    sample.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let idx = ((p / 100.0) * (sample.len() - 1) as f64).round() as usize;
    sample[idx.min(sample.len() - 1)]
}

/// Outcome counters plus the latency sample for one phase.
#[derive(Default)]
struct PhaseStats {
    ok: usize,
    shed: usize,
    deadline_exceeded: usize,
    errors: usize,
    /// Latencies of *accepted* (200) requests, milliseconds.
    latencies_ms: Vec<f64>,
    /// The same accepted latencies, bucketed by endpoint (`ENDPOINTS`
    /// order) so the record can break p50/p99 out per query type.
    by_endpoint: [Vec<f64>; 3],
    seconds: f64,
}

impl PhaseStats {
    fn total(&self) -> usize {
        self.ok + self.shed + self.deadline_exceeded + self.errors
    }

    fn merge(&mut self, other: PhaseStats) {
        self.ok += other.ok;
        self.shed += other.shed;
        self.deadline_exceeded += other.deadline_exceeded;
        self.errors += other.errors;
        self.latencies_ms.extend(other.latencies_ms);
        for (mine, theirs) in self.by_endpoint.iter_mut().zip(other.by_endpoint) {
            mine.extend(theirs);
        }
    }

    fn record(&mut self, endpoint: usize, status: std::io::Result<u16>, elapsed: Duration) {
        match status {
            Ok(200) => {
                self.ok += 1;
                let ms = elapsed.as_secs_f64() * 1e3;
                self.latencies_ms.push(ms);
                self.by_endpoint[endpoint].push(ms);
            }
            Ok(503) => self.shed += 1,
            Ok(504) => self.deadline_exceeded += 1,
            Ok(_) | Err(_) => self.errors += 1,
        }
    }

    fn percentile(&mut self, p: f64) -> f64 {
        pct_ms(&mut self.latencies_ms, p)
    }
}

/// Phase 1: closed loop — `connections` clients, back-to-back requests.
fn closed_loop(addr: &str, requests: usize, connections: usize, companies: usize) -> PhaseStats {
    let ticket = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..connections)
        .map(|_| {
            let ticket = Arc::clone(&ticket);
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut stats = PhaseStats::default();
                let Ok(mut client) = Client::connect(&addr) else {
                    return stats;
                };
                loop {
                    let i = ticket.fetch_add(1, Ordering::Relaxed);
                    if i >= requests {
                        break;
                    }
                    let path = path_for(i, companies);
                    let q0 = Instant::now();
                    let status = client.get(&path);
                    stats.record(endpoint_for(i), status, q0.elapsed());
                }
                stats
            })
        })
        .collect();
    let mut stats = PhaseStats::default();
    for w in workers {
        stats.merge(w.join().expect("load worker does not panic"));
    }
    stats.seconds = t0.elapsed().as_secs_f64();
    stats
}

/// Phase 2: overload — a wider pool paced to offer `target_rps` in
/// aggregate. Per-worker pacing is open-loop (a slow answer does not slow
/// the schedule; the next request fires as soon as the worker is free), so
/// a server slower than the offered rate accumulates queue depth and must
/// shed.
fn overload(
    addr: &str,
    requests: usize,
    workers_n: usize,
    companies: usize,
    target_rps: f64,
) -> PhaseStats {
    let interval = Duration::from_secs_f64(workers_n as f64 / target_rps.max(1.0));
    let ticket = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..workers_n)
        .map(|w| {
            let ticket = Arc::clone(&ticket);
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut stats = PhaseStats::default();
                let Ok(mut client) = Client::connect(&addr) else {
                    return stats;
                };
                // Stagger worker start so arrivals interleave.
                let mut next = Instant::now() + interval.mul_f64(w as f64 / workers_n as f64);
                loop {
                    let i = ticket.fetch_add(1, Ordering::Relaxed);
                    if i >= requests {
                        break;
                    }
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep(next - now);
                    }
                    next += interval;
                    let path = path_for(i, companies);
                    let q0 = Instant::now();
                    let status = client.get(&path);
                    stats.record(endpoint_for(i), status, q0.elapsed());
                }
                stats
            })
        })
        .collect();
    let mut stats = PhaseStats::default();
    for w in workers {
        stats.merge(w.join().expect("load worker does not panic"));
    }
    stats.seconds = t0.elapsed().as_secs_f64();
    stats
}

// ---------------------------------------------------------------------------
// Network-fault drill
// ---------------------------------------------------------------------------

/// Four nasty clients, then proof the server still serves. Returns
/// (drills run, server healthy afterwards).
fn fault_drill(addr: &str, companies: usize) -> (usize, bool) {
    let mut drills = 0;

    // 1. Partial request line, then disconnect.
    if let Ok(mut s) = TcpStream::connect(addr) {
        let _ = s.write_all(b"GET /v1/simi");
        drop(s);
        drills += 1;
    }
    // 2. Garbage bytes where a request line should be.
    if let Ok(mut s) = TcpStream::connect(addr) {
        let _ = s.write_all(b"\x00\xff\xfeGARBAGE\r\n\r\n");
        s.set_read_timeout(Some(Duration::from_secs(10))).ok();
        let mut buf = [0u8; 256];
        let _ = s.read(&mut buf); // 400 or a clean close — either is fine
        drills += 1;
    }
    // 3. Slow-loris: a dribble, then silence past the read timeout.
    if let Ok(mut s) = TcpStream::connect(addr) {
        let _ = s.write_all(b"GET /healthz HT");
        s.set_read_timeout(Some(Duration::from_secs(30))).ok();
        let mut buf = [0u8; 256];
        let _ = s.read(&mut buf); // 408 or a clean close when the server tires
        drills += 1;
    }
    // 4. Valid request, but disconnect before reading the response.
    if let Ok(mut s) = TcpStream::connect(addr) {
        let _ = s.write_all(b"GET /v1/similar?company=0&k=5 HTTP/1.1\r\nhost: x\r\n\r\n");
        drop(s);
        drills += 1;
    }

    // The server must still answer health checks and real queries.
    let healthy = Client::connect(addr)
        .and_then(|mut c| {
            let h = c.get("/healthz")?;
            let q = c.get(&format!("/v1/similar?company={}&k=5", companies / 2))?;
            Ok(h == 200 && q == 200)
        })
        .unwrap_or(false);
    (drills, healthy)
}

// ---------------------------------------------------------------------------
// Self-hosted server
// ---------------------------------------------------------------------------

/// Generate, train and start an in-process server sized so overload is
/// observable: a small admission queue in front of two model workers.
/// Also returns the store-precision label of the bundle being served, so
/// the record says which read-path variant its numbers belong to.
fn self_host(companies: usize) -> (hlm_serve::ServerHandle, &'static str) {
    eprintln!("[hlm-loadgen] generating {companies} companies and training LDA…");
    let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(companies, 42));
    let ids: Vec<_> = corpus.ids().collect();
    let docs = binary_docs(&corpus, &ids);
    let config = LdaConfig {
        n_topics: 5,
        vocab_size: corpus.vocab().len(),
        n_iters: 20,
        burn_in: 10,
        sample_lag: 5,
        ..Default::default()
    };
    let model = hlm_engine::fit_lda(config, LdaEstimator::Gibbs, &docs).expect("LDA trains");
    let engine = Arc::new(Engine::new(corpus));
    let opts = ServeOptions {
        request_budget_millis: Some(DEADLINE_MS),
        ..ServeOptions::default()
    };
    let bundle = hlm_serve::bundle_from_model(&engine, model, 20, DistanceMetric::Cosine, opts)
        .expect("bundle builds");
    let store_precision = bundle.app.store_precision().label();
    let config = hlm_serve::ServerConfig {
        workers: 2,
        // Small on purpose: the queue's job is bounding the latency of
        // accepted work, and the overload phase needs it reachable.
        queue_capacity: 16,
        batch_max: 8,
        default_deadline_millis: DEADLINE_MS,
        read_timeout_millis: 2_000,
        max_requests_per_conn: 1 << 20,
        ..hlm_serve::ServerConfig::default()
    };
    let server =
        hlm_serve::Server::bind(config, engine, bundle, None).expect("server binds 127.0.0.1:0");
    (server.start(), store_precision)
}

/// JSON string literal (esc() escapes but does not quote).
fn jq(s: &str) -> String {
    format!("\"{}\"", json::esc(s))
}

fn main() {
    let opts = parse_options();
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scale = std::env::var("HLM_SCALE").unwrap_or_else(|_| "small".to_string());

    let mut caveats: Vec<String> = Vec::new();
    if hardware == 1 {
        caveats.push(
            "single hardware thread: client and server contend for one core, so \
             throughput and latency measure contention, not server capacity"
                .to_string(),
        );
    }
    if opts.addr.is_none() && hardware > 1 && opts.connections + 2 >= hardware {
        caveats.push(format!(
            "{} client connections + 2 server workers on {hardware} hardware threads: \
             the client steals server cycles at peak",
            opts.connections
        ));
    }
    if scale == "smoke" {
        caveats.push("smoke scale: timings dominated by fixed overheads".to_string());
    }

    // A server to aim at: external (--addr) or self-hosted.
    let handle = if opts.addr.is_none() {
        Some(self_host(opts.companies))
    } else {
        None
    };
    // Which RepStore variant answered the queries: read off the bundle when
    // self-hosting; an external server does not expose it over the wire.
    let store_precision = handle.as_ref().map_or("unknown (external server)", |h| h.1);
    caveats.push(format!("serving store precision: {store_precision}"));
    let caveat = caveats.join("; ");
    for c in &caveats {
        eprintln!("[hlm-loadgen] CAVEAT: {c}");
    }
    let addr = match (&opts.addr, &handle) {
        (Some(a), _) => a.clone(),
        (None, Some((h, _))) => h.addr().to_string(),
        (None, None) => unreachable!("self-host failed would have panicked"),
    };
    eprintln!("[hlm-loadgen] target: {addr}");

    // Phase 1: closed loop.
    eprintln!(
        "[hlm-loadgen] closed loop: {} requests over {} connections…",
        opts.requests, opts.connections
    );
    let mut closed = closed_loop(&addr, opts.requests, opts.connections, opts.companies);
    let throughput = json::finite_or(closed.ok as f64 / closed.seconds, 0.0);
    let closed_p50 = closed.percentile(50.0);
    let closed_p99 = closed.percentile(99.0);
    eprintln!(
        "[hlm-loadgen] sustained: {throughput:.0} req/s, p50 {closed_p50:.2} ms, \
         p99 {closed_p99:.2} ms ({} ok / {} shed / {} errors)",
        closed.ok, closed.shed, closed.errors
    );
    // Per-endpoint breakdown of the closed loop: `(name, accepted, p50, p99)`.
    // The whitespace endpoint does a similarity query *plus* the ownership
    // aggregation, so its latency floor sits above plain similarity — the
    // breakdown makes that visible instead of averaged away.
    let endpoint_stats: Vec<(&str, usize, f64, f64)> = ENDPOINTS
        .iter()
        .zip(closed.by_endpoint.iter_mut())
        .map(|(name, sample)| {
            let (p50, p99) = (pct_ms(sample, 50.0), pct_ms(sample, 99.0));
            (*name, sample.len(), p50, p99)
        })
        .collect();
    for (name, n, p50, p99) in &endpoint_stats {
        eprintln!("[hlm-loadgen]   {name:<10} {n:>6} ok, p50 {p50:.2} ms, p99 {p99:.2} ms");
    }

    // Phase 2: overload at 2× sustained.
    let target_rps = 2.0 * throughput;
    let over_requests = (opts.requests / 5).clamp(200, 20_000);
    let over_workers = (opts.connections * 8).max(32);
    eprintln!(
        "[hlm-loadgen] overload: offering {target_rps:.0} req/s \
         ({over_requests} requests over {over_workers} paced connections)…"
    );
    let mut over = overload(
        &addr,
        over_requests,
        over_workers,
        opts.companies,
        target_rps,
    );
    let offered_rps = json::finite_or(over.total() as f64 / over.seconds, 0.0);
    let shed_rate = json::finite_or(over.shed as f64 / over.total() as f64, 0.0);
    let over_p50 = over.percentile(50.0);
    let over_p99 = over.percentile(99.0);
    eprintln!(
        "[hlm-loadgen] overload result: offered {offered_rps:.0} req/s, \
         {} ok / {} shed ({:.1}%) / {} expired / {} errors; accepted p99 {over_p99:.2} ms",
        over.ok,
        over.shed,
        shed_rate * 100.0,
        over.deadline_exceeded,
        over.errors
    );

    // Phase 3 (optional): the nasty-client suite.
    let drill = if opts.fault_drill {
        eprintln!("[hlm-loadgen] fault drill: 4 nasty clients…");
        let (drills, healthy) = fault_drill(&addr, opts.companies);
        eprintln!("[hlm-loadgen] fault drill: {drills} drills, healthy after: {healthy}");
        assert!(healthy, "server must keep serving after the fault drill");
        Some((drills, healthy))
    } else {
        None
    };

    if let Some((h, _)) = handle {
        h.shutdown();
    }

    // The robustness verdicts the PR claims, stated as data.
    let p99_under_deadline = over_p99 <= DEADLINE_MS as f64;
    let sheds_under_overload = over.shed > 0;

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"pr7_serving\",\n");
    out.push_str(&format!("  \"scale\": {},\n", jq(&scale)));
    out.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    out.push_str(&format!("  \"caveat\": {},\n", jq(&caveat)));
    out.push_str(&format!(
        "  \"server\": {{\"addr\": {}, \"self_hosted\": {}, \"companies\": {}, \
         \"deadline_ms\": {DEADLINE_MS}, \"store_precision\": {}}},\n",
        jq(&addr),
        opts.addr.is_none(),
        opts.companies,
        jq(store_precision)
    ));
    let endpoints_json = endpoint_stats
        .iter()
        .map(|(name, n, p50, p99)| {
            format!(
                "{{\"endpoint\": {}, \"ok\": {n}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                jq(name),
                json::finite_or(*p50, 0.0),
                json::finite_or(*p99, 0.0)
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!(
        "  \"closed_loop\": {{\"requests\": {}, \"connections\": {}, \"seconds\": {:.3}, \
         \"throughput_rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"ok\": {}, \"shed\": {}, \"deadline_exceeded\": {}, \"errors\": {}, \
         \"endpoints\": [{endpoints_json}]}},\n",
        opts.requests,
        opts.connections,
        closed.seconds,
        throughput,
        json::finite_or(closed_p50, 0.0),
        json::finite_or(closed_p99, 0.0),
        closed.ok,
        closed.shed,
        closed.deadline_exceeded,
        closed.errors
    ));
    out.push_str(&format!(
        "  \"overload\": {{\"target_rps\": {:.1}, \"offered_rps\": {:.1}, \"requests\": {}, \
         \"connections\": {over_workers}, \"seconds\": {:.3}, \"ok\": {}, \"shed\": {}, \
         \"shed_rate\": {:.4}, \"deadline_exceeded\": {}, \"errors\": {}, \
         \"accepted_p50_ms\": {:.3}, \"accepted_p99_ms\": {:.3}, \
         \"sheds_under_overload\": {sheds_under_overload}, \
         \"p99_under_deadline\": {p99_under_deadline}}}",
        json::finite_or(target_rps, 0.0),
        offered_rps,
        over.total(),
        over.seconds,
        over.ok,
        over.shed,
        shed_rate,
        over.deadline_exceeded,
        over.errors,
        json::finite_or(over_p50, 0.0),
        json::finite_or(over_p99, 0.0),
    ));
    if let Some((drills, healthy)) = drill {
        out.push_str(&format!(
            ",\n  \"fault_drill\": {{\"drills\": {drills}, \"healthy_after\": {healthy}}}"
        ));
    }
    out.push_str("\n}\n");

    println!("{out}");
    if let Some(path) = &opts.json_path {
        std::fs::write(path, &out).expect("benchmark record is writable");
        eprintln!("[hlm-loadgen] wrote {path}");
    }

    // Hard exits for CI: every closed-loop request answered, overload shed.
    if closed.errors > 0 {
        eprintln!("[hlm-loadgen] FAIL: {} closed-loop errors", closed.errors);
        std::process::exit(1);
    }
    if !sheds_under_overload && offered_rps > throughput * 1.2 {
        eprintln!("[hlm-loadgen] FAIL: overload offered > sustained but nothing was shed");
        std::process::exit(1);
    }
}
