//! `hlm-bench` — wall-clock baseline for the parallel runtime (PR 3).
//!
//! Times the LDA hot path (Gibbs training + document-completion perplexity)
//! at 1 worker thread and at 8, on the same corpus and seed, and reports
//! wall-clock, speedup and the dimensions of the workload. The runtime is
//! deterministic by construction, so the two runs must produce the *same*
//! perplexity — the binary asserts this and records it in the output.
//!
//! Usage:
//!   hlm-bench [--json [PATH]]
//!
//! `--json` writes the machine-readable record (default `BENCH_pr3.json`)
//! next to the human-readable stdout summary. Scale follows `HLM_SCALE`
//! (`smoke|small|medium|paper`, default `small`).
//!
//! Note on interpreting speedup: the numbers are honest wall-clock on the
//! machine the binary runs on. On a single-core host the 8-thread run
//! cannot beat the serial one (thread switching only adds overhead); the
//! ≥3× target is meaningful only where ≥8 hardware threads exist, which is
//! why CI runs this on its multi-core runners.

use hlm_engine::{effective_threads, set_threads};
use hlm_lda::{document_completion_perplexity, GibbsTrainer, LdaConfig};
use hlm_obs::json;
use std::fmt::Write as _;
use std::time::Instant;

struct Run {
    threads: usize,
    train_seconds: f64,
    eval_seconds: f64,
    perplexity: f64,
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (want_json, json_path) = match argv.first().map(String::as_str) {
        None => (false, String::new()),
        Some("--json") => (
            true,
            argv.get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_pr3.json".to_string()),
        ),
        Some(other) => {
            eprintln!("unknown option {other:?}; usage: hlm-bench [--json [PATH]]");
            std::process::exit(2);
        }
    };

    let scale = hlm_bench::ExpScale::from_env();
    eprintln!(
        "[hlm-bench] scale: {} ({} companies)",
        scale.name, scale.n_companies
    );
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let train = hlm_core::representations::binary_docs(&corpus, &split.train);
    let test = hlm_core::representations::binary_docs(&corpus, &split.test);
    let config = LdaConfig {
        n_topics: 3,
        vocab_size: corpus.vocab().len(),
        n_iters: scale.lda_iters,
        burn_in: scale.lda_iters / 2,
        sample_lag: 5,
        seed: scale.seed,
        ..Default::default()
    };

    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut runs = Vec::new();
    for threads in [1usize, 8] {
        set_threads(threads);
        eprintln!("[hlm-bench] LDA train+eval at {threads} thread(s)…");
        let t0 = Instant::now();
        let model = GibbsTrainer::new(config.clone()).fit(&train);
        let train_seconds = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let perplexity = document_completion_perplexity(&model, &test);
        let eval_seconds = t1.elapsed().as_secs_f64();
        assert_eq!(effective_threads(), threads);
        runs.push(Run {
            threads,
            train_seconds,
            eval_seconds,
            perplexity,
        });
    }
    let deterministic = runs
        .windows(2)
        .all(|w| w[0].perplexity.to_bits() == w[1].perplexity.to_bits());
    assert!(
        deterministic,
        "perplexity must be bit-identical at every thread count"
    );

    let total = |r: &Run| r.train_seconds + r.eval_seconds;
    // Ratios of near-zero timings (smoke scale on a fast machine) can be
    // inf/NaN, which `{:.4}` would serialize as invalid JSON — sanitize at
    // the boundary (debug builds assert instead of papering over it).
    let speedup_train = json::finite_or(runs[0].train_seconds / runs[1].train_seconds, 0.0);
    let speedup_eval = json::finite_or(runs[0].eval_seconds / runs[1].eval_seconds, 0.0);
    let speedup_total = json::finite_or(total(&runs[0]) / total(&runs[1]), 0.0);

    println!(
        "corpus: {} companies, {} products, {} docs train / {} test",
        corpus.len(),
        corpus.vocab().len(),
        train.len(),
        test.len()
    );
    println!(
        "LDA: {} topics, {} sweeps; hardware threads: {hardware}",
        config.n_topics, config.n_iters
    );
    for r in &runs {
        println!(
            "threads={}: train {:.3}s  eval {:.3}s  perplexity {:.6}",
            r.threads, r.train_seconds, r.eval_seconds, r.perplexity
        );
    }
    println!(
        "speedup (1 -> 8 threads): train {speedup_train:.2}x  eval {speedup_eval:.2}x  \
         total {speedup_total:.2}x"
    );
    println!("deterministic across thread counts: {deterministic}");

    if want_json {
        let mut j = String::new();
        let _ = writeln!(j, "{{");
        let _ = writeln!(j, "  \"bench\": \"pr3_parallel_runtime\",");
        let _ = writeln!(j, "  \"scale\": \"{}\",", scale.name);
        let _ = writeln!(
            j,
            "  \"corpus\": {{\"companies\": {}, \"products\": {}, \"train_docs\": {}, \
             \"test_docs\": {}}},",
            corpus.len(),
            corpus.vocab().len(),
            train.len(),
            test.len()
        );
        let _ = writeln!(
            j,
            "  \"lda\": {{\"n_topics\": {}, \"n_iters\": {}}},",
            config.n_topics, config.n_iters
        );
        let _ = writeln!(j, "  \"hardware_threads\": {hardware},");
        let _ = writeln!(j, "  \"runs\": [");
        for (i, r) in runs.iter().enumerate() {
            let _ = writeln!(
                j,
                "    {{\"threads\": {}, \"train_seconds\": {:.6}, \"eval_seconds\": {:.6}, \
                 \"perplexity\": {:.12}}}{}",
                r.threads,
                json::finite_or(r.train_seconds, 0.0),
                json::finite_or(r.eval_seconds, 0.0),
                json::finite_or(r.perplexity, 0.0),
                if i + 1 < runs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(j, "  ],");
        let _ = writeln!(
            j,
            "  \"speedup_1_to_8\": {{\"train\": {speedup_train:.4}, \"eval\": {speedup_eval:.4}, \
             \"total\": {speedup_total:.4}}},"
        );
        let _ = writeln!(j, "  \"deterministic\": {deterministic}");
        let _ = writeln!(j, "}}");
        json::check_finite(&j).expect("benchmark json must contain only finite numbers");
        std::fs::write(&json_path, j).expect("write benchmark json");
        eprintln!("[hlm-bench] wrote {json_path}");
    }
}
