//! `hlm-bench` — wall-clock benchmark of the hot paths (PR 5).
//!
//! Three phases, all on the same corpus and seed:
//!
//! 1. **LDA train+eval** at 1 worker thread and at 8. The runtime is
//!    deterministic by construction, so both runs must produce the *same*
//!    perplexity — the binary asserts this and records it. With the
//!    adaptive cost model, small workloads run serial regardless of the
//!    thread setting, so the 8-thread run must stay within noise of the
//!    serial one (`parallel_penalty` in the output; CI gates on ≤5%).
//! 2. **Gibbs throughput** — weighted tokens sampled per second at one
//!    thread, compared against the PR 3 baseline record (`BENCH_pr3.json`)
//!    when one is present in the working directory.
//! 3. **Serving latency** — per-query `find_similar` wall clock over the
//!    engine's sales application, cold (empty [`hlm_core::ServingCache`])
//!    then warm (same queries again), with the cache hit rate read back
//!    from the `serve.cache_*` observability counters. Warm answers are
//!    asserted identical to cold ones.
//!
//! Usage:
//!   hlm-bench [--json [PATH]]
//!
//! `--json` writes the machine-readable record (default `BENCH_pr5.json`)
//! next to the human-readable stdout summary. Scale follows `HLM_SCALE`
//! (`smoke|small|medium|paper`, default `small`).
//!
//! Note on interpreting speedup: the numbers are honest wall-clock on the
//! machine the binary runs on (`hardware_threads` records what that machine
//! has). On a single-core host the 8-thread run cannot beat the serial one;
//! the cost model's job is to make sure it does not *lose* either.

use hlm_core::{CompanyFilter, DistanceMetric};
use hlm_engine::{effective_threads, set_threads, Engine};
use hlm_lda::{document_completion_perplexity, GibbsTrainer, LdaConfig};
use hlm_obs::json;
use std::fmt::Write as _;
use std::time::Instant;

struct Run {
    threads: usize,
    train_seconds: f64,
    eval_seconds: f64,
    perplexity: f64,
}

/// p-th percentile (0..=100) of an unsorted latency sample, in seconds.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Pulls the serial `train_seconds` out of a PR 3 benchmark record without
/// a JSON parser: finds the `"threads": 1` run object and reads its
/// `train_seconds` field.
fn pr3_serial_train_seconds(raw: &str) -> Option<f64> {
    let run = raw.split('{').find(|s| s.contains("\"threads\": 1"))?;
    let tail = run.split("\"train_seconds\":").nth(1)?;
    tail.split([',', '}']).next()?.trim().parse().ok()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (want_json, json_path) = match argv.first().map(String::as_str) {
        None => (false, String::new()),
        Some("--json") => (
            true,
            argv.get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_pr5.json".to_string()),
        ),
        Some(other) => {
            eprintln!("unknown option {other:?}; usage: hlm-bench [--json [PATH]]");
            std::process::exit(2);
        }
    };

    let scale = hlm_bench::ExpScale::from_env();
    eprintln!(
        "[hlm-bench] scale: {} ({} companies)",
        scale.name, scale.n_companies
    );
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let train = hlm_core::representations::binary_docs(&corpus, &split.train);
    let test = hlm_core::representations::binary_docs(&corpus, &split.test);
    let n_tokens: usize = train.iter().map(Vec::len).sum();
    let config = LdaConfig {
        n_topics: 3,
        vocab_size: corpus.vocab().len(),
        n_iters: scale.lda_iters,
        burn_in: scale.lda_iters / 2,
        sample_lag: 5,
        seed: scale.seed,
        ..Default::default()
    };

    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Phase 1: LDA hot path at 1 and 8 threads. Train time is best-of-3 so
    // the CI parallel-penalty gate measures the runtime, not OS jitter.
    let mut runs = Vec::new();
    let mut last_model = None;
    for threads in [1usize, 8] {
        set_threads(threads);
        eprintln!("[hlm-bench] LDA train+eval at {threads} thread(s)…");
        let mut train_seconds = f64::INFINITY;
        let mut model = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            model = Some(GibbsTrainer::new(config.clone()).fit(&train));
            train_seconds = train_seconds.min(t0.elapsed().as_secs_f64());
        }
        let model = model.expect("three fits ran");
        let t1 = Instant::now();
        let perplexity = document_completion_perplexity(&model, &test);
        let eval_seconds = t1.elapsed().as_secs_f64();
        assert_eq!(effective_threads(), threads);
        runs.push(Run {
            threads,
            train_seconds,
            eval_seconds,
            perplexity,
        });
        last_model = Some(model);
    }
    let deterministic = runs
        .windows(2)
        .all(|w| w[0].perplexity.to_bits() == w[1].perplexity.to_bits());
    assert!(
        deterministic,
        "perplexity must be bit-identical at every thread count"
    );

    // Ratios of near-zero timings (smoke scale on a fast machine) can be
    // inf/NaN, which `{:.4}` would serialize as invalid JSON — sanitize at
    // the boundary (debug builds assert instead of papering over it).
    let speedup_train = json::finite_or(runs[0].train_seconds / runs[1].train_seconds, 0.0);
    // How much slower the 8-thread run is than serial; ≤0 when it wins. The
    // cost model keeps small workloads serial, so this is the number that
    // proves "parallelism never hurts".
    let parallel_penalty = json::finite_or(
        (runs[1].train_seconds - runs[0].train_seconds) / runs[0].train_seconds,
        0.0,
    );

    // Phase 2: Gibbs throughput, compared against a PR 3 record if present.
    let gibbs_tokens_per_second = json::finite_or(
        (n_tokens * config.n_iters) as f64 / runs[0].train_seconds,
        0.0,
    );
    let pr3_baseline = std::fs::read_to_string("BENCH_pr3.json")
        .ok()
        .as_deref()
        .and_then(pr3_serial_train_seconds)
        .map(|pr3_train| {
            (
                pr3_train,
                json::finite_or(pr3_train / runs[0].train_seconds, 0.0),
            )
        });

    // Phase 3: serving latency, cold cache then warm, via the engine's
    // sales application (LDA topic-mixture representations).
    hlm_obs::install(hlm_obs::Recorder::enabled());
    set_threads(1);
    let model = last_model.expect("at least one run");
    let all_ids: Vec<_> = corpus.ids().collect();
    let all_docs = hlm_core::representations::binary_docs(&corpus, &all_ids);
    let reps = hlm_core::representations::lda_representations(&model, &all_docs);
    let engine = Engine::new(corpus);
    let app = engine
        .sales_app(reps, DistanceMetric::Cosine)
        .expect("row count matches corpus");
    let k = 10usize;
    let stride = (all_ids.len() / 200).max(1);
    let queries: Vec<_> = all_ids.iter().copied().step_by(stride).collect();
    let filter = CompanyFilter::default();
    let time_pass = || -> (Vec<f64>, Vec<Vec<hlm_core::app::SimilarCompany>>) {
        let mut lat = Vec::with_capacity(queries.len());
        let mut res = Vec::with_capacity(queries.len());
        for &q in &queries {
            let t0 = Instant::now();
            let r = app.find_similar(q, k, &filter).expect("query in range");
            lat.push(t0.elapsed().as_secs_f64());
            res.push(r);
        }
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        (lat, res)
    };
    eprintln!(
        "[hlm-bench] serving: {} queries, k={k}, cold then warm cache…",
        queries.len()
    );
    let (cold, cold_res) = time_pass();
    let (warm, warm_res) = time_pass();
    assert_eq!(
        cold_res, warm_res,
        "cached answers must be identical to uncached ones"
    );
    let rec = hlm_obs::global();
    let (hits, misses) = (
        rec.counter("serve.cache_hit"),
        rec.counter("serve.cache_miss"),
    );
    let hit_rate = json::finite_or(hits as f64 / (hits + misses) as f64, 0.0);
    let (cold_p50, cold_p99) = (percentile(&cold, 50.0), percentile(&cold, 99.0));
    let (warm_p50, warm_p99) = (percentile(&warm, 50.0), percentile(&warm, 99.0));

    println!(
        "corpus: {} companies, {} products, {} docs train / {} test",
        engine.corpus().len(),
        engine.corpus().vocab().len(),
        train.len(),
        test.len()
    );
    println!(
        "LDA: {} topics, {} sweeps over {n_tokens} tokens; hardware threads: {hardware}",
        config.n_topics, config.n_iters
    );
    for r in &runs {
        println!(
            "threads={}: train {:.3}s (best of 3)  eval {:.3}s  perplexity {:.6}",
            r.threads, r.train_seconds, r.eval_seconds, r.perplexity
        );
    }
    println!(
        "speedup (1 -> 8 threads): train {speedup_train:.2}x  parallel penalty {:.1}%",
        parallel_penalty * 100.0
    );
    println!("gibbs throughput (1 thread): {gibbs_tokens_per_second:.0} tokens/s");
    match pr3_baseline {
        Some((pr3, speedup)) => {
            println!("vs PR3 baseline: {pr3:.3}s serial -> {speedup:.2}x faster")
        }
        None => println!("vs PR3 baseline: BENCH_pr3.json not found, skipped"),
    }
    println!(
        "serve p50/p99: cold {:.1}/{:.1} µs  warm {:.1}/{:.1} µs  cache hit rate {:.0}%",
        cold_p50 * 1e6,
        cold_p99 * 1e6,
        warm_p50 * 1e6,
        warm_p99 * 1e6,
        hit_rate * 100.0
    );
    println!("deterministic across thread counts: {deterministic}");

    if want_json {
        let mut j = String::new();
        let _ = writeln!(j, "{{");
        let _ = writeln!(j, "  \"bench\": \"pr5_hot_paths\",");
        let _ = writeln!(j, "  \"scale\": \"{}\",", scale.name);
        let _ = writeln!(
            j,
            "  \"corpus\": {{\"companies\": {}, \"products\": {}, \"train_docs\": {}, \
             \"test_docs\": {}, \"train_tokens\": {n_tokens}}},",
            engine.corpus().len(),
            engine.corpus().vocab().len(),
            train.len(),
            test.len()
        );
        let _ = writeln!(
            j,
            "  \"lda\": {{\"n_topics\": {}, \"n_iters\": {}}},",
            config.n_topics, config.n_iters
        );
        let _ = writeln!(j, "  \"hardware_threads\": {hardware},");
        let _ = writeln!(j, "  \"runs\": [");
        for (i, r) in runs.iter().enumerate() {
            let _ = writeln!(
                j,
                "    {{\"threads\": {}, \"train_seconds\": {:.6}, \"eval_seconds\": {:.6}, \
                 \"perplexity\": {:.12}}}{}",
                r.threads,
                json::finite_or(r.train_seconds, 0.0),
                json::finite_or(r.eval_seconds, 0.0),
                json::finite_or(r.perplexity, 0.0),
                if i + 1 < runs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(j, "  ],");
        let _ = writeln!(
            j,
            "  \"speedup_1_to_8\": {{\"train\": {speedup_train:.4}}},"
        );
        let _ = writeln!(j, "  \"parallel_penalty\": {parallel_penalty:.4},");
        let _ = writeln!(
            j,
            "  \"gibbs\": {{\"tokens_per_second\": {gibbs_tokens_per_second:.1}{}}},",
            match pr3_baseline {
                Some((pr3, speedup)) => format!(
                    ", \"pr3_serial_train_seconds\": {pr3:.6}, \"speedup_vs_pr3\": {speedup:.4}"
                ),
                None => String::new(),
            }
        );
        let _ = writeln!(
            j,
            "  \"serve\": {{\"queries\": {}, \"k\": {k}, \
             \"cold_p50_us\": {:.3}, \"cold_p99_us\": {:.3}, \
             \"warm_p50_us\": {:.3}, \"warm_p99_us\": {:.3}, \
             \"cache_hit_rate\": {hit_rate:.4}}},",
            queries.len(),
            cold_p50 * 1e6,
            cold_p99 * 1e6,
            warm_p50 * 1e6,
            warm_p99 * 1e6,
        );
        let _ = writeln!(j, "  \"deterministic\": {deterministic}");
        let _ = writeln!(j, "}}");
        json::check_finite(&j).expect("benchmark json must contain only finite numbers");
        std::fs::write(&json_path, j).expect("write benchmark json");
        eprintln!("[hlm-bench] wrote {json_path}");
    }
}
