//! `hlm-bench` — wall-clock benchmark of the hot paths (PR 5) and the
//! out-of-core sharded pipeline (PR 6).
//!
//! Phases, all on the same seed:
//!
//! 1. **LDA train+eval** at 1 worker thread and at 8. The runtime is
//!    deterministic by construction, so both runs must produce the *same*
//!    perplexity — the binary asserts this and records it. With the
//!    adaptive cost model, small workloads run serial regardless of the
//!    thread setting, so the 8-thread run must stay within noise of the
//!    serial one (`parallel_penalty` in the output; CI gates on ≤5%).
//! 2. **Gibbs throughput** — weighted tokens sampled per second at one
//!    thread, compared against the PR 3 baseline record (`BENCH_pr3.json`)
//!    when one is present in the working directory.
//! 3. **Serving latency** — per-query `find_similar` wall clock over the
//!    engine's sales application, cold (empty [`hlm_core::ServingCache`])
//!    then warm (same queries again), with the cache hit rate read back
//!    from the `serve.cache_*` observability counters. Warm answers are
//!    asserted identical to cold ones.
//! 4. **Sharded out-of-core pipeline** — stream-generates the corpus to
//!    disk shards (never materialising it in RAM), trains one sharded
//!    Gibbs fit and one online-VB epoch over the store, and records
//!    tokens/s plus the process peak RSS against an estimate of the
//!    in-memory footprint.
//! 5. **Sampler kernels** (PR 8) — tokens/s of the three Gibbs token
//!    samplers (dense scan, SparseLDA buckets, LightLDA alias-MH) at
//!    K = 128 on one thread, then a 1/2/4/8-thread sweep of the alias-MH
//!    kernel asserting bit-identical phi at every thread count. Speedup
//!    figures from the sweep are marked valid only when the host
//!    actually has more than one hardware thread.
//! 6. **Query-path kernels** (PR 10) — queries/s and p50/p99 of the
//!    serving read path over synthetic clustered blobs at n = 20k and
//!    n = 200k companies: the pre-store scalar scan, the [`RepStore`]
//!    exact-f64 single-query kernel, the blocked 16-query kernel, and
//!    the opt-in f32 kernel, all pinned to one hardware thread (no
//!    parallelism credit), plus IVF recall@10 at n_probe ∈ {1, 4, all}
//!    for both store precisions. This phase writes its own record,
//!    `BENCH_pr10.json`, which the CI perf job gates (blocked-f64
//!    ≥ 1.5× scalar at n = 200k; f32 full-probe recall@10 ≥ 0.999).
//!
//! At `HLM_SCALE=xl` (one million companies) phases 1–3 and 5–6 are
//! skipped — the whole point of that scale is that the corpus does not
//! fit the in-memory path comfortably — and phase 4 is the entire
//! benchmark, so the recorded peak RSS belongs to the sharded pipeline
//! alone.
//!
//! Usage:
//!   hlm-bench [--json [PATH]]
//!
//! `--json` writes the machine-readable record (default `BENCH_pr8.json`)
//! next to the human-readable stdout summary; when phase 6 runs it also
//! writes `BENCH_pr10.json`. Scale follows `HLM_SCALE`
//! (`smoke|small|medium|paper|xl`, default `small`).
//!
//! Note on interpreting speedup: the numbers are honest wall-clock on the
//! machine the binary runs on (`hardware_threads` records what that machine
//! has). On a single-core host the 8-thread run cannot beat the serial one;
//! the cost model's job is to make sure it does not *lose* either. When the
//! host or the scale makes a number structurally untrustworthy the record
//! says so in its `caveat` field — read it before quoting any figure.

use hlm_bench::ExpScale;
use hlm_core::{
    top_k_similar_scalar, ClusteredIndex, CompanyFilter, DistanceMetric, RepStore, StorePrecision,
};
use hlm_corpus::CorpusSource;
use hlm_datagen::GeneratorConfig;
use hlm_engine::{effective_threads, set_threads, Engine, TrainPlan};
use hlm_lda::{
    document_completion_perplexity, GibbsTrainer, LdaConfig, OnlineVbOptions, SamplerChoice,
};
use hlm_linalg::Matrix;
use hlm_obs::json;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Run {
    threads: usize,
    train_seconds: f64,
    eval_seconds: f64,
    perplexity: f64,
}

/// Everything phases 1–3 measure (in-memory pipeline; skipped at xl).
struct InMemReport {
    companies: usize,
    products: usize,
    train_docs: usize,
    test_docs: usize,
    train_tokens: usize,
    n_iters: usize,
    runs: Vec<Run>,
    deterministic: bool,
    speedup_train: f64,
    parallel_penalty: f64,
    gibbs_tokens_per_second: f64,
    pr3_baseline: Option<(f64, f64)>,
    serve_queries: usize,
    serve_k: usize,
    cold_p50: f64,
    cold_p99: f64,
    warm_p50: f64,
    warm_p99: f64,
    hit_rate: f64,
}

/// Everything phase 4 measures (sharded out-of-core pipeline; always runs).
struct ShardedReport {
    companies: u64,
    tokens: u64,
    n_shards: usize,
    shard_size: u64,
    disk_bytes: u64,
    gen_seconds: f64,
    gibbs_sweeps: usize,
    gibbs_seconds: f64,
    gibbs_tokens_per_second: f64,
    vb_epochs: usize,
    vb_seconds: f64,
    vb_tokens_per_second: f64,
    peak_rss_bytes: u64,
    in_memory_bytes_estimate: u64,
    rss_ratio: f64,
}

/// One serial kernel measurement in the sampler shoot-out.
struct SamplerRun {
    name: &'static str,
    train_seconds: f64,
    tokens_per_second: f64,
}

/// The serial shoot-out at one topic count: dense / bucket / alias-MH,
/// each at one thread, best over interleaved rounds.
struct SamplerKGroup {
    k: usize,
    sweeps: usize,
    serial: Vec<SamplerRun>,
    alias_vs_dense: f64,
    alias_vs_bucket: f64,
}

/// Everything phase 5 measures (sampler kernels; skipped at xl).
struct SamplerReport {
    tokens: usize,
    /// One serial shoot-out per topic count — the scanning kernels are
    /// O(K)-per-token and the alias proposals O(1), so the ratio's growth
    /// across K is the structural claim, not any single number.
    by_k: Vec<SamplerKGroup>,
    /// Topic count the thread sweep ran at.
    thread_k: usize,
    /// `(threads, train_seconds)` for the alias-MH kernel.
    thread_sweep: Vec<(usize, f64)>,
    alias_speedup_1_to_8: f64,
    /// False on a single-hardware-thread host: the sweep then only proves
    /// the no-penalty property, never a speedup.
    speedup_valid: bool,
    deterministic: bool,
}

/// p-th percentile (0..=100) of an unsorted latency sample, in seconds.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Pulls the serial `train_seconds` out of a PR 3 benchmark record without
/// a JSON parser: finds the `"threads": 1` run object and reads its
/// `train_seconds` field.
fn pr3_serial_train_seconds(raw: &str) -> Option<f64> {
    let run = raw.split('{').find(|s| s.contains("\"threads\": 1"))?;
    let tail = run.split("\"train_seconds\":").nth(1)?;
    tail.split([',', '}']).next()?.trim().parse().ok()
}

/// What the in-memory pipeline keeps resident for a corpus of this shape,
/// from per-element sizes: the `Corpus` itself (a `Company` with its name
/// string and event vector runs ≈120 B plus 16 B per `InstallEvent`, and
/// `product_set` copies the events once more), the `WeightedDoc` views
/// (24 B `Vec` header per doc + 16 B per token), and the Gibbs per-doc
/// state over *all* documents at once (2 B/token assignments + `8k` B/doc
/// topic counts). The sharded pipeline holds one shard of all of that.
fn in_memory_bytes_estimate(n_docs: u64, tokens: u64, k: u64) -> u64 {
    n_docs * (120 + 24 + 8 * k) + tokens * (16 + 16 + 16 + 2)
}

/// Phases 1–3: the PR 5 in-memory hot-path benchmark.
fn run_in_memory(scale: &ExpScale) -> InMemReport {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let train = hlm_core::representations::binary_docs(&corpus, &split.train);
    let test = hlm_core::representations::binary_docs(&corpus, &split.test);
    let n_tokens: usize = train.iter().map(Vec::len).sum();
    let config = LdaConfig {
        n_topics: 3,
        vocab_size: corpus.vocab().len(),
        n_iters: scale.lda_iters,
        burn_in: scale.lda_iters / 2,
        sample_lag: 5,
        seed: scale.seed,
        ..Default::default()
    };

    // Phase 1: LDA hot path at 1 and 8 threads. Train time is best-of-3 so
    // the CI parallel-penalty gate measures the runtime, not OS jitter.
    let mut runs = Vec::new();
    let mut last_model = None;
    for threads in [1usize, 8] {
        set_threads(threads);
        eprintln!("[hlm-bench] LDA train+eval at {threads} thread(s)…");
        let mut train_seconds = f64::INFINITY;
        let mut model = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            model = Some(GibbsTrainer::new(config.clone()).fit(&train));
            train_seconds = train_seconds.min(t0.elapsed().as_secs_f64());
        }
        let model = model.expect("three fits ran");
        let t1 = Instant::now();
        let perplexity = document_completion_perplexity(&model, &test);
        let eval_seconds = t1.elapsed().as_secs_f64();
        assert_eq!(effective_threads(), threads);
        runs.push(Run {
            threads,
            train_seconds,
            eval_seconds,
            perplexity,
        });
        last_model = Some(model);
    }
    let deterministic = runs
        .windows(2)
        .all(|w| w[0].perplexity.to_bits() == w[1].perplexity.to_bits());
    assert!(
        deterministic,
        "perplexity must be bit-identical at every thread count"
    );

    // Ratios of near-zero timings (smoke scale on a fast machine) can be
    // inf/NaN, which `{:.4}` would serialize as invalid JSON — sanitize at
    // the boundary (debug builds assert instead of papering over it).
    let speedup_train = json::finite_or(runs[0].train_seconds / runs[1].train_seconds, 0.0);
    // How much slower the 8-thread run is than serial; ≤0 when it wins. The
    // cost model keeps small workloads serial, so this is the number that
    // proves "parallelism never hurts".
    let parallel_penalty = json::finite_or(
        (runs[1].train_seconds - runs[0].train_seconds) / runs[0].train_seconds,
        0.0,
    );

    // Phase 2: Gibbs throughput, compared against a PR 3 record if present.
    let gibbs_tokens_per_second = json::finite_or(
        (n_tokens * config.n_iters) as f64 / runs[0].train_seconds,
        0.0,
    );
    let pr3_baseline = std::fs::read_to_string("BENCH_pr3.json")
        .ok()
        .as_deref()
        .and_then(pr3_serial_train_seconds)
        .map(|pr3_train| {
            (
                pr3_train,
                json::finite_or(pr3_train / runs[0].train_seconds, 0.0),
            )
        });

    // Phase 3: serving latency, cold cache then warm, via the engine's
    // sales application (LDA topic-mixture representations).
    set_threads(1);
    let model = last_model.expect("at least one run");
    let all_ids: Vec<_> = corpus.ids().collect();
    let all_docs = hlm_core::representations::binary_docs(&corpus, &all_ids);
    let reps = hlm_core::representations::lda_representations(&model, &all_docs);
    let engine = Engine::new(corpus);
    let app = engine
        .sales_app(reps, DistanceMetric::Cosine)
        .expect("row count matches corpus");
    let k = 10usize;
    let stride = (all_ids.len() / 200).max(1);
    let queries: Vec<_> = all_ids.iter().copied().step_by(stride).collect();
    let filter = CompanyFilter::default();
    let time_pass = || -> (Vec<f64>, Vec<Vec<hlm_core::app::SimilarCompany>>) {
        let mut lat = Vec::with_capacity(queries.len());
        let mut res = Vec::with_capacity(queries.len());
        for &q in &queries {
            let t0 = Instant::now();
            let r = app.find_similar(q, k, &filter).expect("query in range");
            lat.push(t0.elapsed().as_secs_f64());
            res.push(r);
        }
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        (lat, res)
    };
    eprintln!(
        "[hlm-bench] serving: {} queries, k={k}, cold then warm cache…",
        queries.len()
    );
    let (cold, cold_res) = time_pass();
    let (warm, warm_res) = time_pass();
    assert_eq!(
        cold_res, warm_res,
        "cached answers must be identical to uncached ones"
    );
    let rec = hlm_obs::global();
    let (hits, misses) = (
        rec.counter("serve.cache_hit"),
        rec.counter("serve.cache_miss"),
    );
    let hit_rate = json::finite_or(hits as f64 / (hits + misses) as f64, 0.0);

    InMemReport {
        companies: engine.corpus().len(),
        products: engine.corpus().vocab().len(),
        train_docs: train.len(),
        test_docs: test.len(),
        train_tokens: n_tokens,
        n_iters: config.n_iters,
        runs,
        deterministic,
        speedup_train,
        parallel_penalty,
        gibbs_tokens_per_second,
        pr3_baseline,
        serve_queries: queries.len(),
        serve_k: k,
        cold_p50: percentile(&cold, 50.0),
        cold_p99: percentile(&cold, 99.0),
        warm_p50: percentile(&warm, 50.0),
        warm_p99: percentile(&warm, 99.0),
        hit_rate,
    }
}

/// Phase 4: stream-generate to disk shards, train sharded Gibbs + one
/// online-VB epoch out-of-core, record throughput and peak RSS.
fn run_sharded(scale: &ExpScale) -> ShardedReport {
    set_threads(1);
    let dir = std::env::temp_dir().join(format!("hlm_bench_shards_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = GeneratorConfig::with_size_and_seed(scale.n_companies, scale.seed);
    // One shard ≈ 64k companies at xl; small scales still exercise ≥4
    // shards so the merge path is never trivially single-shard.
    let n_shards = (scale.n_companies / 65_536).clamp(4, 64);
    eprintln!(
        "[hlm-bench] sharded: stream-generating {} companies into {n_shards} shards…",
        scale.n_companies
    );
    let t0 = Instant::now();
    let store = hlm_datagen::generate_sharded(&cfg, n_shards, &dir)
        .expect("stream-generate the sharded corpus");
    let gen_seconds = t0.elapsed().as_secs_f64();
    let manifest = store.manifest();
    let (companies, tokens) = (manifest.n_companies, manifest.total_tokens);
    let disk_bytes: u64 = manifest.shards.iter().map(|s| s.bytes).sum();

    let lda = LdaConfig {
        n_topics: 3,
        vocab_size: store.vocab().len(),
        n_iters: scale.lda_iters.max(2),
        burn_in: scale.lda_iters.max(2) / 2,
        sample_lag: 5,
        seed: scale.seed,
        ..Default::default()
    };
    let gibbs_sweeps = lda.n_iters;
    eprintln!("[hlm-bench] sharded: {gibbs_sweeps} Gibbs sweeps over {tokens} tokens…");
    let t1 = Instant::now();
    let gibbs = hlm_engine::fit_lda_sharded_gibbs(
        lda.clone(),
        &store,
        dir.join(".gibbs_work"),
        TrainPlan::default(),
    )
    .expect("sharded Gibbs fit");
    let gibbs_seconds = t1.elapsed().as_secs_f64();
    assert_eq!(gibbs.model.phi().rows(), lda.n_topics);

    let vb_epochs = 1usize;
    eprintln!("[hlm-bench] sharded: {vb_epochs} online-VB epoch…");
    let opts = OnlineVbOptions {
        epochs: vb_epochs,
        ..OnlineVbOptions::default()
    };
    let t2 = Instant::now();
    let vb = hlm_engine::fit_lda_sharded_online_vb(lda.clone(), opts, &store, TrainPlan::default())
        .expect("sharded online-VB fit");
    let vb_seconds = t2.elapsed().as_secs_f64();
    assert_eq!(vb.model.phi().rows(), lda.n_topics);

    let peak_rss_bytes = hlm_obs::peak_rss_bytes().unwrap_or(0);
    let estimate = in_memory_bytes_estimate(companies, tokens, lda.n_topics as u64);
    let rss_ratio = json::finite_or(peak_rss_bytes as f64 / estimate as f64, 0.0);
    let _ = std::fs::remove_dir_all(&dir);

    ShardedReport {
        companies,
        tokens,
        n_shards: manifest.shards.len(),
        shard_size: manifest.shard_size,
        disk_bytes,
        gen_seconds,
        gibbs_sweeps,
        gibbs_seconds,
        gibbs_tokens_per_second: json::finite_or(
            (tokens as f64) * gibbs_sweeps as f64 / gibbs_seconds,
            0.0,
        ),
        vb_epochs,
        vb_seconds,
        vb_tokens_per_second: json::finite_or((tokens as f64) * vb_epochs as f64 / vb_seconds, 0.0),
        peak_rss_bytes,
        in_memory_bytes_estimate: estimate,
        rss_ratio,
    }
}

/// Phase 5: the PR 8 sampler-kernel shoot-out. K = 128 is the first regime
/// `SamplerChoice::Auto` routes to alias-MH (everything ≤ 64 goes to the
/// scanning kernels), and on the paper's 38-product vocabulary a medium
/// corpus makes every word-topic row dense there — the bucket sampler's
/// per-token scan is provably O(K) while the alias proposals stay O(1).
/// Measuring at K = 128 *and* K = 256 exposes that scaling: the alias
/// kernel's time stays flat while the scanning kernels double.
fn run_samplers(scale: &ExpScale, hardware: usize) -> SamplerReport {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let train = hlm_core::representations::binary_docs(&corpus, &split.train);
    let tokens: usize = train.iter().map(Vec::len).sum();
    let sweeps = (scale.lda_iters / 4).max(8);
    let config = |k: usize, sampler: SamplerChoice| LdaConfig {
        n_topics: k,
        vocab_size: corpus.vocab().len(),
        n_iters: sweeps,
        burn_in: sweeps / 2,
        sample_lag: 5,
        seed: scale.seed,
        sampler,
        ..Default::default()
    };

    set_threads(1);
    // Interleaved rounds (dense, bucket, alias, dense, …) rather than
    // best-of-N per kernel back to back: host-level throttling drifts on
    // the scale of a whole phase, and interleaving exposes every kernel to
    // the same drift so the *ratios* stay honest even when absolute times
    // wobble.
    const KERNELS: [(&str, SamplerChoice); 3] = [
        ("dense", SamplerChoice::Dense),
        ("bucket", SamplerChoice::Bucket),
        ("alias", SamplerChoice::AliasMh),
    ];
    let mut by_k = Vec::new();
    for k in [128usize, 256] {
        let mut best = [f64::INFINITY; KERNELS.len()];
        for round in 0..4 {
            eprintln!(
                "[hlm-bench] samplers: round {round}: {KERNELS:?} K={k}, {sweeps} sweeps, 1 thread…"
            );
            for (slot, (_, sampler)) in KERNELS.iter().enumerate() {
                let t0 = Instant::now();
                let model = GibbsTrainer::new(config(k, *sampler)).fit(&train);
                best[slot] = best[slot].min(t0.elapsed().as_secs_f64());
                assert_eq!(model.phi().rows(), k);
            }
        }
        let serial: Vec<SamplerRun> = KERNELS
            .iter()
            .zip(best)
            .map(|((name, _), train_seconds)| SamplerRun {
                name,
                train_seconds,
                tokens_per_second: json::finite_or((tokens * sweeps) as f64 / train_seconds, 0.0),
            })
            .collect();
        let alias_vs_dense = json::finite_or(
            serial[2].tokens_per_second / serial[0].tokens_per_second,
            0.0,
        );
        let alias_vs_bucket = json::finite_or(
            serial[2].tokens_per_second / serial[1].tokens_per_second,
            0.0,
        );
        by_k.push(SamplerKGroup {
            k,
            sweeps,
            serial,
            alias_vs_dense,
            alias_vs_bucket,
        });
    }

    // Thread sweep of the alias-MH kernel. The sampler is deterministic by
    // construction at any thread count; the benchmark asserts it anyway so
    // a bit-identity regression can never hide behind a speedup headline.
    let thread_k = by_k[0].k;
    let mut thread_sweep = Vec::new();
    let mut phi_bits: Option<Vec<u64>> = None;
    let mut deterministic = true;
    for threads in [1usize, 2, 4, 8] {
        set_threads(threads);
        eprintln!("[hlm-bench] samplers: alias kernel at {threads} thread(s)…");
        let t0 = Instant::now();
        let model = GibbsTrainer::new(config(thread_k, SamplerChoice::AliasMh)).fit(&train);
        let secs = t0.elapsed().as_secs_f64();
        let bits: Vec<u64> = model.phi().as_slice().iter().map(|x| x.to_bits()).collect();
        match &phi_bits {
            None => phi_bits = Some(bits),
            Some(first) => deterministic &= *first == bits,
        }
        thread_sweep.push((threads, secs));
    }
    assert!(
        deterministic,
        "alias-MH phi must be bit-identical at every thread count"
    );
    set_threads(1);

    SamplerReport {
        tokens,
        by_k,
        thread_k,
        alias_speedup_1_to_8: json::finite_or(thread_sweep[0].1 / thread_sweep[3].1, 0.0),
        thread_sweep,
        speedup_valid: hardware > 1,
        deterministic,
    }
}

/// One read-path kernel measurement. `batch == 1` for single-query
/// kernels; blocked kernels report queries/s across the whole micro-batch
/// and *amortized* per-query latency (batch wall clock / batch size).
struct QueryKernelRun {
    name: &'static str,
    batch: usize,
    queries_per_second: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Phase 6 at one corpus size: the kernel shoot-out plus the IVF
/// recall@10 sweep for both store precisions.
struct QuerySizeGroup {
    n: usize,
    n_cells: usize,
    kernels: Vec<QueryKernelRun>,
    blocked_f64_speedup: f64,
    f32_speedup: f64,
    recall_queries: usize,
    /// Probe widths measured, last entry = `n_cells` (exact for f64).
    n_probes: Vec<usize>,
    recall_f64: Vec<f64>,
    recall_f32: Vec<f64>,
}

/// Everything phase 6 measures (query-path kernels; skipped at xl).
struct QueryPathReport {
    dims: usize,
    k: usize,
    batch: usize,
    sizes: Vec<QuerySizeGroup>,
}

const QP_DIMS: usize = 16;
const QP_CENTERS: usize = 64;
const QP_BATCH: usize = 16;
const QP_K: usize = 10;

/// Clustered Gaussian blobs — the representation shape IVF (and the f32
/// recall gate) assumes, with nearest-neighbour gaps large enough that
/// f32 rounding cannot flip the top-10 boundary. Same generator family as
/// `benches/bench_query_path.rs` and `tests/query_path.rs`.
fn blob_matrix(rows: usize, seed: u64) -> Matrix {
    let mut state = seed.max(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let centroids: Vec<Vec<f64>> = (0..QP_CENTERS)
        .map(|_| (0..QP_DIMS).map(|_| next() * 10.0).collect())
        .collect();
    let mut m = Matrix::zeros(rows, QP_DIMS);
    for i in 0..rows {
        let c = &centroids[i % QP_CENTERS];
        for (j, &cj) in c.iter().enumerate() {
            m.set(i, j, cj + (next() - 0.5) * 0.5);
        }
    }
    m
}

/// Times `call` over `n_queries × rounds` invocations, one at a time, and
/// returns (calls/s, p50 µs, p99 µs) over the individual call latencies.
fn time_calls<F: FnMut(usize)>(n_queries: usize, rounds: usize, mut call: F) -> (f64, f64, f64) {
    let mut lat = Vec::with_capacity(n_queries * rounds);
    let t0 = Instant::now();
    for _ in 0..rounds {
        for q in 0..n_queries {
            let t = Instant::now();
            call(q);
            lat.push(t.elapsed().as_secs_f64());
        }
    }
    let total = t0.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (
        json::finite_or(lat.len() as f64 / total, 0.0),
        percentile(&lat, 50.0) * 1e6,
        percentile(&lat, 99.0) * 1e6,
    )
}

/// Phase 6: the PR 10 serving read-path kernel shoot-out. Synthetic blob
/// representations (the corpus plays no role in the kernels), scalar scan
/// vs `RepStore` f64 vs blocked vs f32, strictly one thread — the same
/// no-parallelism-credit rule the thread sweeps above follow — plus the
/// IVF recall@10 diagnostic at n_probe ∈ {1, 4, all}.
fn run_query_path(scale: &ExpScale) -> QueryPathReport {
    let sizes: &[usize] = if matches!(scale.name, "smoke" | "small") {
        &[5_000]
    } else {
        &[20_000, 200_000]
    };
    const ROUNDS: usize = 3;
    const N_QUERIES: usize = 64;
    let metric = DistanceMetric::Cosine;
    let mut groups = Vec::new();
    for &n in sizes {
        eprintln!("[hlm-bench] query path: n={n}, building stores and IVF indexes…");
        let reps = Arc::new(blob_matrix(n, scale.seed));
        let f64_store = RepStore::flat(Arc::clone(&reps), metric, StorePrecision::F64);
        let f32_store = RepStore::flat(Arc::clone(&reps), metric, StorePrecision::F32);
        let query_rows: Vec<usize> = (0..N_QUERIES).map(|i| (i * 9_973) % n).collect();
        let pqs64: Vec<_> = query_rows
            .iter()
            .map(|&q| f64_store.prepare(reps.row(q)))
            .collect();
        let pqs32: Vec<_> = query_rows
            .iter()
            .map(|&q| f32_store.prepare(reps.row(q)))
            .collect();
        let excludes: Vec<Option<usize>> = query_rows.iter().map(|&q| Some(q)).collect();

        // The index build (k-means) and recall diagnostic may use every
        // core — both are deterministic at any thread count. Only the
        // kernel timings below are pinned.
        set_threads(0);
        let n_cells = QP_CENTERS.min(n);
        let idx64 = ClusteredIndex::build_with_precision(
            (*reps).clone(),
            n_cells,
            metric,
            scale.seed,
            StorePrecision::F64,
        )
        .expect("valid cell count");
        let idx32 = ClusteredIndex::build_with_precision(
            (*reps).clone(),
            n_cells,
            metric,
            scale.seed,
            StorePrecision::F32,
        )
        .expect("valid cell count");
        let recall_rows: Vec<usize> = (0..n).step_by((n / 200).max(1)).collect();
        let n_probes = vec![1usize, 4.min(n_cells), n_cells];
        let recall_f64 = idx64.recall_at_k_many(&recall_rows, QP_K, &n_probes);
        let recall_f32 = idx32.recall_at_k_many(&recall_rows, QP_K, &n_probes);

        // Kernel timings: one hardware thread, no parallelism credit.
        set_threads(1);
        eprintln!(
            "[hlm-bench] query path: timing kernels, {N_QUERIES} queries x {ROUNDS} rounds, \
             k={QP_K}, 1 thread…"
        );
        let mut kernels = Vec::new();
        let (qps, p50, p99) = time_calls(N_QUERIES, ROUNDS, |i| {
            std::hint::black_box(top_k_similar_scalar(&reps, query_rows[i], QP_K, metric));
        });
        kernels.push(QueryKernelRun {
            name: "scalar_f64",
            batch: 1,
            queries_per_second: qps,
            p50_us: p50,
            p99_us: p99,
        });
        let (qps, p50, p99) = time_calls(N_QUERIES, ROUNDS, |i| {
            std::hint::black_box(f64_store.top_k(&pqs64[i], None, QP_K, Some(query_rows[i])));
        });
        kernels.push(QueryKernelRun {
            name: "store_f64",
            batch: 1,
            queries_per_second: qps,
            p50_us: p50,
            p99_us: p99,
        });
        let n_batches = N_QUERIES / QP_BATCH;
        let (qps, p50, p99) = time_calls(n_batches, ROUNDS, |b| {
            let s = b * QP_BATCH;
            std::hint::black_box(f64_store.top_k_batch(
                &pqs64[s..s + QP_BATCH],
                QP_K,
                &excludes[s..s + QP_BATCH],
            ));
        });
        kernels.push(QueryKernelRun {
            name: "blocked_f64",
            batch: QP_BATCH,
            queries_per_second: qps * QP_BATCH as f64,
            p50_us: p50 / QP_BATCH as f64,
            p99_us: p99 / QP_BATCH as f64,
        });
        let (qps, p50, p99) = time_calls(N_QUERIES, ROUNDS, |i| {
            std::hint::black_box(f32_store.top_k(&pqs32[i], None, QP_K, Some(query_rows[i])));
        });
        kernels.push(QueryKernelRun {
            name: "store_f32",
            batch: 1,
            queries_per_second: qps,
            p50_us: p50,
            p99_us: p99,
        });
        let (qps, p50, p99) = time_calls(n_batches, ROUNDS, |b| {
            let s = b * QP_BATCH;
            std::hint::black_box(f32_store.top_k_batch(
                &pqs32[s..s + QP_BATCH],
                QP_K,
                &excludes[s..s + QP_BATCH],
            ));
        });
        kernels.push(QueryKernelRun {
            name: "blocked_f32",
            batch: QP_BATCH,
            queries_per_second: qps * QP_BATCH as f64,
            p50_us: p50 / QP_BATCH as f64,
            p99_us: p99 / QP_BATCH as f64,
        });

        let qps_of = |name: &str| {
            kernels
                .iter()
                .find(|r| r.name == name)
                .map_or(0.0, |r| r.queries_per_second)
        };
        groups.push(QuerySizeGroup {
            n,
            n_cells,
            blocked_f64_speedup: json::finite_or(qps_of("blocked_f64") / qps_of("scalar_f64"), 0.0),
            f32_speedup: json::finite_or(qps_of("store_f32") / qps_of("scalar_f64"), 0.0),
            kernels,
            recall_queries: recall_rows.len(),
            n_probes,
            recall_f64,
            recall_f32,
        });
    }
    QueryPathReport {
        dims: QP_DIMS,
        k: QP_K,
        batch: QP_BATCH,
        sizes: groups,
    }
}

/// The standalone PR 10 record the CI perf job gates. Written next to the
/// main record so dashboards can track the read path independently.
fn write_query_path_json(
    qp: &QueryPathReport,
    scale: &ExpScale,
    hardware: usize,
    caveat: &str,
    path: &str,
) {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"pr10_query_path\",");
    let _ = writeln!(j, "  \"scale\": \"{}\",", scale.name);
    let _ = writeln!(j, "  \"hardware_threads\": {hardware},");
    let _ = writeln!(j, "  \"caveat\": \"{caveat}\",");
    let _ = writeln!(
        j,
        "  \"config\": {{\"dims\": {}, \"k\": {}, \"batch\": {}, \"metric\": \"cosine\", \
         \"kernel_threads\": 1}},",
        qp.dims, qp.k, qp.batch
    );
    let _ = writeln!(j, "  \"sizes\": [");
    for (gi, g) in qp.sizes.iter().enumerate() {
        let _ = writeln!(j, "    {{\"n\": {}, \"n_cells\": {},", g.n, g.n_cells);
        let _ = writeln!(j, "     \"kernels\": [");
        for (i, r) in g.kernels.iter().enumerate() {
            let _ = writeln!(
                j,
                "       {{\"kernel\": \"{}\", \"batch\": {}, \"queries_per_second\": {:.1}, \
                 \"p50_us\": {:.3}, \"p99_us\": {:.3}}}{}",
                r.name,
                r.batch,
                json::finite_or(r.queries_per_second, 0.0),
                json::finite_or(r.p50_us, 0.0),
                json::finite_or(r.p99_us, 0.0),
                if i + 1 < g.kernels.len() { "," } else { "" }
            );
        }
        let _ = writeln!(j, "     ],");
        let _ = writeln!(
            j,
            "     \"blocked_f64_speedup_vs_scalar\": {:.4}, \"f32_speedup_vs_scalar\": {:.4},",
            g.blocked_f64_speedup, g.f32_speedup
        );
        let _ = writeln!(j, "     \"recall_queries\": {},", g.recall_queries);
        let _ = writeln!(j, "     \"recall_at_10\": [");
        for (i, &p) in g.n_probes.iter().enumerate() {
            let _ = writeln!(
                j,
                "       {{\"n_probe\": {p}, \"f64\": {:.6}, \"f32\": {:.6}}}{}",
                json::finite_or(g.recall_f64[i], 0.0),
                json::finite_or(g.recall_f32[i], 0.0),
                if i + 1 < g.n_probes.len() { "," } else { "" }
            );
        }
        let _ = writeln!(
            j,
            "     ]}}{}",
            if gi + 1 < qp.sizes.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    json::check_finite(&j).expect("query-path json must contain only finite numbers");
    std::fs::write(path, j).expect("write query-path benchmark json");
    eprintln!("[hlm-bench] wrote {path}");
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (want_json, json_path) = match argv.first().map(String::as_str) {
        None => (false, String::new()),
        Some("--json") => (
            true,
            argv.get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_pr8.json".to_string()),
        ),
        Some(other) => {
            eprintln!("unknown option {other:?}; usage: hlm-bench [--json [PATH]]");
            std::process::exit(2);
        }
    };

    let scale = ExpScale::from_env();
    let is_xl = scale.name == "xl";
    eprintln!(
        "[hlm-bench] scale: {} ({} companies)",
        scale.name, scale.n_companies
    );
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Structural caveats: conditions under which the numbers below cannot
    // mean what a reader will assume they mean. Loud on stderr, recorded
    // verbatim in the JSON so downstream dashboards can't quote a figure
    // without its disclaimer.
    let mut caveats: Vec<String> = Vec::new();
    if hardware == 1 {
        caveats.push(
            "single hardware thread: parallel speedups cannot manifest on this host, \
             only the no-penalty property is testable"
                .to_string(),
        );
    }
    if matches!(scale.name, "smoke" | "small") {
        caveats.push(format!(
            "{} scale: timings are dominated by fixed overheads; \
             use HLM_SCALE=medium or larger for quotable numbers",
            scale.name
        ));
    }
    let caveat = caveats.join("; ");
    if !caveat.is_empty() {
        eprintln!("[hlm-bench] ==================== WARNING ====================");
        for c in &caveats {
            eprintln!("[hlm-bench] CAVEAT: {c}");
        }
        eprintln!("[hlm-bench] =================================================");
    }

    hlm_obs::install(hlm_obs::Recorder::enabled());
    let (inmem, samplers, query_path) = if is_xl {
        eprintln!("[hlm-bench] xl scale: skipping in-memory phases, sharded pipeline only");
        (None, None, None)
    } else {
        (
            Some(run_in_memory(&scale)),
            Some(run_samplers(&scale, hardware)),
            Some(run_query_path(&scale)),
        )
    };
    let sharded = run_sharded(&scale);
    hlm_obs::global().set_gauge(hlm_obs::PEAK_RSS_GAUGE, sharded.peak_rss_bytes as f64);

    if let Some(m) = &inmem {
        println!(
            "corpus: {} companies, {} products, {} docs train / {} test",
            m.companies, m.products, m.train_docs, m.test_docs
        );
        println!(
            "LDA: 3 topics, {} sweeps over {} tokens; hardware threads: {hardware}",
            m.n_iters, m.train_tokens
        );
        for r in &m.runs {
            println!(
                "threads={}: train {:.3}s (best of 3)  eval {:.3}s  perplexity {:.6}",
                r.threads, r.train_seconds, r.eval_seconds, r.perplexity
            );
        }
        println!(
            "speedup (1 -> 8 threads): train {:.2}x  parallel penalty {:.1}%",
            m.speedup_train,
            m.parallel_penalty * 100.0
        );
        println!(
            "gibbs throughput (1 thread): {:.0} tokens/s",
            m.gibbs_tokens_per_second
        );
        match m.pr3_baseline {
            Some((pr3, speedup)) => {
                println!("vs PR3 baseline: {pr3:.3}s serial -> {speedup:.2}x faster")
            }
            None => println!("vs PR3 baseline: BENCH_pr3.json not found, skipped"),
        }
        println!(
            "serve p50/p99: cold {:.1}/{:.1} µs  warm {:.1}/{:.1} µs  cache hit rate {:.0}%",
            m.cold_p50 * 1e6,
            m.cold_p99 * 1e6,
            m.warm_p50 * 1e6,
            m.warm_p99 * 1e6,
            m.hit_rate * 100.0
        );
        println!("deterministic across thread counts: {}", m.deterministic);
    }
    if let Some(sp) = &samplers {
        println!("samplers ({} tokens, 1 thread):", sp.tokens);
        for g in &sp.by_k {
            println!("  K={}, {} sweeps:", g.k, g.sweeps);
            for r in &g.serial {
                println!(
                    "    {:<6} {:.3}s = {:.0} tokens/s",
                    r.name, r.train_seconds, r.tokens_per_second
                );
            }
            println!(
                "    alias vs dense {:.2}x, alias vs bucket {:.2}x",
                g.alias_vs_dense, g.alias_vs_bucket
            );
        }
        let sweep: Vec<String> = sp
            .thread_sweep
            .iter()
            .map(|(t, s)| format!("{t}t={s:.3}s"))
            .collect();
        println!(
            "  alias thread sweep (K={}): {} -> speedup(1->8) {:.2}x{}",
            sp.thread_k,
            sweep.join("  "),
            sp.alias_speedup_1_to_8,
            if sp.speedup_valid {
                ""
            } else {
                " [NOT VALID: single hardware thread]"
            }
        );
    }
    if let Some(qp) = &query_path {
        println!(
            "query path (d={}, k={}, cosine, 1 thread; blocked = batch of {}):",
            qp.dims, qp.k, qp.batch
        );
        for g in &qp.sizes {
            println!("  n={}:", g.n);
            for r in &g.kernels {
                println!(
                    "    {:<12} {:>9.0} queries/s  p50 {:>8.1} µs  p99 {:>8.1} µs",
                    r.name, r.queries_per_second, r.p50_us, r.p99_us
                );
            }
            println!(
                "    blocked-f64 vs scalar {:.2}x, f32 vs scalar {:.2}x",
                g.blocked_f64_speedup, g.f32_speedup
            );
            let fmt = |rs: &[f64]| -> String {
                g.n_probes
                    .iter()
                    .zip(rs)
                    .map(|(p, r)| format!("probe {p}: {r:.4}"))
                    .collect::<Vec<_>>()
                    .join("  ")
            };
            println!("    recall@10 f64: {}", fmt(&g.recall_f64));
            println!("    recall@10 f32: {}", fmt(&g.recall_f32));
        }
    }
    let s = &sharded;
    println!(
        "sharded: {} companies / {} tokens in {} shards x {} ({:.1} MiB on disk), \
         generated in {:.1}s",
        s.companies,
        s.tokens,
        s.n_shards,
        s.shard_size,
        s.disk_bytes as f64 / (1024.0 * 1024.0),
        s.gen_seconds
    );
    println!(
        "sharded gibbs: {} sweeps in {:.1}s = {:.0} tokens/s",
        s.gibbs_sweeps, s.gibbs_seconds, s.gibbs_tokens_per_second
    );
    println!(
        "sharded online-VB: {} epoch(s) in {:.1}s = {:.0} tokens/s",
        s.vb_epochs, s.vb_seconds, s.vb_tokens_per_second
    );
    println!(
        "peak RSS: {:.1} MiB vs {:.1} MiB estimated in-memory footprint ({:.0}%{})",
        s.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        s.in_memory_bytes_estimate as f64 / (1024.0 * 1024.0),
        s.rss_ratio * 100.0,
        if inmem.is_some() {
            "; includes the in-memory phases — the ratio is only meaningful at HLM_SCALE=xl"
        } else {
            ""
        }
    );
    if !caveat.is_empty() {
        println!("caveat: {caveat}");
    }

    if want_json {
        let mut j = String::new();
        let _ = writeln!(j, "{{");
        let _ = writeln!(j, "  \"bench\": \"pr8_sampler_kernels\",");
        let _ = writeln!(j, "  \"scale\": \"{}\",", scale.name);
        let _ = writeln!(j, "  \"hardware_threads\": {hardware},");
        let _ = writeln!(j, "  \"caveat\": \"{caveat}\",");
        if let Some(m) = &inmem {
            let _ = writeln!(
                j,
                "  \"corpus\": {{\"companies\": {}, \"products\": {}, \"train_docs\": {}, \
                 \"test_docs\": {}, \"train_tokens\": {}}},",
                m.companies, m.products, m.train_docs, m.test_docs, m.train_tokens
            );
            let _ = writeln!(
                j,
                "  \"lda\": {{\"n_topics\": 3, \"n_iters\": {}}},",
                m.n_iters
            );
            let _ = writeln!(j, "  \"runs\": [");
            for (i, r) in m.runs.iter().enumerate() {
                let _ = writeln!(
                    j,
                    "    {{\"threads\": {}, \"train_seconds\": {:.6}, \"eval_seconds\": {:.6}, \
                     \"perplexity\": {:.12}}}{}",
                    r.threads,
                    json::finite_or(r.train_seconds, 0.0),
                    json::finite_or(r.eval_seconds, 0.0),
                    json::finite_or(r.perplexity, 0.0),
                    if i + 1 < m.runs.len() { "," } else { "" }
                );
            }
            let _ = writeln!(j, "  ],");
            let _ = writeln!(
                j,
                "  \"speedup_1_to_8\": {{\"train\": {:.4}}},",
                m.speedup_train
            );
            let _ = writeln!(j, "  \"parallel_penalty\": {:.4},", m.parallel_penalty);
            let _ = writeln!(
                j,
                "  \"gibbs\": {{\"tokens_per_second\": {:.1}{}}},",
                m.gibbs_tokens_per_second,
                match m.pr3_baseline {
                    Some((pr3, speedup)) => format!(
                        ", \"pr3_serial_train_seconds\": {pr3:.6}, \"speedup_vs_pr3\": {speedup:.4}"
                    ),
                    None => String::new(),
                }
            );
            let _ = writeln!(
                j,
                "  \"serve\": {{\"queries\": {}, \"k\": {}, \
                 \"cold_p50_us\": {:.3}, \"cold_p99_us\": {:.3}, \
                 \"warm_p50_us\": {:.3}, \"warm_p99_us\": {:.3}, \
                 \"cache_hit_rate\": {:.4}}},",
                m.serve_queries,
                m.serve_k,
                m.cold_p50 * 1e6,
                m.cold_p99 * 1e6,
                m.warm_p50 * 1e6,
                m.warm_p99 * 1e6,
                m.hit_rate
            );
            let _ = writeln!(j, "  \"deterministic\": {},", m.deterministic);
        }
        if let Some(sp) = &samplers {
            let _ = writeln!(j, "  \"samplers\": {{\"tokens\": {},", sp.tokens);
            let _ = writeln!(j, "    \"by_k\": [");
            for (gi, g) in sp.by_k.iter().enumerate() {
                let _ = writeln!(j, "      {{\"k\": {}, \"sweeps\": {},", g.k, g.sweeps);
                let _ = writeln!(j, "       \"serial\": [");
                for (i, r) in g.serial.iter().enumerate() {
                    let _ = writeln!(
                        j,
                        "         {{\"sampler\": \"{}\", \"train_seconds\": {:.6}, \
                         \"tokens_per_second\": {:.1}}}{}",
                        r.name,
                        json::finite_or(r.train_seconds, 0.0),
                        r.tokens_per_second,
                        if i + 1 < g.serial.len() { "," } else { "" }
                    );
                }
                let _ = writeln!(j, "       ],");
                let _ = writeln!(
                    j,
                    "       \"alias_vs_dense\": {:.4}, \"alias_vs_bucket\": {:.4}}}{}",
                    g.alias_vs_dense,
                    g.alias_vs_bucket,
                    if gi + 1 < sp.by_k.len() { "," } else { "" }
                );
            }
            let _ = writeln!(j, "    ],");
            let _ = writeln!(j, "    \"thread_sweep_k\": {},", sp.thread_k);
            let _ = writeln!(j, "    \"thread_sweep\": [");
            for (i, (t, s)) in sp.thread_sweep.iter().enumerate() {
                let _ = writeln!(
                    j,
                    "      {{\"threads\": {t}, \"train_seconds\": {:.6}}}{}",
                    json::finite_or(*s, 0.0),
                    if i + 1 < sp.thread_sweep.len() {
                        ","
                    } else {
                        ""
                    }
                );
            }
            let _ = writeln!(j, "    ],");
            let _ = writeln!(
                j,
                "    \"alias_speedup_1_to_8\": {:.4}, \"speedup_valid\": {}, \
                 \"deterministic\": {}}},",
                sp.alias_speedup_1_to_8, sp.speedup_valid, sp.deterministic
            );
        }
        let _ = writeln!(
            j,
            "  \"sharded\": {{\"companies\": {}, \"tokens\": {}, \"n_shards\": {}, \
             \"shard_size\": {}, \"disk_bytes\": {}, \"gen_seconds\": {:.3},",
            s.companies, s.tokens, s.n_shards, s.shard_size, s.disk_bytes, s.gen_seconds
        );
        let _ = writeln!(
            j,
            "    \"gibbs_sweeps\": {}, \"gibbs_seconds\": {:.3}, \
             \"gibbs_tokens_per_second\": {:.1},",
            s.gibbs_sweeps, s.gibbs_seconds, s.gibbs_tokens_per_second
        );
        let _ = writeln!(
            j,
            "    \"vb_epochs\": {}, \"vb_seconds\": {:.3}, \"vb_tokens_per_second\": {:.1},",
            s.vb_epochs, s.vb_seconds, s.vb_tokens_per_second
        );
        let _ = writeln!(
            j,
            "    \"peak_rss_bytes\": {}, \"in_memory_bytes_estimate\": {}, \
             \"rss_ratio\": {:.4}}}",
            s.peak_rss_bytes, s.in_memory_bytes_estimate, s.rss_ratio
        );
        let _ = writeln!(j, "}}");
        json::check_finite(&j).expect("benchmark json must contain only finite numbers");
        std::fs::write(&json_path, j).expect("write benchmark json");
        eprintln!("[hlm-bench] wrote {json_path}");
        if let Some(qp) = &query_path {
            write_query_path_json(qp, &scale, hardware, &caveat, "BENCH_pr10.json");
        }
    }
}
