//! Regenerates the corresponding paper artefact; see DESIGN.md §4.
//! Scale via `HLM_SCALE=smoke|small|medium|paper` (default: small).

fn main() {
    let scale = hlm_bench::ExpScale::from_env();
    eprintln!(
        "[fig8_fig9_tsne] scale: {} ({} companies)",
        scale.name, scale.n_companies
    );
    for table in hlm_bench::experiments::fig8_fig9_tsne::run(&scale) {
        hlm_bench::emit(&table);
    }
}
