//! Regenerates every reproduced table and figure in one run (the source of
//! EXPERIMENTS.md). Scale via `HLM_SCALE` (default: small).

fn main() {
    let scale = hlm_bench::ExpScale::from_env();
    eprintln!(
        "[run_all] scale: {} ({} companies)",
        scale.name, scale.n_companies
    );
    use hlm_bench::experiments as e;
    let start = std::time::Instant::now();
    type Phase = (
        &'static str,
        fn(&hlm_bench::ExpScale) -> Vec<hlm_eval::report::Table>,
    );
    let phases: Vec<Phase> = vec![
        ("sequentiality + n-gram baselines", e::sequentiality::run),
        ("Figure 2 (LDA perplexity)", e::fig2_lda::run),
        ("Figure 1 (LSTM perplexity)", e::fig1_lstm::run),
        ("Table 1 (minimum perplexities)", e::table1::run),
        (
            "Figures 3-4 (recommendation accuracy)",
            e::fig3_fig4_recommendation::run,
        ),
        ("Figures 5-6 (BPMF)", e::fig5_fig6_bpmf::run),
        ("Figure 7 (silhouette curves)", e::fig7_silhouette::run),
        ("Figures 8-9 (t-SNE product maps)", e::fig8_fig9_tsne::run),
        ("Ablations", e::ablations::run),
    ];
    for (name, f) in phases {
        eprintln!("[run_all] === {name} ===");
        let t0 = std::time::Instant::now();
        for table in f(&scale) {
            hlm_bench::emit(&table);
        }
        eprintln!("[run_all] {name} took {:.1}s", t0.elapsed().as_secs_f64());
    }
    eprintln!("[run_all] total {:.1}s", start.elapsed().as_secs_f64());
}
