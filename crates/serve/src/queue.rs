//! Bounded admission queue with explicit load shedding.
//!
//! The server's first line of defence: every query must win a slot here
//! before any model work happens. When the queue is full the connection
//! thread sheds the request immediately (HTTP 503 + `Retry-After`) instead
//! of queueing unboundedly — under overload, latency of *accepted* requests
//! stays bounded and the excess is refused cheaply.
//!
//! The queue is also the drain point for graceful shutdown: [`close`]
//! rejects new work but lets workers keep popping until the backlog is
//! flushed, so accepted requests are never dropped on the floor.
//!
//! [`close`]: AdmissionQueue::close

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why [`AdmissionQueue::try_push`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity — shed the request (503 + `Retry-After`).
    Full,
    /// The server is draining — no new work is admitted (503, no retry soon).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue: producers never block (they shed), consumers
/// block with a timeout so they can notice shutdown.
pub struct AdmissionQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` jobs at a time.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A panic while holding this lock would poison every later request;
        // the critical sections below cannot panic, so recover the guard.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admit a job, or refuse without blocking. On success returns the new
    /// queue depth (for the `serve.queue_depth` gauge).
    pub fn try_push(&self, item: T) -> Result<usize, AdmitError> {
        let mut s = self.lock();
        if s.closed {
            return Err(AdmitError::Closed);
        }
        if s.items.len() >= self.capacity {
            return Err(AdmitError::Full);
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Pop up to `max` jobs, blocking up to `wait` for the first one. Returns
    /// an empty batch on timeout, or when the queue is closed *and* empty —
    /// callers distinguish the two via [`is_closed`](Self::is_closed).
    pub fn pop_batch(&self, max: usize, wait: Duration) -> Vec<T> {
        let mut s = self.lock();
        while s.items.is_empty() && !s.closed {
            let (guard, timeout) = self
                .ready
                .wait_timeout(s, wait)
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let n = s.items.len().min(max.max(1));
        s.items.drain(..n).collect()
    }

    /// Stop admitting new jobs and wake every blocked consumer. Already
    /// queued jobs remain poppable so the backlog can be flushed.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn sheds_when_full_and_preserves_fifo_order() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(AdmitError::Full));
        assert_eq!(q.pop_batch(8, Duration::ZERO), vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_caps_at_max() {
        let q = AdmissionQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(2, Duration::ZERO), vec![0, 1]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn close_rejects_producers_but_flushes_backlog() {
        let q = AdmissionQueue::new(8);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(AdmitError::Closed));
        // The backlog is still drained — accepted work is never dropped.
        assert_eq!(q.pop_batch(8, Duration::ZERO), vec![7]);
        assert!(q.pop_batch(8, Duration::from_millis(50)).is_empty());
        assert!(q.is_closed());
    }

    #[test]
    fn close_wakes_a_blocked_consumer() {
        let q = Arc::new(AdmissionQueue::<u32>::new(8));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4, Duration::from_secs(30)))
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(Duration::from_millis(20));
        let start = Instant::now();
        q.close();
        assert!(waiter.join().unwrap().is_empty());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "close must wake the consumer, not wait out the timeout"
        );
    }

    #[test]
    fn timeout_returns_empty_without_closing() {
        let q = AdmissionQueue::<u32>::new(2);
        assert!(q.pop_batch(4, Duration::from_millis(10)).is_empty());
        assert!(!q.is_closed());
        q.try_push(1).unwrap();
        assert_eq!(q.pop_batch(4, Duration::from_millis(10)), vec![1]);
    }
}
