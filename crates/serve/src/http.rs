//! A minimal, defensive HTTP/1.1 reader/writer.
//!
//! Just enough protocol for the serving endpoints — and no more, because
//! every feature is attack surface. The parser is strict about limits
//! (request-line and header sizes, header count, body size) and maps every
//! failure to a precise [`HttpError`] so the connection loop can answer with
//! the right status code and close cleanly. Read timeouts installed on the
//! socket surface as [`HttpError::Timeout`], which is how slow-loris clients
//! get disconnected instead of pinning a thread.

use std::io::{self, BufRead, Write};

/// Longest accepted request line or single header line, in bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes.
pub const MAX_BODY: usize = 64 * 1024;

/// Why a request could not be read. Each variant maps to one wire behaviour.
#[derive(Debug)]
pub enum HttpError {
    /// Clean end-of-stream before any request byte: close silently.
    Eof,
    /// The socket read timed out mid-request (slow-loris): 408, close.
    Timeout,
    /// The bytes do not parse as HTTP: 400, close.
    Malformed(String),
    /// A protocol limit was exceeded; the payload says which: 431 for
    /// header-side limits, 413 for the body.
    TooLarge(&'static str),
    /// The transport failed (reset, broken pipe): close silently.
    Io(io::Error),
}

fn map_io(e: io::Error) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Method token, verbatim (`GET`, `POST`, or corrupt garbage — the
    /// router rejects what it doesn't know).
    pub method: String,
    /// Path without the query string, e.g. `/v1/similar`.
    pub path: String,
    /// Decoded `key=value` query parameters, last occurrence wins.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Query parameter lookup.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to drop the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Read one line (LF-terminated, CR stripped) with a byte cap. `Ok(None)`
/// means clean EOF before the first byte of the line.
fn read_line_limited(
    r: &mut impl BufRead,
    cap: usize,
    what: &'static str,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = r.fill_buf().map_err(map_io)?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::Malformed("unterminated line at EOF".into()));
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            r.consume(pos + 1);
            if line.len() > cap {
                return Err(HttpError::TooLarge(what));
            }
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            let s = String::from_utf8(line)
                .map_err(|_| HttpError::Malformed("non-UTF-8 bytes in line".into()))?;
            return Ok(Some(s));
        }
        line.extend_from_slice(buf);
        let n = buf.len();
        r.consume(n);
        if line.len() > cap {
            return Err(HttpError::TooLarge(what));
        }
    }
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// Read and parse one request. Call in a loop for keep-alive connections;
/// [`HttpError::Eof`] is the clean "client is done" signal.
pub fn read_request(r: &mut impl BufRead) -> Result<Request, HttpError> {
    let line = match read_line_limited(r, MAX_LINE, "request line")? {
        Some(l) => l,
        None => return Err(HttpError::Eof),
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::Malformed(format!("bad request line: {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version: {version:?}")));
    }
    // Corrupt frames routinely land here as garbage method tokens; a
    // non-alphanumeric byte can never start a real method.
    if method.bytes().any(|b| !b.is_ascii_alphanumeric()) {
        return Err(HttpError::Malformed(format!("bad method: {method:?}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = match read_line_limited(r, MAX_LINE, "header line")? {
            Some(l) => l,
            None => return Err(HttpError::Malformed("EOF inside headers".into())),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("header count"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length: {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge("body"));
    }
    if content_length > 0 {
        body.resize(content_length, 0);
        r.read_exact(&mut body).map_err(map_io)?;
    }

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// A response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    /// Attach an extra header.
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.extra_headers.push((name, value));
        self
    }

    /// Serialize onto the wire. `close` controls the `Connection` header.
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason_for(self.status),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Canonical reason phrase for the statuses the server emits.
pub fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(b"GET /v1/similar?company=7&k=5 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/similar");
        assert_eq!(req.param("company"), Some("7"));
        assert_eq!(req.param("k"), Some("5"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_body_and_connection_close() {
        let req = parse(
            b"POST /admin/swap HTTP/1.1\r\nContent-Length: 4\r\nConnection: Close\r\n\r\nwarm",
        )
        .unwrap();
        assert_eq!(req.body, b"warm");
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_not_an_error_to_report() {
        assert!(matches!(parse(b""), Err(HttpError::Eof)));
    }

    #[test]
    fn corrupt_request_line_is_malformed() {
        assert!(matches!(
            parse(b"G\x00T / HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_header_is_431_material() {
        let mut raw = b"GET / HTTP/1.1\r\nx-big: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE + 10));
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(
            parse(&raw),
            Err(HttpError::TooLarge("header line"))
        ));
    }

    #[test]
    fn oversized_body_is_413_material() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(raw.as_bytes()),
            Err(HttpError::TooLarge("body"))
        ));
    }

    #[test]
    fn too_many_headers_are_shed() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            raw.extend_from_slice(format!("x-{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(
            parse(&raw),
            Err(HttpError::TooLarge("header count"))
        ));
    }

    #[test]
    fn response_serializes_with_length_and_connection() {
        let mut out = Vec::new();
        Response::json(503, "{\"error\":\"overloaded\"}".into())
            .with_header("retry-after", "1".into())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("content-length: 22\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"overloaded\"}"));
    }

    #[test]
    fn keep_alive_reads_two_requests_from_one_stream() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        assert_eq!(read_request(&mut r).unwrap().path, "/a");
        assert_eq!(read_request(&mut r).unwrap().path, "/b");
        assert!(matches!(read_request(&mut r), Err(HttpError::Eof)));
    }
}
