//! Live event-stream replay with drift-triggered incremental retraining.
//!
//! The paper's Section-6 deployment story, driven end to end: an event
//! stream ([`hlm_datagen::generate_events`]) unfolds month by month against
//! a *running* [`Server`](crate::Server). Each month the driver
//!
//! 1. **evaluates** the serving model's hit rate at `top_n` on the month's
//!    incoming acquisitions (before revealing them — a true forward test),
//! 2. **applies** the month's events to the replayed market state,
//! 3. runs the **drift detector** over a trailing reference/recent window
//!    pair anchored at the month the serving model was last trained,
//! 4. and per [`RetrainPolicy`] either does nothing, **folds in** vocabulary
//!    growth ([`hlm_engine::fold_in_lda`] — cheap, no full refit), or
//!    **retrains** from scratch with a checkpointed resumable fit
//!    ([`hlm_engine::fit_lda_resilient`]).
//!
//! Updated models reach the serving path through the production machinery,
//! not a side door: the driver stages a candidate [`ModelBundle`], and the
//! server's [`BundleLoader`] hands it to `POST /admin/swap`, which
//! canary-probes and atomically installs it (or rolls back).
//!
//! # Determinism and resume
//!
//! A replay is a pure function of its [`ReplayConfig`]: the stream is
//! seeded, fits are bit-identical at any thread count, fold-in is serial,
//! and evaluation is serial. There is deliberately **no** separate replay
//! state file — a killed replay resumes by re-driving the deterministic
//! stream with `resume = true`; completed fits fast-forward instantly from
//! their final checkpoints (each fit checkpoints into its own
//! `fit-NNN/` subdirectory), the interrupted fit continues from its last
//! good sweep, and the resumed run's models, precision rows, and swap
//! sequence are bit-identical to an uninterrupted run's.
//!
//! Counters: `replay.events`, `replay.drift_checks` (valid reports only),
//! `replay.retrains`, `replay.swaps`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use hlm_core::DistanceMetric;
use hlm_corpus::{CompanyId, Month, TimeWindow};
use hlm_datagen::{generate_events, EventStream, EventStreamConfig, StreamEvent, StreamState};
use hlm_engine::{
    fit_lda_resilient, fold_in_lda, Engine, EngineError, LdaEstimator, RunGuard, ServeOptions,
    TrainPlan,
};
use hlm_lda::{FoldInOptions, LdaConfig, LdaModel};
use hlm_obs::names;

use crate::{bundle_from_model, BundleLoader, ModelBundle, Server, ServerConfig};

/// When the replay loop retrains the serving model from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainPolicy {
    /// Serve the initial model forever (the baseline the drift-triggered
    /// policy must beat on late-window precision).
    Never,
    /// Retrain every `n` months regardless of what the detector says.
    Periodic(u32),
    /// Retrain when the drift detector reports a significant shift between
    /// the model's training era and the trailing window.
    DriftTriggered,
}

impl FromStr for RetrainPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "never" => Ok(RetrainPolicy::Never),
            "drift" => Ok(RetrainPolicy::DriftTriggered),
            other => {
                if let Some(n) = other.strip_prefix("periodic:") {
                    let n: u32 = n
                        .parse()
                        .map_err(|_| format!("bad periodic interval {n:?}"))?;
                    if n == 0 {
                        return Err("periodic interval must be at least 1 month".into());
                    }
                    Ok(RetrainPolicy::Periodic(n))
                } else {
                    Err(format!(
                        "unknown policy {other:?} (expected never, periodic:N, or drift)"
                    ))
                }
            }
        }
    }
}

/// Deterministic kill switch for the resume drill: abort fit number
/// `fit_index` (0 = the initial fit, 1 = the first retrain, …) once it
/// reaches `iteration`. The aborted replay exits with an interruption
/// error; rerunning with `resume = true` and no abort continues the fit
/// from its checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitAbort {
    /// Which fit to kill (in training order across the whole replay).
    pub fit_index: usize,
    /// Sweep at which the watchdog pulls the plug.
    pub iteration: u64,
}

/// Everything one replay run needs.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// The event stream to replay (generated internally, deterministically).
    pub stream: EventStreamConfig,
    /// How many trailing months of the stream are replayed live; everything
    /// earlier is warmup history the initial model trains on.
    pub serve_months: u32,
    /// Retraining policy.
    pub policy: RetrainPolicy,
    /// Drift-test significance level.
    pub significance: f64,
    /// Reference window length (months, ending at the serving model's
    /// training month).
    pub reference_months: u32,
    /// Recent window length (months, trailing the replay cursor).
    pub recent_months: u32,
    /// LDA settings for the initial fit and retrains. `vocab_size` is
    /// overridden with the market's current vocabulary at each fit; `seed`
    /// is decorrelated per fit.
    pub lda: LdaConfig,
    /// Gibbs sweeps per vocabulary fold-in.
    pub fold_sweeps: usize,
    /// Pseudo-count mass of the base model during fold-in; `None` uses the
    /// current corpus's total token weight (recommended — it lets new
    /// products compete honestly for probability mass).
    pub fold_prior_tokens: Option<f64>,
    /// Recommendations per company when scoring hit rate.
    pub top_n: usize,
    /// Checkpoint root; each fit uses `fit-NNN/` under it. `None` disables
    /// checkpointing (and therefore resume).
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume fits from their latest good checkpoints.
    pub resume: bool,
    /// Deterministic mid-fit abort (resume drill).
    pub abort: Option<FitAbort>,
    /// The server the replay swaps models into (port 0 by default).
    pub server: ServerConfig,
}

impl ReplayConfig {
    /// Defaults tuned for the repo's test-scale streams: replay the last
    /// five years, 12/6-month drift windows at 5%, top-5 scoring.
    pub fn new(stream: EventStreamConfig) -> Self {
        ReplayConfig {
            stream,
            serve_months: 60,
            policy: RetrainPolicy::DriftTriggered,
            significance: 0.05,
            reference_months: 12,
            recent_months: 6,
            lda: LdaConfig::default(),
            fold_sweeps: 20,
            fold_prior_tokens: None,
            top_n: 5,
            checkpoint_dir: None,
            resume: false,
            abort: None,
            server: ServerConfig::default(),
        }
    }
}

/// What the driver did in one month.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayAction {
    /// Kept serving the current model.
    Keep,
    /// Folded vocabulary growth into the model and hot-swapped.
    FoldIn,
    /// Retrained from scratch and hot-swapped.
    Retrain,
}

impl ReplayAction {
    fn as_str(self) -> &'static str {
        match self {
            ReplayAction::Keep => "keep",
            ReplayAction::FoldIn => "fold_in",
            ReplayAction::Retrain => "retrain",
        }
    }
}

/// One month of the precision-over-time curve.
#[derive(Debug, Clone)]
pub struct ReplayRow {
    /// The replayed month.
    pub month: Month,
    /// Events applied this month.
    pub events: u64,
    /// Acquisitions the serving model was scored on (company known, product
    /// in the model's vocabulary, non-empty history).
    pub evaluated: u64,
    /// Scored acquisitions whose product appeared in the model's top-`n`
    /// unowned recommendations.
    pub hits: u64,
    /// Drift-test p-value (NaN when the windows had insufficient data).
    pub drift_p: f64,
    /// Whether a valid drift test rejected homogeneity.
    pub drifted: bool,
    /// What the driver did after seeing this month.
    pub action: ReplayAction,
    /// Serving-model version after this month (0 = initial; +1 per
    /// successful swap).
    pub version: u64,
}

impl ReplayRow {
    /// Hit rate at `top_n` (NaN when nothing was evaluable).
    pub fn hit_rate(&self) -> f64 {
        if self.evaluated == 0 {
            f64::NAN
        } else {
            self.hits as f64 / self.evaluated as f64
        }
    }
}

/// The replay's outcome: the curve plus the counter totals.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// One row per replayed month.
    pub rows: Vec<ReplayRow>,
    /// Total events applied.
    pub events: u64,
    /// Valid drift checks run.
    pub drift_checks: u64,
    /// Full retrains completed.
    pub retrains: u64,
    /// Vocabulary fold-ins performed.
    pub fold_ins: u64,
    /// Successful hot swaps (`POST /admin/swap` answered 200).
    pub swaps: u64,
    /// Final market vocabulary size.
    pub vocab_len: usize,
    /// Companies that arrived by the end of the stream.
    pub companies: usize,
}

impl ReplayOutcome {
    /// The precision-over-time curve as CSV (EXPERIMENTS.md artifact).
    pub fn csv(&self) -> String {
        let mut out =
            String::from("month,events,evaluated,hits,hit_rate,drift_p,drifted,action,version\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                r.month,
                r.events,
                r.evaluated,
                r.hits,
                r.hit_rate(),
                r.drift_p,
                r.drifted,
                r.action.as_str(),
                r.version
            ));
        }
        out
    }

    /// Mean hit rate over the last `months` evaluable rows — the
    /// late-window number the drift-triggered policy must win on.
    pub fn late_hit_rate(&self, months: usize) -> f64 {
        let tail: Vec<&ReplayRow> = self
            .rows
            .iter()
            .rev()
            .filter(|r| r.evaluated > 0)
            .take(months)
            .collect();
        if tail.is_empty() {
            return f64::NAN;
        }
        let hits: u64 = tail.iter().map(|r| r.hits).sum();
        let evaluated: u64 = tail.iter().map(|r| r.evaluated).sum();
        hits as f64 / evaluated as f64
    }
}

/// Generates the configured stream and replays it. See [`replay_stream`].
///
/// # Errors
/// As [`replay_stream`].
pub fn replay(cfg: &ReplayConfig) -> Result<ReplayOutcome, EngineError> {
    let stream = generate_events(&cfg.stream);
    replay_stream(cfg, &stream)
}

/// Replays an already-generated stream against a live server.
///
/// # Errors
/// [`EngineError::InvalidSpec`] on a degenerate configuration (no warmup
/// data, bad windows) or a serving-stack failure; a resumable
/// [`EngineError::Resilience`] interruption when [`ReplayConfig::abort`]
/// (or a watchdog) kills a fit mid-run.
pub fn replay_stream(
    cfg: &ReplayConfig,
    stream: &EventStream,
) -> Result<ReplayOutcome, EngineError> {
    if cfg.serve_months == 0 {
        return Err(invalid("replay needs at least one live month"));
    }
    if cfg.top_n == 0 {
        return Err(invalid("top_n must be at least 1"));
    }
    if cfg.reference_months == 0 || cfg.recent_months == 0 {
        return Err(invalid("drift windows need at least one month each"));
    }
    let serve_start = {
        let s = stream.end.plus_months(-(cfg.serve_months as i32));
        if s <= stream.start {
            return Err(invalid(
                "serve_months swallows the whole stream: nothing left for warmup",
            ));
        }
        s
    };

    // Warmup: apply history, train the initial model on it.
    let mut state = StreamState::new(stream.base_vocab.clone());
    let mut idx = 0;
    while idx < stream.events.len() && stream.events[idx].month() < serve_start {
        state.apply(&stream.events[idx]);
        idx += 1;
    }
    if state.company_count() == 0 {
        return Err(invalid("warmup period contains no companies"));
    }
    let mut fit_index = 0usize;
    let mut model = run_fit(cfg, &state, fit_index)?;
    fit_index += 1;
    let mut model_month = serve_start;
    let mut version = 0u64;

    // The serving stack: candidate bundles are staged here and installed
    // through the server's own swap endpoint.
    let staged: Arc<Mutex<Option<ModelBundle>>> = Arc::new(Mutex::new(None));
    let loader: BundleLoader = {
        let staged = Arc::clone(&staged);
        Box::new(move || {
            staged
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .ok_or_else(|| "no staged bundle".to_string())
        })
    };
    let engine = Arc::new(Engine::new(state.corpus()));
    let bundle = bundle_from_model(
        &engine,
        model.clone(),
        0,
        DistanceMetric::Cosine,
        ServeOptions::default(),
    )
    .map_err(|e| invalid(format!("initial bundle: {e}")))?;
    let server = Server::bind(cfg.server.clone(), engine, bundle, Some(loader))
        .map_err(|e| invalid(format!("bind: {e}")))?;
    let addr = server.local_addr();
    let handle = server.start();

    let rec = hlm_obs::global();
    let mut outcome = ReplayOutcome {
        rows: Vec::new(),
        events: 0,
        drift_checks: 0,
        retrains: 0,
        fold_ins: 0,
        swaps: 0,
        vocab_len: 0,
        companies: 0,
    };

    let mut month = serve_start;
    let result = (|| -> Result<(), EngineError> {
        while month < stream.end {
            let next = month.plus_months(1);
            let mut j = idx;
            while j < stream.events.len() && stream.events[j].month() == month {
                j += 1;
            }
            let month_events = &stream.events[idx..j];

            // 1. Forward test: score this month's acquisitions before the
            // model can see them.
            let (evaluated, hits) = evaluate_month(&model, &state, month_events, cfg.top_n);

            // 2. Reveal the month.
            for ev in month_events {
                state.apply(ev);
            }
            idx = j;
            outcome.events += month_events.len() as u64;
            rec.add(names::REPLAY_EVENTS, month_events.len() as u64);

            // 3. Drift check: "has the market moved since this model was
            // trained?" — reference ends at the model's training month,
            // recent trails the cursor.
            let corpus = state.corpus();
            let reference = TimeWindow {
                start: model_month.plus_months(-(cfg.reference_months as i32)),
                end: model_month,
            };
            let recent = TimeWindow {
                start: next.plus_months(-(cfg.recent_months as i32)),
                end: next,
            };
            let report =
                hlm_eval::drift::detect_drift(&corpus, reference, recent, cfg.significance);
            let valid = report.is_valid();
            if valid {
                outcome.drift_checks += 1;
                rec.add(names::REPLAY_DRIFT_CHECKS, 1);
            }
            let drifted = valid && report.drifted;

            // 4. Act.
            let retrain_due = match cfg.policy {
                RetrainPolicy::Never => false,
                RetrainPolicy::Periodic(n) => next.months_since(model_month) >= n as i32,
                RetrainPolicy::DriftTriggered => drifted,
            };
            let vocab_grew = state.vocab().len() > model.vocab_size();
            let action = if retrain_due {
                ReplayAction::Retrain
            } else if vocab_grew {
                ReplayAction::FoldIn
            } else {
                ReplayAction::Keep
            };
            match action {
                ReplayAction::Retrain => {
                    model = run_fit(cfg, &state, fit_index)?;
                    fit_index += 1;
                    model_month = next;
                    outcome.retrains += 1;
                    rec.add(names::REPLAY_RETRAINS, 1);
                    swap_in(&staged, addr, &state, &model, fit_index as u64)?;
                    outcome.swaps += 1;
                    rec.add(names::REPLAY_SWAPS, 1);
                    version += 1;
                }
                ReplayAction::FoldIn => {
                    let docs = fold_in_docs(&state, model.vocab_size());
                    let opts = FoldInOptions {
                        n_sweeps: cfg.fold_sweeps,
                        prior_tokens: cfg
                            .fold_prior_tokens
                            .unwrap_or_else(|| corpus_token_mass(&state)),
                        // Keyed by the month so every fold draws a distinct,
                        // schedule-independent stream.
                        seed: cfg.lda.seed ^ (next.0 as i64 as u64),
                    };
                    model = fold_in_lda(&model, &docs, state.vocab().len(), &opts)?;
                    outcome.fold_ins += 1;
                    swap_in(&staged, addr, &state, &model, fit_index as u64)?;
                    outcome.swaps += 1;
                    rec.add(names::REPLAY_SWAPS, 1);
                    version += 1;
                }
                ReplayAction::Keep => {}
            }

            outcome.rows.push(ReplayRow {
                month,
                events: month_events.len() as u64,
                evaluated,
                hits,
                drift_p: report.p_value,
                drifted,
                action,
                version,
            });
            month = next;
        }
        Ok(())
    })();

    handle.shutdown();
    result?;
    outcome.vocab_len = state.vocab().len();
    outcome.companies = state.company_count();
    Ok(outcome)
}

fn invalid(reason: impl Into<String>) -> EngineError {
    EngineError::InvalidSpec {
        reason: reason.into(),
    }
}

/// One checkpointed fit over the market as currently replayed. Fit `i`
/// checkpoints into `<dir>/fit-i`; with `resume`, a completed fit
/// fast-forwards from its final checkpoint and an interrupted one continues
/// mid-run — both bit-identical to an uninterrupted fit.
fn run_fit(
    cfg: &ReplayConfig,
    state: &StreamState,
    fit_index: usize,
) -> Result<LdaModel, EngineError> {
    let corpus = state.corpus();
    let ids: Vec<CompanyId> = corpus.ids().collect();
    let docs = hlm_core::representations::binary_docs(&corpus, &ids);
    let mut lda = cfg.lda.clone();
    lda.vocab_size = corpus.vocab().len();
    // Decorrelate retrains without threading a counter through the seed the
    // user configured.
    lda.seed = cfg
        .lda
        .seed
        .wrapping_add((fit_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut plan = TrainPlan::new();
    if let Some(dir) = &cfg.checkpoint_dir {
        plan = plan.on_disk(fit_dir(dir, fit_index))?.resume(cfg.resume);
    }
    if let Some(abort) = cfg.abort {
        if abort.fit_index == fit_index {
            plan = plan.with_guard(RunGuard::unlimited().abort_at_iteration(abort.iteration));
        }
    }
    Ok(fit_lda_resilient(lda, LdaEstimator::Gibbs, &docs, plan)?.model)
}

fn fit_dir(root: &Path, fit_index: usize) -> PathBuf {
    root.join(format!("fit-{fit_index:03}"))
}

/// Documents carrying evidence for columns beyond the model's vocabulary —
/// exactly the companies that own at least one newly launched product.
fn fold_in_docs(state: &StreamState, old_vocab: usize) -> Vec<hlm_lda::WeightedDoc> {
    state
        .companies()
        .iter()
        .filter(|c| c.events().iter().any(|e| e.product.index() >= old_vocab))
        .map(|c| {
            c.product_set()
                .into_iter()
                .map(|p| (p.index(), 1.0))
                .collect()
        })
        .collect()
}

fn corpus_token_mass(state: &StreamState) -> f64 {
    state
        .companies()
        .iter()
        .map(|c| c.product_set().len() as f64)
        .sum::<f64>()
        .max(1.0)
}

/// Score one month's acquisitions against the serving model: for each
/// acquisition of a scorable product by an already-known company, rank the
/// company's unowned products and test whether the acquired one lands in
/// the top `n`. Serial and deterministic.
fn evaluate_month(
    model: &LdaModel,
    state: &StreamState,
    month_events: &[StreamEvent],
    top_n: usize,
) -> (u64, u64) {
    let vocab = model.vocab_size();
    let mut evaluated = 0u64;
    let mut hits = 0u64;
    for ev in month_events {
        let StreamEvent::Acquisition { id, event, .. } = ev else {
            continue;
        };
        if event.product.index() >= vocab || id.index() >= state.company_count() {
            continue;
        }
        let company = &state.companies()[id.index()];
        if company.owns(event.product) {
            // A merge that widens an existing span is not a new product.
            continue;
        }
        let history: Vec<(usize, f64)> = company
            .events()
            .iter()
            .filter(|e| e.product.index() < vocab)
            .map(|e| (e.product.index(), 1.0))
            .collect();
        if history.is_empty() {
            continue;
        }
        evaluated += 1;

        let theta = model.infer_theta(&history);
        let mut scored: Vec<(usize, f64)> = (0..vocab)
            .filter(|&w| !company.owns(hlm_corpus::ProductId(w as u16)))
            .map(|w| {
                let s: f64 = theta
                    .iter()
                    .enumerate()
                    .map(|(t, &th)| th * model.phi().get(t, w))
                    .sum();
                (w, s)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        if scored
            .iter()
            .take(top_n)
            .any(|&(w, _)| w == event.product.index())
        {
            hits += 1;
        }
    }
    (evaluated, hits)
}

/// Build a candidate bundle over the current market, stage it, and install
/// it through the server's own `POST /admin/swap` (canary probe included).
fn swap_in(
    staged: &Mutex<Option<ModelBundle>>,
    addr: SocketAddr,
    state: &StreamState,
    model: &LdaModel,
    checkpoint_iteration: u64,
) -> Result<(), EngineError> {
    // A fresh engine over the grown corpus: the candidate's representations
    // and serving cache must cover every company that has arrived.
    let engine = Engine::new(state.corpus());
    let bundle = bundle_from_model(
        &engine,
        model.clone(),
        checkpoint_iteration,
        DistanceMetric::Cosine,
        ServeOptions::default(),
    )
    .map_err(|e| invalid(format!("candidate bundle: {e}")))?;
    *staged.lock().unwrap_or_else(|e| e.into_inner()) = Some(bundle);
    let reply = post_swap(addr).map_err(|e| invalid(format!("swap request: {e}")))?;
    if !reply.starts_with("HTTP/1.1 200") {
        let first = reply.lines().next().unwrap_or("");
        return Err(invalid(format!("swap rejected: {first}")));
    }
    Ok(())
}

/// Minimal HTTP client for the swap endpoint (std-only, like the server).
fn post_swap(addr: SocketAddr) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!(
                "POST /admin/swap HTTP/1.1\r\nhost: {addr}\r\ncontent-length: 0\r\nconnection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .map_err(|e| format!("send: {e}"))?;
    let mut reply = String::new();
    stream
        .read_to_string(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_and_rejects() {
        assert_eq!(
            "never".parse::<RetrainPolicy>().unwrap(),
            RetrainPolicy::Never
        );
        assert_eq!(
            "periodic:6".parse::<RetrainPolicy>().unwrap(),
            RetrainPolicy::Periodic(6)
        );
        assert_eq!(
            "drift".parse::<RetrainPolicy>().unwrap(),
            RetrainPolicy::DriftTriggered
        );
        assert!("periodic:0".parse::<RetrainPolicy>().is_err());
        assert!("weekly".parse::<RetrainPolicy>().is_err());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut cfg = ReplayConfig::new(EventStreamConfig::with_size_and_seed(30, 1));
        cfg.serve_months = 0;
        assert!(matches!(replay(&cfg), Err(EngineError::InvalidSpec { .. })));
        let mut cfg = ReplayConfig::new(EventStreamConfig::with_size_and_seed(30, 1));
        cfg.serve_months = 10_000;
        assert!(matches!(replay(&cfg), Err(EngineError::InvalidSpec { .. })));
    }

    #[test]
    fn outcome_csv_and_late_window_math() {
        let row = |month: i32, evaluated: u64, hits: u64| ReplayRow {
            month: Month(month),
            events: 3,
            evaluated,
            hits,
            drift_p: 0.5,
            drifted: false,
            action: ReplayAction::Keep,
            version: 0,
        };
        let outcome = ReplayOutcome {
            rows: vec![row(0, 4, 1), row(1, 0, 0), row(2, 4, 3)],
            events: 9,
            drift_checks: 2,
            retrains: 0,
            fold_ins: 0,
            swaps: 0,
            vocab_len: 38,
            companies: 10,
        };
        let csv = outcome.csv();
        assert!(csv.starts_with("month,events,"));
        assert_eq!(csv.lines().count(), 4);
        // Last evaluable row only: 3/4.
        assert!((outcome.late_hit_rate(1) - 0.75).abs() < 1e-12);
        // Both evaluable rows: 4/8.
        assert!((outcome.late_hit_rate(5) - 0.5).abs() < 1e-12);
    }
}
