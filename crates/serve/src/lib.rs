//! `hlm-serve` — a fault-tolerant batched recommendation server.
//!
//! The paper's sales application is interactive: reps look up similar
//! companies and whitespace products live. This crate turns the
//! [`Engine`] facade into a long-running HTTP/1.1 process whose headline
//! feature is robustness, not routing:
//!
//! - **Admission control** — every query must win a slot in a bounded
//!   [`queue::AdmissionQueue`] before any model work happens; when it is
//!   full the request is shed with `503` + `Retry-After` instead of
//!   queueing unboundedly, so accepted-request latency stays bounded
//!   under overload.
//! - **Deadlines** — each request carries a budget (`deadline_ms` query
//!   parameter, defaulting to [`ServerConfig::default_deadline_millis`]).
//!   Jobs that expire in the queue are answered `504` without touching the
//!   model; recommendation budgets propagate into
//!   [`ResilientModel::recommend_within`], so the degraded unigram
//!   fallback and its `degraded` tag flow all the way to the wire.
//! - **Micro-batching** — workers drain the queue in batches and fan
//!   same-shaped queries into the allocation-free
//!   `find_similar_batch`/`recommend_whitespace_batch` kernels.
//! - **Hot swap** — `POST /admin/swap` loads a candidate model (typically
//!   from [`CheckpointStore::latest_good`]), canary-probes it, and either
//!   installs it atomically (generation-stamped, serving cache
//!   invalidated) or rolls back, counting `serve.rollback`.
//! - **Graceful drain** — on shutdown (SIGTERM via
//!   [`install_term_handler`], or [`ServerHandle::shutdown`]) the server
//!   stops accepting, flushes the queue so every admitted request is
//!   answered, and waits for connections to finish.
//!
//! Protocol defence (timeouts, size limits, malformed-input handling)
//! lives in [`http`]; the fault drills in `tests/` drive a real server
//! through [`hlm_resilience::netfault::FaultyStream`] to prove each
//! injected network fault ends in a clean response or a closed socket —
//! never a hung thread or a poisoned queue.

pub mod http;
pub mod queue;
pub mod replay;

pub use replay::{
    replay, replay_stream, FitAbort, ReplayAction, ReplayConfig, ReplayOutcome, ReplayRow,
    RetrainPolicy,
};

use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hlm_core::app::SimilarCompany;
use hlm_core::{CompanyFilter, DistanceMetric, SalesApplication, WhitespaceRecommendation};
use hlm_corpus::CompanyId;
use hlm_engine::{lda_trained, Engine, ResilientModel, ServeOptions, Served};
use hlm_lda::{GibbsTrainer, LdaConfig, LdaModel, GIBBS_CHECKPOINT_KIND};
use hlm_obs::json::{esc, Num};
use hlm_obs::names;
use hlm_resilience::CheckpointStore;

use http::{HttpError, Request, Response};
use queue::{AdmissionQueue, AdmitError};

/// Knobs for one server instance. Defaults favour small test deployments;
/// production tunes `workers`/`queue_capacity` to the machine.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Model-worker threads draining the admission queue.
    pub workers: usize,
    /// Admission queue capacity; beyond this, requests are shed.
    pub queue_capacity: usize,
    /// Most jobs a worker pulls per batch.
    pub batch_max: usize,
    /// Deadline applied when a request does not carry `deadline_ms`.
    pub default_deadline_millis: u64,
    /// Socket read timeout — how long a slow client may dribble one
    /// request before being disconnected with `408`.
    pub read_timeout_millis: u64,
    /// Socket write timeout for responses.
    pub write_timeout_millis: u64,
    /// Requests served per connection before it is recycled.
    pub max_requests_per_conn: usize,
    /// How long shutdown waits for in-flight connections to finish.
    pub drain_grace_millis: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 256,
            batch_max: 16,
            default_deadline_millis: 250,
            read_timeout_millis: 2_000,
            write_timeout_millis: 2_000,
            max_requests_per_conn: 1_024,
            drain_grace_millis: 5_000,
        }
    }
}

/// Requests are clamped to this deadline no matter what the client asks.
const MAX_DEADLINE_MILLIS: u64 = 60_000;
/// Extra slack a connection waits for its worker beyond the job deadline.
const WORKER_GRACE: Duration = Duration::from_secs(5);

/// Everything one model generation needs to serve: the similarity /
/// whitespace application and the deadline-aware resilient recommender,
/// stamped with the serving-cache generation that built it.
pub struct ModelBundle {
    /// Similar-company and whitespace queries (batched kernels inside).
    pub app: SalesApplication,
    /// Next-product recommendation with degraded unigram fallback.
    pub resilient: ResilientModel,
    /// Serving-cache generation captured when this bundle was built.
    pub generation: u64,
    /// Iteration of the checkpoint this bundle came from (0 = in-memory).
    pub checkpoint_iteration: u64,
    /// Primary model label, e.g. `LDA20`.
    pub label: String,
}

/// Produces a candidate [`ModelBundle`] for hot swap (`POST /admin/swap`).
pub type BundleLoader = Box<dyn Fn() -> Result<ModelBundle, String> + Send + Sync>;

/// Build a bundle from an in-memory LDA model. Invalidates the engine's
/// serving cache first so the bundle's captured generation is fresh and no
/// ranking memoized under the previous model can leak through. Serves from
/// the exact f64 scoring store; see
/// [`bundle_from_model_with_precision`] for the opt-in f32 read path.
pub fn bundle_from_model(
    engine: &Engine,
    model: LdaModel,
    checkpoint_iteration: u64,
    metric: DistanceMetric,
    opts: ServeOptions,
) -> Result<ModelBundle, String> {
    bundle_from_model_with_precision(
        engine,
        model,
        checkpoint_iteration,
        metric,
        opts,
        hlm_engine::StorePrecision::F64,
    )
}

/// [`bundle_from_model`] with an explicit scoring precision for the
/// similarity read path (`F32` = reduced-precision store, recall-gated —
/// DESIGN.md §3.10). The batch workers inherit it transparently: they call
/// the application's batched kernels, which score on whatever store the
/// bundle was built with.
pub fn bundle_from_model_with_precision(
    engine: &Engine,
    model: LdaModel,
    checkpoint_iteration: u64,
    metric: DistanceMetric,
    opts: ServeOptions,
    precision: hlm_engine::StorePrecision,
) -> Result<ModelBundle, String> {
    let ids: Vec<CompanyId> = engine.corpus().ids().collect();
    let docs = hlm_core::representations::binary_docs(engine.corpus(), &ids);
    let reprs = hlm_core::representations::lda_representations(&model, &docs);
    engine.serving_cache().invalidate();
    let app = engine
        .sales_app_with_precision(reprs, metric, precision)
        .map_err(|e| format!("sales app: {e}"))?;
    let resilient = engine.resilient_over(lda_trained(model), opts);
    let label = resilient.primary().label().to_string();
    Ok(ModelBundle {
        app,
        resilient,
        generation: engine.serving_cache().generation(),
        checkpoint_iteration,
        label,
    })
}

/// Build a bundle by warming from the latest good checkpoint in `store` —
/// the restart path: a server rebuilt this way answers bit-identically to
/// one that never went down, because the final Gibbs checkpoint holds the
/// exact accumulator state the uninterrupted fit would have normalized.
pub fn bundle_from_checkpoint(
    engine: &Engine,
    config: &LdaConfig,
    store: &CheckpointStore,
    metric: DistanceMetric,
    opts: ServeOptions,
) -> Result<ModelBundle, String> {
    let good = store
        .latest_good(GIBBS_CHECKPOINT_KIND)
        .map_err(|e| format!("checkpoint store: {e}"))?
        .ok_or_else(|| "no good checkpoint to warm from".to_string())?;
    let model = GibbsTrainer::new(config.clone())
        .model_from_checkpoint(&good)
        .map_err(|e| format!("checkpoint {}: {e}", good.iteration))?;
    bundle_from_model(engine, model, good.iteration, metric, opts)
}

/// The gate a candidate bundle must pass before it replaces the serving
/// one: a similarity probe with finite distances and a recommendation
/// probe that the primary answers cleanly (not via fallback) with finite
/// scores. Cheap by design — it runs with live traffic waiting.
fn canary_probe(bundle: &ModelBundle) -> Result<(), String> {
    let sims = bundle
        .app
        .find_similar(CompanyId(0), 3, &CompanyFilter::default())
        .map_err(|e| format!("similarity probe: {e}"))?;
    if sims.iter().any(|s| !s.distance.is_finite()) {
        return Err("similarity probe returned a non-finite distance".into());
    }
    let served = bundle.resilient.recommend_within(&[0], Some(10_000));
    if let Some(why) = &served.degraded {
        return Err(format!("recommendation probe degraded: {why}"));
    }
    if served.value.iter().any(|v| !v.is_finite()) {
        return Err("recommendation probe returned a non-finite score".into());
    }
    Ok(())
}

/// One admitted query, parked in the admission queue.
enum Query {
    Similar { company: u32, k: usize },
    Whitespace { company: u32, k: usize },
    Recommend { history: Vec<usize>, top: usize },
}

struct Job {
    query: Query,
    deadline: Instant,
    enqueued: Instant,
    resp: mpsc::Sender<Response>,
}

struct Shared {
    config: ServerConfig,
    engine: Arc<Engine>,
    bundle: RwLock<Arc<ModelBundle>>,
    loader: Option<BundleLoader>,
    queue: AdmissionQueue<Job>,
    draining: AtomicBool,
    conns: AtomicUsize,
    /// Serializes `/admin/swap` so two concurrent swaps cannot interleave
    /// canary and install.
    swap_lock: Mutex<()>,
}

fn read_bundle(shared: &Shared) -> Arc<ModelBundle> {
    Arc::clone(&shared.bundle.read().unwrap_or_else(|e| e.into_inner()))
}

/// A bound, not-yet-running server. [`run`](Server::run) blocks (CLI use);
/// [`start`](Server::start) spawns it onto a thread and returns a handle
/// (test and embedded use).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the configured address and prepare the serving state. The
    /// server accepts nothing until `run`/`start`.
    pub fn bind(
        config: ServerConfig,
        engine: Arc<Engine>,
        bundle: ModelBundle,
        loader: Option<BundleLoader>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let queue = AdmissionQueue::new(config.queue_capacity.max(1));
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                engine,
                bundle: RwLock::new(Arc::new(bundle)),
                loader,
                queue,
                draining: AtomicBool::new(false),
                conns: AtomicUsize::new(0),
                swap_lock: Mutex::new(()),
            }),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("listener has a local addr")
    }

    /// Serve until `stop` turns true, then drain: stop accepting, flush
    /// the admission queue so every accepted request is answered, wait for
    /// in-flight connections (bounded by `drain_grace_millis`), and zero
    /// the queue-depth gauge.
    pub fn run(self, stop: Arc<AtomicBool>) {
        let Server { listener, shared } = self;
        listener
            .set_nonblocking(true)
            .expect("accept loop needs a non-blocking listener");

        let workers: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hlm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    shared.conns.fetch_add(1, Ordering::SeqCst);
                    let conn_shared = Arc::clone(&shared);
                    let spawned = std::thread::Builder::new()
                        .name("hlm-serve-conn".into())
                        .spawn(move || {
                            handle_conn(&conn_shared, stream);
                            conn_shared.conns.fetch_sub(1, Ordering::SeqCst);
                        });
                    if spawned.is_err() {
                        shared.conns.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }

        // Drain: refuse new work, flush what was admitted, then let
        // connections finish writing.
        shared.draining.store(true, Ordering::SeqCst);
        shared.queue.close();
        for w in workers {
            let _ = w.join();
        }
        let grace = Duration::from_millis(shared.config.drain_grace_millis);
        let gone = Instant::now() + grace;
        while shared.conns.load(Ordering::SeqCst) > 0 && Instant::now() < gone {
            std::thread::sleep(Duration::from_millis(10));
        }
        hlm_obs::global().set_gauge(names::SERVE_QUEUE_DEPTH, 0.0);
    }

    /// Run on a background thread; the returned handle shuts the server
    /// down (and drains it) on [`ServerHandle::shutdown`] or drop.
    pub fn start(self) -> ServerHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::clone(&self.shared);
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("hlm-serve-accept".into())
                .spawn(move || self.run(stop))
                .expect("spawn accept loop")
        };
        ServerHandle {
            addr,
            stop,
            shared,
            thread: Some(thread),
        }
    }
}

/// Handle to a running server (see [`Server::start`]).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Where the server is listening.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Generation of the bundle currently serving.
    pub fn generation(&self) -> u64 {
        read_bundle(&self.shared).generation
    }

    /// Connection threads currently alive — the hung-thread check in the
    /// fault drills asserts this returns to zero.
    pub fn active_connections(&self) -> usize {
        self.shared.conns.load(Ordering::SeqCst)
    }

    /// Jobs currently admitted but not yet answered.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Stop accepting, drain, and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// ---------------------------------------------------------------------------
// Connection path
// ---------------------------------------------------------------------------

fn handle_conn(shared: &Shared, stream: TcpStream) {
    let cfg = &shared.config;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_millis.max(1))));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_millis.max(1))));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;

    for served in 0..cfg.max_requests_per_conn {
        match http::read_request(&mut reader) {
            Ok(req) => {
                let close = req.wants_close() || served + 1 == cfg.max_requests_per_conn;
                let resp = route(shared, &req);
                if resp.write_to(&mut writer, close).is_err() || close {
                    break;
                }
            }
            // Clean end of a keep-alive conversation, or a transport error
            // the peer will never see a response to: just close.
            Err(HttpError::Eof) | Err(HttpError::Io(_)) => break,
            // A slow-loris client ran out its read timeout: tell it (the
            // write may itself fail — fine) and disconnect.
            Err(HttpError::Timeout) => {
                let _ =
                    Response::json(408, err_body("request timed out")).write_to(&mut writer, true);
                break;
            }
            Err(HttpError::Malformed(why)) => {
                let _ = Response::json(400, err_body(&why)).write_to(&mut writer, true);
                break;
            }
            Err(HttpError::TooLarge(what)) => {
                let status = if what == "body" { 413 } else { 431 };
                let _ = Response::json(status, err_body(&format!("{what} too large")))
                    .write_to(&mut writer, true);
                break;
            }
        }
    }
}

fn err_body(msg: &str) -> String {
    format!("{{\"error\":{}}}", jstr(msg))
}

/// A quoted JSON string literal (esc() only escapes; it does not quote).
fn jstr(s: &str) -> String {
    format!("\"{}\"", esc(s))
}

fn route(shared: &Shared, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if shared.draining.load(Ordering::SeqCst) {
                Response::text(503, "draining\n")
            } else {
                Response::text(200, "ready\n")
            }
        }
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            extra_headers: Vec::new(),
            body: hlm_obs::global().snapshot().to_prometheus().into_bytes(),
        },
        ("GET", "/v1/similar") | ("GET", "/v1/whitespace") | ("GET", "/v1/recommend") => {
            admit_and_wait(shared, req)
        }
        ("POST", "/admin/swap") => do_swap(shared),
        ("GET", _) | ("POST", _) => Response::json(404, err_body("no such endpoint")),
        // Anything else — including a corrupt-frame method like `gET` — is
        // answered, not dropped, so the client learns its frame was bad.
        _ => Response::json(400, err_body("unrecognized method")),
    }
}

/// Parse, validate, admit, and wait for the worker's answer. Every exit is
/// an explicit response — validation failures never consume a queue slot.
fn admit_and_wait(shared: &Shared, req: &Request) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::json(503, err_body("draining"));
    }
    let query = match parse_query_request(shared, req) {
        Ok(q) => q,
        Err(resp) => return *resp,
    };
    let deadline_ms = req
        .param("deadline_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(shared.config.default_deadline_millis)
        .min(MAX_DEADLINE_MILLIS);
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);

    let (tx, rx) = mpsc::channel();
    let job = Job {
        query,
        deadline,
        enqueued: Instant::now(),
        resp: tx,
    };
    match shared.queue.try_push(job) {
        Ok(depth) => {
            hlm_obs::global().set_gauge(names::SERVE_QUEUE_DEPTH, depth as f64);
        }
        Err(AdmitError::Full) => {
            hlm_obs::global().add(names::SERVE_SHED, 1);
            return Response::json(503, err_body("overloaded"))
                .with_header("retry-after", "1".into());
        }
        Err(AdmitError::Closed) => {
            return Response::json(503, err_body("draining"));
        }
    }
    match rx.recv_timeout(Duration::from_millis(deadline_ms) + WORKER_GRACE) {
        Ok(resp) => resp,
        // Worker lost (panic) or wildly late: the job sender is parked in
        // the queue; answering 500 here keeps the connection sane.
        Err(_) => Response::json(500, err_body("worker did not answer")),
    }
}

fn parse_query_request(shared: &Shared, req: &Request) -> Result<Query, Box<Response>> {
    let bad = |msg: &str| Box::new(Response::json(400, err_body(msg)));
    let corpus = shared.engine.corpus();
    match req.path.as_str() {
        "/v1/recommend" => {
            let raw = req
                .param("history")
                .ok_or_else(|| bad("missing history parameter"))?;
            let mut history = Vec::new();
            for tok in raw.split(',').filter(|t| !t.is_empty()) {
                let p: usize = tok
                    .parse()
                    .map_err(|_| bad(&format!("bad product index {tok:?}")))?;
                if p >= corpus.vocab().len() {
                    return Err(bad(&format!("product {p} outside vocabulary")));
                }
                history.push(p);
            }
            if history.is_empty() {
                return Err(bad("history must name at least one product"));
            }
            let top = req
                .param("top")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(10)
                .clamp(1, corpus.vocab().len());
            Ok(Query::Recommend { history, top })
        }
        path => {
            let company: u32 = req
                .param("company")
                .ok_or_else(|| bad("missing company parameter"))?
                .parse()
                .map_err(|_| bad("company must be an integer id"))?;
            if company as usize >= corpus.len() {
                return Err(Box::new(Response::json(
                    404,
                    err_body(&format!("company {company} not in corpus")),
                )));
            }
            let k = req
                .param("k")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(10)
                .clamp(1, corpus.len());
            if path == "/v1/similar" {
                Ok(Query::Similar { company, k })
            } else {
                Ok(Query::Whitespace { company, k })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker path
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let batch = shared
            .queue
            .pop_batch(shared.config.batch_max, Duration::from_millis(25));
        if batch.is_empty() {
            if shared.queue.is_closed() && shared.queue.is_empty() {
                return;
            }
            continue;
        }
        hlm_obs::global().set_gauge(names::SERVE_QUEUE_DEPTH, shared.queue.len() as f64);
        let bundle = read_bundle(shared);
        process_batch(&bundle, batch);
    }
}

/// Answer one popped batch: expire what is past deadline, fan the rest
/// into the batched kernels grouped by (query kind, k).
fn process_batch(bundle: &ModelBundle, jobs: Vec<Job>) {
    let now = Instant::now();
    let mut responses: Vec<Option<Response>> = jobs.iter().map(|_| None).collect();
    let mut similar: BTreeMap<usize, Vec<(usize, u32)>> = BTreeMap::new();
    let mut whitespace: BTreeMap<usize, Vec<(usize, u32)>> = BTreeMap::new();

    for (i, job) in jobs.iter().enumerate() {
        if now >= job.deadline {
            hlm_obs::global().add(names::SERVE_DEADLINE_EXCEEDED, 1);
            responses[i] = Some(Response::json(504, err_body("deadline exceeded in queue")));
            continue;
        }
        match &job.query {
            Query::Similar { company, k } => similar.entry(*k).or_default().push((i, *company)),
            Query::Whitespace { company, k } => {
                whitespace.entry(*k).or_default().push((i, *company))
            }
            Query::Recommend { history, top } => {
                let remaining = job.deadline.saturating_duration_since(now).as_millis() as u64;
                let served = bundle
                    .resilient
                    .recommend_within(history, Some(remaining.max(1)));
                responses[i] = Some(recommend_response(bundle, *top, &served));
            }
        }
    }

    let filter = CompanyFilter::default();
    for (k, entries) in similar {
        let ids: Vec<CompanyId> = entries.iter().map(|&(_, c)| CompanyId(c)).collect();
        match bundle.app.find_similar_batch(&ids, k, &filter) {
            Ok(all) => {
                for (&(i, company), results) in entries.iter().zip(&all) {
                    responses[i] = Some(similar_response(bundle, company, k, results));
                }
            }
            Err(e) => {
                for &(i, _) in &entries {
                    responses[i] = Some(Response::json(500, err_body(&format!("{e}"))));
                }
            }
        }
    }
    for (k, entries) in whitespace {
        let ids: Vec<CompanyId> = entries.iter().map(|&(_, c)| CompanyId(c)).collect();
        match bundle.app.recommend_whitespace_batch(&ids, k, &filter) {
            Ok(all) => {
                for (&(i, company), results) in entries.iter().zip(&all) {
                    responses[i] = Some(whitespace_response(bundle, company, k, results));
                }
            }
            Err(e) => {
                for &(i, _) in &entries {
                    responses[i] = Some(Response::json(500, err_body(&format!("{e}"))));
                }
            }
        }
    }

    for (job, resp) in jobs.into_iter().zip(responses) {
        let resp = resp.unwrap_or_else(|| Response::json(500, err_body("unanswered job")));
        if resp.status == 200 {
            hlm_obs::global().observe("serve.e2e_seconds", job.enqueued.elapsed().as_secs_f64());
        }
        // The connection may have given up (its own timeout) — that is its
        // right; dropping the send result cannot poison anything.
        let _ = job.resp.send(resp);
    }
}

fn similar_response(
    bundle: &ModelBundle,
    company: u32,
    k: usize,
    results: &[SimilarCompany],
) -> Response {
    let mut body = format!(
        "{{\"query\":{company},\"k\":{k},\"generation\":{},\"model\":{},\"results\":[",
        bundle.generation,
        jstr(&bundle.label)
    );
    for (i, s) in results.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"id\":{},\"distance\":{}}}",
            s.id.0,
            Num(s.distance)
        ));
    }
    body.push_str("]}");
    Response::json(200, body)
}

fn whitespace_response(
    bundle: &ModelBundle,
    company: u32,
    k: usize,
    results: &[WhitespaceRecommendation],
) -> Response {
    let mut body = format!(
        "{{\"query\":{company},\"k\":{k},\"generation\":{},\"model\":{},\"results\":[",
        bundle.generation,
        jstr(&bundle.label)
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"product\":{},\"score\":{},\"owners\":{}}}",
            r.product.0,
            Num(r.score),
            r.owners_among_similar
        ));
    }
    body.push_str("]}");
    Response::json(200, body)
}

fn recommend_response(bundle: &ModelBundle, top: usize, served: &Served<Vec<f64>>) -> Response {
    let mut order: Vec<usize> = (0..served.value.len()).collect();
    order.sort_by(|&a, &b| {
        served.value[b]
            .partial_cmp(&served.value[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let degraded = match &served.degraded {
        Some(why) => jstr(why),
        None => "null".to_string(),
    };
    let mut body = format!(
        "{{\"generation\":{},\"model\":{},\"degraded\":{degraded},\"top\":[",
        bundle.generation,
        jstr(&bundle.label)
    );
    for (i, &p) in order.iter().take(top).enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"product\":{p},\"score\":{}}}",
            Num(served.value[p])
        ));
    }
    body.push_str("]}");
    Response::json(200, body)
}

// ---------------------------------------------------------------------------
// Hot swap
// ---------------------------------------------------------------------------

/// Load a candidate bundle, canary it, and either install it atomically or
/// keep the current one. Counting discipline: a passed canary increments
/// `serve.hot_swap`; a failed canary increments `serve.rollback`; a loader
/// error is neither — nothing was ever candidate-installed.
fn do_swap(shared: &Shared) -> Response {
    let Some(loader) = &shared.loader else {
        return Response::json(409, err_body("no swap source configured"));
    };
    let _serialized = shared.swap_lock.lock().unwrap_or_else(|e| e.into_inner());
    let candidate = match loader() {
        Ok(c) => c,
        Err(e) => {
            return Response::json(500, err_body(&format!("swap load failed: {e}")));
        }
    };
    match canary_probe(&candidate) {
        Err(why) => {
            hlm_obs::global().add(names::SERVE_ROLLBACK, 1);
            let serving = read_bundle(shared);
            Response::json(
                500,
                format!(
                    "{{\"error\":{},\"rolled_back\":true,\"serving_generation\":{}}}",
                    jstr(&format!("canary failed: {why}")),
                    serving.generation
                ),
            )
        }
        Ok(()) => {
            let body = format!(
                "{{\"generation\":{},\"checkpoint_iteration\":{},\"model\":{}}}",
                candidate.generation,
                candidate.checkpoint_iteration,
                jstr(&candidate.label)
            );
            let mut slot = shared.bundle.write().unwrap_or_else(|e| e.into_inner());
            *slot = Arc::new(candidate);
            drop(slot);
            hlm_obs::global().add(names::SERVE_HOT_SWAP, 1);
            Response::json(200, body)
        }
    }
}

// ---------------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod term {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::sync::OnceLock;

    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    extern "C" fn on_term(_signum: i32) {
        if let Some(flag) = FLAG.get() {
            // A store on an AtomicBool is async-signal-safe.
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Install a SIGTERM + SIGINT handler that flips the returned flag —
    /// pass it to [`crate::Server::run`] for graceful drain on `kill`.
    /// std already links libc on unix, so `signal(2)` is available without
    /// any external crate.
    pub fn install_term_handler() -> Arc<AtomicBool> {
        let flag = FLAG
            .get_or_init(|| {
                extern "C" {
                    fn signal(signum: i32, handler: usize) -> usize;
                }
                const SIGINT: i32 = 2;
                const SIGTERM: i32 = 15;
                unsafe {
                    signal(SIGTERM, on_term as *const () as usize);
                    signal(SIGINT, on_term as *const () as usize);
                }
                Arc::new(AtomicBool::new(false))
            })
            .clone();
        flag
    }
}

#[cfg(unix)]
pub use term::install_term_handler;

#[cfg(not(unix))]
/// Fallback for non-unix targets: no signal wiring, shutdown only via
/// [`ServerHandle::shutdown`] or process exit.
pub fn install_term_handler() -> Arc<AtomicBool> {
    Arc::new(AtomicBool::new(false))
}
