//! End-to-end drills for `hlm-serve`: wire behaviour, shedding, deadlines,
//! hot swap, rollback, graceful drain, and — the headline — the network
//! fault-injection suite, which drives a live server through
//! [`FaultyStream`] and proves every injected fault ends in a clean
//! response or a closed socket, never a hung thread.
//!
//! Overload and drain drills avoid sleep-based timing: they gate the
//! worker on an [`AtomicBool`] the test controls, so "the worker is busy"
//! is an observed fact, not a race.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hlm_datagen::GeneratorConfig;
use hlm_engine::{
    fit_lda_resilient, Engine, EngineError, LdaEstimator, ModelKind, ServeOptions, TrainPlan,
    TrainedModel,
};
use hlm_lda::{LdaConfig, LdaModel};
use hlm_resilience::{FaultyStream, NetFault, NetFaultPlan};
use hlm_serve::{bundle_from_model, ModelBundle, Server, ServerConfig, ServerHandle};

use hlm_core::DistanceMetric;

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(hlm_datagen::generate(
        &GeneratorConfig::with_size_and_seed(120, 11),
    )))
}

fn trained_model(engine: &Engine) -> LdaModel {
    let config = LdaConfig {
        n_topics: 3,
        vocab_size: engine.corpus().vocab().len(),
        n_iters: 12,
        burn_in: 6,
        sample_lag: 3,
        ..Default::default()
    };
    let ids: Vec<_> = engine.corpus().ids().collect();
    let docs = hlm_core::representations::binary_docs(engine.corpus(), &ids);
    fit_lda_resilient(config, LdaEstimator::Gibbs, &docs, TrainPlan::new())
        .expect("tiny LDA fit")
        .model
}

fn bundle(engine: &Engine, model: LdaModel) -> ModelBundle {
    bundle_from_model(
        engine,
        model,
        0,
        DistanceMetric::Cosine,
        ServeOptions::default(),
    )
    .expect("bundle")
}

fn start_default(engine: &Arc<Engine>) -> (ServerHandle, LdaModel) {
    let model = trained_model(engine);
    let b = bundle(engine, model.clone());
    let server = Server::bind(ServerConfig::default(), Arc::clone(engine), b, None).unwrap();
    (server.start(), model)
}

/// Minimal one-shot HTTP client: returns (status, whole response text).
fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    request(
        addr,
        &format!("GET {target} HTTP/1.1\r\nconnection: close\r\n\r\n"),
    )
}

fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    s.write_all(raw.as_bytes()).expect("send");
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read response");
    (parse_status(&text), text)
}

fn parse_status(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Poll until no connection threads remain — the hung-thread check.
fn assert_no_hung_connections(handle: &ServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.active_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "{} connection thread(s) still alive — a fault hung the server",
            handle.active_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn health_ready_metrics_and_queries_respond() {
    let engine = engine();
    let (handle, _model) = start_default(&engine);
    let addr = handle.addr();

    assert_eq!(get(addr, "/healthz").0, 200);
    assert_eq!(get(addr, "/readyz").0, 200);

    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        body_of(&text)
            .lines()
            .all(|l| l.is_empty() || l.contains(' ')),
        "prometheus exposition is `name value` lines"
    );

    let (status, text) = get(addr, "/v1/similar?company=3&k=5");
    assert_eq!(status, 200, "{text}");
    let body = body_of(&text);
    assert!(body.contains("\"query\":3"), "{body}");
    assert_eq!(body.matches("\"id\":").count(), 5, "{body}");

    let (status, text) = get(addr, "/v1/whitespace?company=3&k=5");
    assert_eq!(status, 200, "{text}");
    assert!(body_of(&text).contains("\"results\":["));

    let (status, text) = get(addr, "/v1/recommend?history=0,2&top=4");
    assert_eq!(status, 200, "{text}");
    let body = body_of(&text);
    assert!(body.contains("\"degraded\":null"), "{body}");
    assert_eq!(body.matches("\"product\":").count(), 4, "{body}");

    assert_eq!(get(addr, "/v1/similar?company=999999&k=5").0, 404);
    assert_eq!(get(addr, "/v1/similar?k=5").0, 400);
    assert_eq!(get(addr, "/v1/recommend?history=abc").0, 400);
    assert_eq!(get(addr, "/nope").0, 404);

    handle.shutdown();
}

#[test]
fn batched_answers_match_direct_application_calls() {
    let engine = engine();
    let model = trained_model(&engine);
    let reference = bundle(&engine, model.clone());
    let serving = bundle(&engine, model);
    let server = Server::bind(ServerConfig::default(), Arc::clone(&engine), serving, None).unwrap();
    let handle = server.start();

    let direct = reference
        .app
        .find_similar(
            hlm_corpus::CompanyId(7),
            4,
            &hlm_core::CompanyFilter::default(),
        )
        .unwrap();
    let (status, text) = get(handle.addr(), "/v1/similar?company=7&k=4");
    assert_eq!(status, 200);
    // The wire answer must list exactly the companies the library returns,
    // in order — micro-batching must not change results.
    let body = body_of(&text);
    let mut at = 0;
    for s in &direct {
        let needle = format!("\"id\":{}", s.id.0);
        let pos = body[at..].find(&needle).unwrap_or_else(|| {
            panic!("expected {needle} after byte {at} in {body}");
        });
        at += pos;
    }
    handle.shutdown();
}

/// A primary the tests control: optionally gated on a flag (deterministic
/// overload), optionally slow, optionally poisoned with NaN scores.
struct TestPrimary {
    scores: Vec<f64>,
    delay: Duration,
    hold: Option<Arc<AtomicBool>>,
    started: Arc<AtomicUsize>,
}

impl TrainedModel for TestPrimary {
    fn kind(&self) -> ModelKind {
        ModelKind::Lda
    }
    fn label(&self) -> &str {
        "test-primary"
    }
    fn recommend(&self, _history: &[usize]) -> Result<Vec<f64>, EngineError> {
        self.started.fetch_add(1, Ordering::SeqCst);
        if let Some(hold) = &self.hold {
            let gave_up = Instant::now() + Duration::from_secs(20);
            while hold.load(Ordering::SeqCst) && Instant::now() < gave_up {
                std::thread::sleep(Duration::from_millis(5));
            }
        } else if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        Ok(self.scores.clone())
    }
    fn perplexity(&self, _test: &[Vec<usize>]) -> Result<f64, EngineError> {
        Ok(1.0)
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn smooth_scores(vocab: usize) -> Vec<f64> {
    (0..vocab).map(|i| 1.0 / (1.0 + i as f64)).collect()
}

/// A bundle whose recommender blocks while `hold` is true; `started` counts
/// how many recommendations have entered the primary.
fn gated_bundle(engine: &Engine) -> (ModelBundle, Arc<AtomicBool>, Arc<AtomicUsize>) {
    let model = trained_model(engine);
    let mut b = bundle(engine, model);
    let hold = Arc::new(AtomicBool::new(true));
    let started = Arc::new(AtomicUsize::new(0));
    b.resilient = engine.resilient_over(
        Box::new(TestPrimary {
            scores: smooth_scores(engine.corpus().vocab().len()),
            delay: Duration::ZERO,
            hold: Some(Arc::clone(&hold)),
            started: Arc::clone(&started),
        }),
        ServeOptions {
            request_budget_millis: None,
            ..ServeOptions::default()
        },
    );
    (b, hold, started)
}

fn slow_bundle(engine: &Engine, delay: Duration) -> ModelBundle {
    let model = trained_model(engine);
    let mut b = bundle(engine, model);
    b.resilient = engine.resilient_over(
        Box::new(TestPrimary {
            scores: smooth_scores(engine.corpus().vocab().len()),
            delay,
            hold: None,
            started: Arc::new(AtomicUsize::new(0)),
        }),
        ServeOptions {
            request_budget_millis: None,
            ..ServeOptions::default()
        },
    );
    b
}

#[test]
fn overload_sheds_with_503_and_retry_after_instead_of_queueing() {
    let engine = engine();
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        batch_max: 1,
        default_deadline_millis: 30_000,
        ..ServerConfig::default()
    };
    let (b, hold, started) = gated_bundle(&engine);
    let server = Server::bind(config, Arc::clone(&engine), b, None).unwrap();
    let handle = server.start();
    let addr = handle.addr();

    // r1 enters the (only) worker and blocks on the gate; once `started`
    // ticks the worker is provably busy.
    let r1 = std::thread::spawn(move || get(addr, "/v1/recommend?history=0"));
    wait_until("r1 to reach the primary", || {
        started.load(Ordering::SeqCst) >= 1
    });

    // r2 takes the only queue slot.
    let r2 = std::thread::spawn(move || get(addr, "/v1/recommend?history=1"));
    wait_until("r2 to be admitted", || handle.queue_len() == 1);

    // r3 must be shed: 503 + Retry-After, with no queueing.
    let (status, text) = get(addr, "/v1/recommend?history=2");
    assert_eq!(status, 503, "{text}");
    assert!(text.to_lowercase().contains("retry-after: 1"), "{text}");
    // /healthz bypasses admission even under overload.
    assert_eq!(get(addr, "/healthz").0, 200);

    // Release the gate: both admitted requests complete correctly.
    hold.store(false, Ordering::SeqCst);
    assert_eq!(r1.join().unwrap().0, 200);
    assert_eq!(r2.join().unwrap().0, 200);
    handle.shutdown();
}

#[test]
fn queue_expired_requests_get_504_and_degraded_fallback_tags_the_response() {
    let engine = engine();
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 8,
        batch_max: 1,
        ..ServerConfig::default()
    };
    let b = slow_bundle(&engine, Duration::from_millis(400));
    let server = Server::bind(config, Arc::clone(&engine), b, None).unwrap();
    let handle = server.start();
    let addr = handle.addr();

    // A zero budget is spent by the time the worker pops the job, whatever
    // the scheduler does: guaranteed queue-expiry, answered 504.
    let (status, text) = get(addr, "/v1/recommend?history=1&deadline_ms=0");
    assert_eq!(status, 504, "{text}");
    assert!(body_of(&text).contains("deadline exceeded"), "{text}");

    // A budget shorter than the primary's 400ms latency is answered by the
    // unigram fallback, tagged degraded — not an error.
    let (status, text) = get(addr, "/v1/recommend?history=0&deadline_ms=350");
    assert_eq!(status, 200, "{text}");
    assert!(body_of(&text).contains("\"degraded\":\"primary"), "{text}");
    handle.shutdown();
}

#[test]
fn hot_swap_installs_canaried_bundle_and_bumps_generation() {
    let engine = engine();
    let model = trained_model(&engine);
    let serving = bundle(&engine, model.clone());
    let loader_engine = Arc::clone(&engine);
    let loader: hlm_serve::BundleLoader = Box::new(move || {
        bundle_from_model(
            &loader_engine,
            model.clone(),
            42,
            DistanceMetric::Cosine,
            ServeOptions::default(),
        )
    });
    let server = Server::bind(
        ServerConfig::default(),
        Arc::clone(&engine),
        serving,
        Some(loader),
    )
    .unwrap();
    let handle = server.start();
    let addr = handle.addr();
    let before = handle.generation();

    let (status, text) = request(
        addr,
        "POST /admin/swap HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200, "{text}");
    assert!(
        body_of(&text).contains("\"checkpoint_iteration\":42"),
        "{text}"
    );
    assert!(handle.generation() > before);

    // The new generation serves queries and stamps responses with it.
    let (status, text) = get(addr, "/v1/similar?company=1&k=3");
    assert_eq!(status, 200);
    assert!(
        body_of(&text).contains(&format!("\"generation\":{}", handle.generation())),
        "{text}"
    );
    handle.shutdown();
}

#[test]
fn failed_canary_rolls_back_and_keeps_serving_old_generation() {
    let engine = engine();
    let model = trained_model(&engine);
    let serving = bundle(&engine, model.clone());
    let loader_engine = Arc::clone(&engine);
    let loader: hlm_serve::BundleLoader = Box::new(move || {
        // A candidate whose primary emits NaN scores: the resilient layer
        // degrades it to the fallback, and the canary must refuse to
        // install a bundle that cannot answer cleanly.
        let mut b = bundle_from_model(
            &loader_engine,
            model.clone(),
            7,
            DistanceMetric::Cosine,
            ServeOptions::default(),
        )?;
        b.resilient = loader_engine.resilient_over(
            Box::new(TestPrimary {
                scores: vec![f64::NAN; loader_engine.corpus().vocab().len()],
                delay: Duration::ZERO,
                hold: None,
                started: Arc::new(AtomicUsize::new(0)),
            }),
            ServeOptions::default(),
        );
        Ok(b)
    });
    let server = Server::bind(
        ServerConfig::default(),
        Arc::clone(&engine),
        serving,
        Some(loader),
    )
    .unwrap();
    let handle = server.start();
    let addr = handle.addr();
    let before = handle.generation();

    let (status, text) = request(
        addr,
        "POST /admin/swap HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 500, "{text}");
    assert!(body_of(&text).contains("\"rolled_back\":true"), "{text}");
    assert_eq!(
        handle.generation(),
        before,
        "old generation must keep serving"
    );

    let (status, text) = get(addr, "/v1/recommend?history=0");
    assert_eq!(status, 200);
    assert!(body_of(&text).contains("\"degraded\":null"), "{text}");
    handle.shutdown();
}

#[test]
fn swap_without_a_loader_is_409() {
    let engine = engine();
    let (handle, _model) = start_default(&engine);
    let (status, _) = request(
        handle.addr(),
        "POST /admin/swap HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 409);
    handle.shutdown();
}

#[test]
fn network_fault_suite_never_hangs_the_server() {
    let engine = engine();
    let config = ServerConfig {
        read_timeout_millis: 200,
        ..ServerConfig::default()
    };
    let model = trained_model(&engine);
    let b = bundle(&engine, model);
    let server = Server::bind(config, Arc::clone(&engine), b, None).unwrap();
    let handle = server.start();
    let addr = handle.addr();

    // Drill 1 — partial write: the client "crashes" 10 bytes into its
    // request. The server must time the remnant out and move on.
    {
        let plan = NetFaultPlan::none().with(NetFault::PartialWrite {
            nth: 1,
            at_byte: 10,
        });
        let mut client = FaultyStream::new(TcpStream::connect(addr).unwrap(), plan);
        let err = client
            .write(b"GET /v1/similar?company=1&k=3 HTTP/1.1\r\n\r\n")
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        // Hold the socket open like a crashed-but-unclosed peer briefly.
        std::thread::sleep(Duration::from_millis(50));
    }

    // Drill 2 — mid-request disconnect: half the headers, then gone.
    {
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"GET /v1/similar?company=1").unwrap();
        drop(client);
    }

    // Drill 3 — corrupt frame: one flipped bit turns `GET` into `gET`;
    // the server must answer 400, not guess.
    {
        let plan = NetFaultPlan::none().with(NetFault::CorruptByte {
            nth: 1,
            offset: 0,
            mask: 0x20,
        });
        let raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut client = FaultyStream::new(raw, plan);
        client
            .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert_eq!(parse_status(&text), 400, "{text}");
    }

    // Drill 4 — slow loris: one byte per write, paced slower than the
    // server's read timeout. The server must disconnect the client rather
    // than let it pin a thread.
    {
        let plan = NetFaultPlan::none().with(NetFault::Chunked { max_bytes: 1 });
        let raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut client = FaultyStream::new(raw, plan);
        let doom = b"GET /healthz HTTP/1.1\r\n";
        let mut cut_off = false;
        for chunk in doom.chunks(1).take(6) {
            if client.write_all(chunk).is_err() {
                cut_off = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(80));
        }
        if !cut_off {
            // The server answered 408 (or closed): either way the read
            // side sees the story end.
            let mut text = String::new();
            let _ = client.read_to_string(&mut text);
            assert!(
                text.is_empty() || parse_status(&text) == 408,
                "slow client should see 408 or a closed socket, got {text:?}"
            );
        }
    }

    // The proof: no connection thread survived the drills, and the server
    // still answers cleanly.
    assert_no_hung_connections(&handle);
    assert_eq!(get(addr, "/healthz").0, 200);
    let (status, text) = get(addr, "/v1/similar?company=1&k=3");
    assert_eq!(status, 200, "{text}");
    assert_eq!(handle.queue_len(), 0, "no poisoned jobs left behind");
    handle.shutdown();
}

#[test]
fn graceful_drain_answers_admitted_work_then_stops() {
    let engine = engine();
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 8,
        batch_max: 1,
        default_deadline_millis: 30_000,
        ..ServerConfig::default()
    };
    let (b, hold, started) = gated_bundle(&engine);
    let server = Server::bind(config, Arc::clone(&engine), b, None).unwrap();
    let handle = server.start();
    let addr = handle.addr();

    // Admit one request and wait until the worker is provably processing
    // it, then shut down while it is in flight: drain must flush it.
    let inflight = std::thread::spawn(move || get(addr, "/v1/recommend?history=0"));
    wait_until("the request to reach the primary", || {
        started.load(Ordering::SeqCst) >= 1
    });
    let drainer = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(Duration::from_millis(100));
    hold.store(false, Ordering::SeqCst);
    drainer.join().unwrap();

    let (status, text) = inflight.join().unwrap();
    assert_eq!(status, 200, "drain must flush admitted work: {text}");

    // And the listener is gone.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err(),
        "listener should be closed after drain"
    );
}
