//! The sequentiality test of Mirylenka et al. [19], quoted in Section 5 of
//! the paper: are n-gram frequencies significantly higher than an i.i.d.
//! product stream would produce?
//!
//! Under the i.i.d. null hypothesis, the count of a specific n-gram
//! `(w_1 … w_n)` across `T` n-gram slots is `Binomial(T, Π p(w_i))` where
//! `p(·)` is the empirical unigram distribution. An n-gram is *significantly
//! sequential* when the one-sided binomial tail `P(X ≥ observed)` falls
//! below the significance level. The paper reports 69% of bigrams and 43% of
//! trigrams significant on its corpus.

use crate::stats::binomial_sf;
use hlm_corpus::sequence::count_product_ngrams;
use hlm_corpus::ProductId;
use serde::{Deserialize, Serialize};

/// Result of the sequentiality test at one n-gram order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequentialityReport {
    /// N-gram order tested.
    pub order: usize,
    /// Distinct observed n-grams.
    pub distinct_ngrams: usize,
    /// Total n-gram slots `T`.
    pub total_slots: u64,
    /// Number of distinct n-grams whose frequency is significantly above
    /// the i.i.d. expectation.
    pub significant: usize,
    /// `significant / distinct_ngrams` (0 when nothing observed).
    pub significant_fraction: f64,
}

/// Runs the binomial sequentiality test at the given order and significance
/// level (the paper uses 0.05).
///
/// # Panics
/// Panics unless `order >= 2` (unigrams carry no order information) and
/// `0 < significance < 1`.
pub fn sequentiality_report(
    sequences: &[Vec<ProductId>],
    order: usize,
    significance: f64,
) -> SequentialityReport {
    assert!(order >= 2, "sequentiality is defined for order >= 2");
    assert!(
        significance > 0.0 && significance < 1.0,
        "significance must be in (0,1)"
    );

    // Empirical unigram distribution over products.
    let mut counts: std::collections::HashMap<ProductId, u64> = std::collections::HashMap::new();
    let mut total_tokens = 0u64;
    for seq in sequences {
        for &p in seq {
            *counts.entry(p).or_insert(0) += 1;
            total_tokens += 1;
        }
    }
    let unigram_prob = |p: ProductId| -> f64 {
        if total_tokens == 0 {
            0.0
        } else {
            counts.get(&p).copied().unwrap_or(0) as f64 / total_tokens as f64
        }
    };

    let ngrams = count_product_ngrams(sequences, order);
    let total_slots: u64 = ngrams.values().sum();
    let mut significant = 0usize;
    for (gram, &observed) in &ngrams {
        let p_null: f64 = gram.iter().map(|&w| unigram_prob(w)).product();
        let p_value = binomial_sf(observed, total_slots, p_null.min(1.0));
        if p_value < significance {
            significant += 1;
        }
    }
    let distinct = ngrams.len();
    SequentialityReport {
        order,
        distinct_ngrams: distinct,
        total_slots,
        significant,
        significant_fraction: if distinct == 0 {
            0.0
        } else {
            significant as f64 / distinct as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlm_linalg::dist::shuffle;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(i: u16) -> ProductId {
        ProductId(i)
    }

    /// Strongly sequential data: 0→1→2→3 cycles.
    fn sequential_data(n: usize, seed: u64) -> Vec<Vec<ProductId>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let start = rng.gen_range(0..4u16);
                (0..8).map(|k| p((start + k) % 4)).collect()
            })
            .collect()
    }

    #[test]
    fn sequential_data_is_flagged() {
        let seqs = sequential_data(100, 1);
        let rep = sequentiality_report(&seqs, 2, 0.05);
        assert!(
            rep.significant_fraction > 0.8,
            "fraction {}",
            rep.significant_fraction
        );
        assert_eq!(rep.distinct_ngrams, 4, "only the cycle bigrams occur");
        assert_eq!(rep.order, 2);
    }

    #[test]
    fn shuffled_data_is_mostly_not_flagged() {
        // Destroy the order within each sequence: the i.i.d. null should now
        // hold and few bigrams clear the 5% bar.
        let mut seqs = sequential_data(100, 2);
        let mut rng = StdRng::seed_from_u64(99);
        for s in &mut seqs {
            shuffle(&mut rng, s);
        }
        let rep = sequentiality_report(&seqs, 2, 0.05);
        assert!(
            rep.significant_fraction < 0.3,
            "shuffled fraction {}",
            rep.significant_fraction
        );
    }

    #[test]
    fn trigram_fraction_not_above_bigram_on_markov_data() {
        // First-order Markov data: trigram evidence is weaker per distinct
        // trigram (more sparsity), mirroring the paper's 69% vs 43%.
        let seqs = sequential_data(60, 3);
        let bi = sequentiality_report(&seqs, 2, 0.05);
        let tri = sequentiality_report(&seqs, 3, 0.05);
        assert!(bi.significant_fraction >= tri.significant_fraction * 0.8);
        assert!(tri.total_slots < bi.total_slots);
    }

    #[test]
    fn empty_input_yields_zero_report() {
        let rep = sequentiality_report(&[], 2, 0.05);
        assert_eq!(rep.distinct_ngrams, 0);
        assert_eq!(rep.significant, 0);
        assert_eq!(rep.significant_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "order >= 2")]
    fn rejects_unigram_order() {
        sequentiality_report(&[], 1, 0.05);
    }

    #[test]
    fn stricter_significance_flags_fewer() {
        let seqs = sequential_data(30, 4);
        let loose = sequentiality_report(&seqs, 2, 0.1);
        let strict = sequentiality_report(&seqs, 2, 1e-12);
        assert!(strict.significant <= loose.significant);
    }
}
