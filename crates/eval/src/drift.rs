//! Concept-drift detection for the deployed recommendation tool.
//!
//! Section 6 of the paper: LDA "is done offline and can be retrained on
//! demand or when the concept shift is taken place". This module provides
//! the trigger: compare the distribution of newly acquired product
//! categories between a reference period and a recent period with a
//! chi-square two-sample test (plus the Jensen–Shannon divergence as an
//! effect-size measure), and flag drift when the difference is significant.

use hlm_corpus::{Corpus, TimeWindow};
use hlm_linalg::special::chi_square_sf;
use serde::{Deserialize, Serialize};

/// Outcome of a drift check between two periods.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftReport {
    /// Acquisition events in the reference period.
    pub reference_events: u64,
    /// Acquisition events in the recent period.
    pub recent_events: u64,
    /// Chi-square statistic of the two-sample homogeneity test (computed
    /// over categories observed in either period).
    pub chi_square: f64,
    /// Degrees of freedom used.
    pub degrees_of_freedom: usize,
    /// P-value of the test (NaN when either period has no events).
    pub p_value: f64,
    /// Jensen–Shannon divergence (nats) between the two acquisition
    /// distributions — a bounded effect size in `[0, ln 2]`. NaN when either
    /// period has no events: against an all-zero "distribution" the formula
    /// would report ½·ln 2 ≈ 0.347, a large phantom effect size for a window
    /// that simply has no data.
    pub js_divergence: f64,
    /// True when `p_value < significance`.
    pub drifted: bool,
}

impl DriftReport {
    /// True when both periods had events and the test could run — i.e. the
    /// p-value and JS divergence are meaningful numbers rather than NaN.
    pub fn is_valid(&self) -> bool {
        !self.p_value.is_nan()
    }
}

/// Counts first-seen events per product inside a window.
fn acquisition_counts(corpus: &Corpus, window: TimeWindow) -> Vec<u64> {
    let mut counts = vec![0u64; corpus.vocab().len()];
    for company in corpus.companies() {
        for p in company.products_first_seen_in(window.start, window.end) {
            counts[p.index()] += 1;
        }
    }
    counts
}

fn normalize(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// Jensen–Shannon divergence between two distributions (nats).
pub fn jensen_shannon(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let kl = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .filter(|&(&ai, _)| ai > 0.0)
            .map(|(&ai, &bi)| ai * (ai / bi).ln())
            .sum()
    };
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kl(p, &m) + 0.5 * kl(q, &m)
}

/// Runs the two-sample chi-square homogeneity test between the acquisition
/// distributions of `reference` and `recent`, flagging drift at the given
/// significance level.
///
/// Categories unobserved in both periods are dropped; the test needs at
/// least two remaining categories and at least one event per period,
/// otherwise the p-value is NaN and `drifted` is false.
///
/// # Panics
/// Panics unless `0 < significance < 1`.
pub fn detect_drift(
    corpus: &Corpus,
    reference: TimeWindow,
    recent: TimeWindow,
    significance: f64,
) -> DriftReport {
    assert!(
        significance > 0.0 && significance < 1.0,
        "significance must be in (0,1)"
    );
    let ref_counts = acquisition_counts(corpus, reference);
    let rec_counts = acquisition_counts(corpus, recent);
    let n1: u64 = ref_counts.iter().sum();
    let n2: u64 = rec_counts.iter().sum();

    // Keep categories seen in either period.
    let kept: Vec<usize> = (0..ref_counts.len())
        .filter(|&i| ref_counts[i] + rec_counts[i] > 0)
        .collect();

    if n1 == 0 || n2 == 0 || kept.len() < 2 {
        // An empty period carries no distributional information: the JS
        // divergence is NaN too, not the ½·ln 2 the formula would yield
        // against a normalized-to-zeros vector.
        return DriftReport {
            reference_events: n1,
            recent_events: n2,
            chi_square: f64::NAN,
            degrees_of_freedom: 0,
            p_value: f64::NAN,
            js_divergence: f64::NAN,
            drifted: false,
        };
    }

    let js = jensen_shannon(&normalize(&ref_counts), &normalize(&rec_counts));

    // Two-sample chi-square: expected cell count under homogeneity is
    // row_total * col_total / grand_total.
    let grand = (n1 + n2) as f64;
    let mut chi2 = 0.0;
    for &i in &kept {
        let col = (ref_counts[i] + rec_counts[i]) as f64;
        for (obs, row_total) in [
            (ref_counts[i] as f64, n1 as f64),
            (rec_counts[i] as f64, n2 as f64),
        ] {
            let expected = row_total * col / grand;
            if expected > 0.0 {
                chi2 += (obs - expected) * (obs - expected) / expected;
            }
        }
    }
    let df = kept.len() - 1;
    let p_value = chi_square_sf(chi2, df as f64);
    DriftReport {
        reference_events: n1,
        recent_events: n2,
        chi_square: chi2,
        degrees_of_freedom: df,
        p_value,
        js_divergence: js,
        drifted: p_value < significance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlm_corpus::{Company, InstallEvent, Month, ProductId, Sic2, Vocabulary};

    /// Drift case: reference acquisitions are product 0, recent ones product
    /// 1. No-drift case: both periods are an even 50/50 mix of products 0
    /// and 2 (each company acquires one of them per period, the other one
    /// in the other period, so nothing merges).
    fn corpus(drift: bool, n: usize) -> Corpus {
        let vocab = Vocabulary::new(["a", "b", "c"]);
        let companies = (0..n)
            .map(|i| {
                let mut c = Company::new(i as u64, format!("c{i}"), Sic2(1), 0);
                let (ref_p, rec_p) = if drift {
                    (ProductId(0), ProductId(1))
                } else if i % 2 == 0 {
                    (ProductId(0), ProductId(2))
                } else {
                    (ProductId(2), ProductId(0))
                };
                c.add_event(InstallEvent::at(
                    ref_p,
                    Month::from_ym(2010, 1 + (i % 12) as u32),
                ));
                c.add_event(InstallEvent::at(
                    rec_p,
                    Month::from_ym(2014, 1 + (i % 12) as u32),
                ));
                c
            })
            .collect();
        Corpus::new(vocab, companies)
    }

    fn windows() -> (TimeWindow, TimeWindow) {
        (
            TimeWindow::new(Month::from_ym(2010, 1), 12),
            TimeWindow::new(Month::from_ym(2014, 1), 12),
        )
    }

    #[test]
    fn strong_shift_is_detected() {
        let c = corpus(true, 120);
        let (a, b) = windows();
        let rep = detect_drift(&c, a, b, 0.05);
        assert!(rep.drifted, "p = {}", rep.p_value);
        assert!(rep.p_value < 1e-6);
        assert!(rep.js_divergence > 0.3, "JS {}", rep.js_divergence);
        assert!(rep.reference_events > 0 && rep.recent_events > 0);
    }

    #[test]
    fn stable_distribution_is_not_flagged() {
        let c = corpus(false, 120);
        let (a, b) = windows();
        let rep = detect_drift(&c, a, b, 0.05);
        assert!(
            !rep.drifted,
            "p = {} chi2 = {}",
            rep.p_value, rep.chi_square
        );
        assert!(rep.js_divergence < 0.05, "JS {}", rep.js_divergence);
    }

    #[test]
    fn empty_period_yields_nan_not_panic() {
        let c = corpus(true, 30);
        let empty = TimeWindow::new(Month::from_ym(1980, 1), 12);
        let (a, _) = windows();
        let rep = detect_drift(&c, a, empty, 0.05);
        assert!(rep.p_value.is_nan());
        assert!(!rep.drifted);
        assert!(!rep.is_valid());
        assert_eq!(rep.recent_events, 0);
    }

    #[test]
    fn empty_period_js_is_nan_not_phantom_half_ln2() {
        // Regression: normalize(zeros) used to feed jensen_shannon an
        // all-zero q, which evaluates to exactly ½·ln 2 ≈ 0.347 nats — a
        // large "effect size" for a window containing no data at all. The
        // report must carry NaN instead.
        let c = corpus(true, 30);
        let empty = TimeWindow::new(Month::from_ym(1980, 1), 12);
        let (a, _) = windows();

        // Pin the phantom value itself so the failure mode stays documented:
        // this is what the report used to contain.
        let phantom = jensen_shannon(&[0.5, 0.5, 0.0], &[0.0, 0.0, 0.0]);
        assert!(
            (phantom - 0.5 * std::f64::consts::LN_2).abs() < 1e-12,
            "JS against zeros is ½·ln 2, got {phantom}"
        );

        let rep = detect_drift(&c, a, empty, 0.05);
        assert!(
            rep.js_divergence.is_nan(),
            "empty period must not report an effect size, got {}",
            rep.js_divergence
        );
        // Both orders, and the both-empty case.
        let rev = detect_drift(&c, empty, a, 0.05);
        assert!(rev.js_divergence.is_nan() && !rev.drifted);
        let both = detect_drift(&c, empty, empty, 0.05);
        assert!(both.js_divergence.is_nan() && both.p_value.is_nan());
    }

    #[test]
    fn js_divergence_bounds() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let d = jensen_shannon(&p, &q);
        assert!(
            (d - std::f64::consts::LN_2).abs() < 1e-12,
            "disjoint = ln 2"
        );
        assert_eq!(jensen_shannon(&p, &p), 0.0);
    }

    #[test]
    fn generated_corpus_early_vs_late_periods() {
        // The simulator's stage ordering means late periods acquire more
        // virtualization/cloud than early periods: drift must be detected
        // between 1995 and 2015 on a decent corpus.
        let c = hlm_datagen::generate(&hlm_datagen::GeneratorConfig::with_size_and_seed(800, 3));
        let early = TimeWindow::new(Month::from_ym(1995, 1), 24);
        let late = TimeWindow::new(Month::from_ym(2013, 1), 24);
        let rep = detect_drift(&c, early, late, 0.01);
        assert!(
            rep.drifted,
            "stage ordering implies drift, p = {}",
            rep.p_value
        );
        // And two adjacent late periods drift much less.
        let late2 = TimeWindow::new(Month::from_ym(2011, 1), 24);
        let rep2 = detect_drift(&c, late2, late, 0.05);
        assert!(
            rep2.js_divergence < rep.js_divergence,
            "adjacent periods diverge less: {} vs {}",
            rep2.js_divergence,
            rep.js_divergence
        );
    }
}
