//! Descriptive statistics: means with confidence intervals, five-number
//! summaries (boxplots), and binomial tail probabilities.

use hlm_linalg::special::{ln_binomial, normal_cdf, normal_quantile};
use serde::{Deserialize, Serialize};

/// A mean with a symmetric confidence half-width.
///
/// **Empty-sample contract:** statistics over an empty sample report
/// `mean: 0.0, half_width: 0.0, n: 0`. The zeros keep every serialization
/// finite (a NaN mean would reach JSON as `null` and poison BENCH
/// artifacts); `n == 0` — checked via [`MeanCi::is_empty`] — is the signal
/// that no data backed the figure, and [`MeanCi::significantly_different_from`]
/// treats such values as incomparable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanCi {
    /// Sample mean (0 for an empty sample; see the empty-sample contract).
    pub mean: f64,
    /// Half-width of the confidence interval (0 for fewer than 2 samples).
    pub half_width: f64,
    /// Number of samples.
    pub n: usize,
}

impl MeanCi {
    /// The statistics of an empty sample (see the empty-sample contract).
    pub fn empty() -> Self {
        MeanCi {
            mean: 0.0,
            half_width: 0.0,
            n: 0,
        }
    }

    /// True when no samples backed this value — the mean is the contract's
    /// placeholder 0, not an observed average.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Lower bound of the interval.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// True when the two intervals do not overlap — the paper's criterion
    /// for "statistically significantly different". Empty or non-finite
    /// values are incomparable: the answer is always `false` (explicitly,
    /// not vacuously through NaN comparisons).
    pub fn significantly_different_from(&self, other: &MeanCi) -> bool {
        if self.is_empty() || other.is_empty() || !self.mean.is_finite() || !other.mean.is_finite()
        {
            return false;
        }
        self.low() > other.high() || other.low() > self.high()
    }
}

/// Sample mean with a normal-approximation confidence interval at the given
/// level (e.g. `0.95`).
///
/// # Panics
/// Panics unless `0 < level < 1`.
pub fn mean_ci(samples: &[f64], level: f64) -> MeanCi {
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1)"
    );
    let n = samples.len();
    if n == 0 {
        return MeanCi::empty();
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return MeanCi {
            mean,
            half_width: 0.0,
            n,
        };
    }
    let var = samples
        .iter()
        .map(|&x| (x - mean) * (x - mean))
        .sum::<f64>()
        / (n - 1) as f64;
    let z = normal_quantile(0.5 + level / 2.0);
    MeanCi {
        mean,
        half_width: z * (var / n as f64).sqrt(),
        n,
    }
}

/// Five-number summary (min, Q1, median, Q3, max) for boxplots (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes the five-number summary using linear interpolation between order
/// statistics (the same scheme as numpy's default percentile).
///
/// # Panics
/// Panics on empty input or non-finite values.
pub fn five_number_summary(samples: &[f64]) -> FiveNumber {
    assert!(!samples.is_empty(), "five-number summary of empty sample");
    let mut s: Vec<f64> = samples.to_vec();
    assert!(s.iter().all(|x| x.is_finite()), "non-finite sample");
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |p: f64| -> f64 {
        let idx = p * (s.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    };
    FiveNumber {
        min: s[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: *s.last().unwrap(),
    }
}

/// Non-parametric bootstrap confidence interval for the mean: resamples the
/// data `n_resamples` times with replacement and returns the empirical
/// `(1±level)/2` quantiles of the resampled means as `MeanCi` bounds
/// (encoded as a symmetric half-width around the observed mean is wrong for
/// skewed data, so the half-width stored is the larger of the two sides).
///
/// # Panics
/// Panics unless `0 < level < 1` and `n_resamples > 0`.
pub fn bootstrap_mean_ci(samples: &[f64], level: f64, n_resamples: usize, seed: u64) -> MeanCi {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1)"
    );
    assert!(n_resamples > 0, "need at least one resample");
    let n = samples.len();
    if n == 0 {
        return MeanCi::empty();
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return MeanCi {
            mean,
            half_width: 0.0,
            n,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..n_resamples)
        .map(|_| (0..n).map(|_| samples[rng.gen_range(0..n)]).sum::<f64>() / n as f64)
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let lo_idx = (((1.0 - level) / 2.0) * (n_resamples - 1) as f64).round() as usize;
    let hi_idx = (((1.0 + level) / 2.0) * (n_resamples - 1) as f64).round() as usize;
    let half = (mean - means[lo_idx])
        .abs()
        .max((means[hi_idx] - mean).abs());
    MeanCi {
        mean,
        half_width: half,
        n,
    }
}

/// One-sided binomial survival function `P(X ≥ k)` for `X ~ Bin(n, p)`.
///
/// Uses the exact log-space sum for `n ≤ 10_000` and a continuity-corrected
/// normal approximation otherwise — the regime split keeps both accuracy and
/// speed adequate for the sequentiality test over hundreds of n-grams.
///
/// # Panics
/// Panics unless `0 ≤ p ≤ 1`.
pub fn binomial_sf(k: u64, n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return 0.0; // k >= 1 occurrences impossible
    }
    if p == 1.0 {
        return 1.0; // X = n >= k always (k <= n here)
    }
    if n <= 10_000 {
        let ln_p = p.ln();
        let ln_q = (1.0 - p).ln();
        let mut total = 0.0f64;
        for x in k..=n {
            let ln_term = ln_binomial(n, x) + x as f64 * ln_p + (n - x) as f64 * ln_q;
            let term = ln_term.exp();
            total += term;
            // Terms beyond the mode decay geometrically; stop when negligible.
            if x as f64 > n as f64 * p && term < 1e-18 * total.max(1e-300) {
                break;
            }
        }
        total.min(1.0)
    } else {
        let mu = n as f64 * p;
        let sigma = (n as f64 * p * (1.0 - p)).sqrt();
        1.0 - normal_cdf((k as f64 - 0.5 - mu) / sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_basic() {
        let ci = mean_ci(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.95);
        assert!((ci.mean - 3.0).abs() < 1e-12);
        assert!(ci.half_width > 0.0);
        assert_eq!(ci.n, 5);
        assert!(ci.low() < 3.0 && ci.high() > 3.0);
    }

    #[test]
    fn mean_ci_edge_cases() {
        // Empty-sample contract: finite zeros with n = 0, flagged empty.
        let empty = mean_ci(&[], 0.95);
        assert_eq!(empty, MeanCi::empty());
        assert!(empty.is_empty());
        assert_eq!(empty.mean, 0.0);
        assert!(empty.mean.is_finite());
        let one = mean_ci(&[7.0], 0.95);
        assert!(!one.is_empty());
        assert_eq!(one.mean, 7.0);
        assert_eq!(one.half_width, 0.0);
        let constant = mean_ci(&[2.0; 10], 0.95);
        assert_eq!(constant.half_width, 0.0);
    }

    #[test]
    fn ci_width_shrinks_with_n() {
        let small: Vec<f64> = (0..10).map(|i| (i % 3) as f64).collect();
        let big: Vec<f64> = (0..1000).map(|i| (i % 3) as f64).collect();
        assert!(mean_ci(&big, 0.95).half_width < mean_ci(&small, 0.95).half_width);
    }

    #[test]
    fn significance_is_interval_disjointness() {
        let a = MeanCi {
            mean: 1.0,
            half_width: 0.1,
            n: 10,
        };
        let b = MeanCi {
            mean: 1.5,
            half_width: 0.1,
            n: 10,
        };
        let c = MeanCi {
            mean: 1.15,
            half_width: 0.1,
            n: 10,
        };
        assert!(a.significantly_different_from(&b));
        assert!(!a.significantly_different_from(&c));
    }

    #[test]
    fn significance_guards_empty_and_non_finite_values() {
        let a = MeanCi {
            mean: 1.0,
            half_width: 0.1,
            n: 10,
        };
        // An empty side is incomparable, whichever side it is on.
        assert!(!a.significantly_different_from(&MeanCi::empty()));
        assert!(!MeanCi::empty().significantly_different_from(&a));
        assert!(!MeanCi::empty().significantly_different_from(&MeanCi::empty()));
        // A hand-built NaN mean must answer false explicitly, not through a
        // vacuous NaN comparison.
        let poisoned = MeanCi {
            mean: f64::NAN,
            half_width: 0.1,
            n: 10,
        };
        assert!(!a.significantly_different_from(&poisoned));
        assert!(!poisoned.significantly_different_from(&a));
    }

    #[test]
    fn five_number_known_values() {
        let f = five_number_summary(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.q1, 2.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.q3, 4.0);
        assert_eq!(f.max, 5.0);
        let g = five_number_summary(&[4.0, 1.0]); // unsorted input
        assert_eq!(g.median, 2.5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn five_number_rejects_empty() {
        five_number_summary(&[]);
    }

    #[test]
    fn bootstrap_ci_agrees_with_normal_ci_on_well_behaved_data() {
        let samples: Vec<f64> = (0..200).map(|i| ((i * 37) % 100) as f64 / 10.0).collect();
        let normal = mean_ci(&samples, 0.95);
        let boot = bootstrap_mean_ci(&samples, 0.95, 2000, 7);
        assert!((boot.mean - normal.mean).abs() < 1e-12);
        assert!(
            (boot.half_width - normal.half_width).abs() < 0.3 * normal.half_width,
            "bootstrap {} vs normal {}",
            boot.half_width,
            normal.half_width
        );
    }

    #[test]
    fn bootstrap_ci_edge_cases() {
        assert_eq!(bootstrap_mean_ci(&[], 0.95, 100, 1), MeanCi::empty());
        let one = bootstrap_mean_ci(&[5.0], 0.95, 100, 1);
        assert_eq!(one.half_width, 0.0);
        let constant = bootstrap_mean_ci(&[3.0; 20], 0.95, 200, 1);
        assert_eq!(constant.half_width, 0.0);
        // Deterministic given seed.
        let a = bootstrap_mean_ci(&[1.0, 2.0, 5.0, 9.0], 0.9, 500, 3);
        let b = bootstrap_mean_ci(&[1.0, 2.0, 5.0, 9.0], 0.9, 500, 3);
        assert_eq!(a.half_width, b.half_width);
    }

    #[test]
    fn binomial_sf_small_exact() {
        // X ~ Bin(3, 0.5): P(X >= 2) = 4/8 = 0.5.
        assert!((binomial_sf(2, 3, 0.5) - 0.5).abs() < 1e-12);
        // P(X >= 0) = 1; P(X >= 4) = 0.
        assert_eq!(binomial_sf(0, 3, 0.5), 1.0);
        assert_eq!(binomial_sf(4, 3, 0.5), 0.0);
        // P(X >= 3) = 1/8.
        assert!((binomial_sf(3, 3, 0.5) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn binomial_sf_degenerate_p() {
        assert_eq!(binomial_sf(1, 10, 0.0), 0.0);
        assert_eq!(binomial_sf(10, 10, 1.0), 1.0);
    }

    #[test]
    fn binomial_sf_large_n_approximation_is_sane() {
        // Bin(100_000, 0.01): mean 1000, sd ~31.5. P(X >= 1100) tiny.
        let p_tail = binomial_sf(1100, 100_000, 0.01);
        assert!(p_tail < 0.01, "far tail {p_tail}");
        let p_center = binomial_sf(1000, 100_000, 0.01);
        assert!((p_center - 0.5).abs() < 0.05, "center {p_center}");
        // Monotone in k.
        assert!(binomial_sf(900, 100_000, 0.01) > p_center);
    }

    #[test]
    fn binomial_sf_exact_matches_normal_near_boundary() {
        // n = 10_000 exact vs n = 10_001 normal: continuity check.
        let exact = binomial_sf(5100, 10_000, 0.5);
        let approx = binomial_sf(5101, 10_001, 0.5);
        assert!(
            (exact - approx).abs() < 0.02,
            "exact {exact} vs approx {approx}"
        );
    }
}
