//! Evaluation harness: statistics, the sliding-window recommendation
//! protocol of Section 4.3, the n-gram sequentiality test of [19], and
//! plain-text report rendering for the experiment binaries.

pub mod drift;
pub mod recommend;
pub mod report;
pub mod sequentiality;
pub mod stats;

pub use drift::{detect_drift, DriftReport};

pub use recommend::{
    evaluate_recommender, RandomRecommender, RecEvalConfig, Recommender, RecommenderFactory,
    ThresholdPoint,
};
pub use sequentiality::{sequentiality_report, SequentialityReport};
pub use stats::{binomial_sf, bootstrap_mean_ci, five_number_summary, mean_ci, FiveNumber, MeanCi};
