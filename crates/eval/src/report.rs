//! Plain-text rendering of the reproduced tables and figure series.
//!
//! The experiment binaries print every reproduced table/figure as an aligned
//! text table (and optionally CSV), so `EXPERIMENTS.md` can quote them
//! directly.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, &w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", body.join(" | "))
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        let _ = writeln!(out, "{}", line(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with fixed precision, mapping NaN to "-".
pub fn fmt_f(x: f64, digits: usize) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.digits$}")
    }
}

/// Formats `mean ± half_width`; an empty statistic (n = 0, see the
/// [`crate::stats::MeanCi`] empty-sample contract) renders as "-".
pub fn fmt_ci(ci: &crate::stats::MeanCi, digits: usize) -> String {
    if ci.is_empty() || ci.mean.is_nan() {
        "-".to_string()
    } else {
        format!("{:.digits$} ± {:.digits$}", ci.mean, ci.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MeanCi;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // All table lines share the same width.
        let widths: Vec<usize> = lines[1..].iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("", &["a", "b"]);
        t.add_row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(f64::NAN, 2), "-");
        let ci = MeanCi {
            mean: 0.5,
            half_width: 0.05,
            n: 13,
        };
        assert_eq!(fmt_ci(&ci, 2), "0.50 ± 0.05");
        let nan_ci = MeanCi {
            mean: f64::NAN,
            half_width: 0.0,
            n: 0,
        };
        assert_eq!(fmt_ci(&nan_ci, 2), "-");
    }
}
