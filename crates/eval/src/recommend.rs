//! The sliding-window recommendation evaluation of Section 4.3.
//!
//! For every sliding window `W_r`, a recommender is trained on everything
//! before the window's start, then asked for a score per product given each
//! test company's acquisition history. Products scoring at least the
//! threshold `φ` are recommended; the company's true future products are the
//! ones first seen inside the window. Per-window micro-averaged precision,
//! recall, F1 and the retrieved / correctly-retrieved / relevant counts are
//! aggregated across the `l` windows into means with 95% confidence
//! intervals — the data behind Figures 3 and 4.

use crate::stats::{mean_ci, MeanCi};
use hlm_corpus::{CompanyId, Corpus, Month, TimeWindow};
use serde::{Deserialize, Serialize};

/// A trained recommender: scores every product given an acquisition history
/// (product indices in time order). Scores are conditional probabilities in
/// `[0, 1]`; already-owned products are masked by the harness, not the
/// model.
///
/// `Send + Sync` lets the evaluation harness fan scoring out over companies
/// and the engine train model families on worker threads; scoring takes
/// `&self`, so implementations need no internal locking.
pub trait Recommender: Send + Sync {
    /// Score per product (length = vocabulary size).
    fn scores(&self, history: &[usize]) -> Vec<f64>;

    /// Short label for reports.
    fn name(&self) -> &str;
}

/// Trains a recommender on the companies' histories strictly before
/// `cutoff`. Implemented by each model family's adapter in `hlm-core`.
pub trait RecommenderFactory {
    /// Train on `train_ids`' install-base history before `cutoff`.
    fn train(
        &self,
        corpus: &Corpus,
        train_ids: &[CompanyId],
        cutoff: Month,
    ) -> Box<dyn Recommender>;

    /// Label used in reports.
    fn name(&self) -> &str;
}

/// The paper's random baseline: every product gets the uniform probability
/// `1/M` (`≈ 0.026` for 38 products), so it retrieves everything below that
/// threshold and nothing above it.
#[derive(Debug, Clone)]
pub struct RandomRecommender {
    vocab_size: usize,
}

impl RandomRecommender {
    /// Creates the uniform baseline over `vocab_size` products.
    pub fn new(vocab_size: usize) -> Self {
        assert!(vocab_size > 0, "empty vocabulary");
        RandomRecommender { vocab_size }
    }
}

impl Recommender for RandomRecommender {
    fn scores(&self, _history: &[usize]) -> Vec<f64> {
        vec![1.0 / self.vocab_size as f64; self.vocab_size]
    }

    fn name(&self) -> &str {
        "random"
    }
}

impl RecommenderFactory for RandomRecommender {
    fn train(&self, _c: &Corpus, _ids: &[CompanyId], _cutoff: Month) -> Box<dyn Recommender> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Evaluation protocol settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecEvalConfig {
    /// The sliding windows (paper: 13 windows of 12 months, step 2).
    pub windows: Vec<TimeWindow>,
    /// The probability thresholds `φ` to sweep.
    pub thresholds: Vec<f64>,
    /// Retrain the model for every window (paper protocol) or once at the
    /// first window's start (cheaper; fine when windows are close together).
    pub retrain_per_window: bool,
    /// Skip company-window pairs with an empty history (nothing to condition
    /// on).
    pub require_history: bool,
}

impl RecEvalConfig {
    /// The paper's configuration with a default threshold grid
    /// `0.00, 0.05, …, 0.50`.
    pub fn paper() -> Self {
        RecEvalConfig {
            windows: hlm_corpus::SlidingWindows::paper_evaluation().collect(),
            thresholds: (0..=10).map(|i| i as f64 * 0.05).collect(),
            retrain_per_window: true,
            require_history: true,
        }
    }
}

/// Accuracy measures for one threshold, aggregated over windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdPoint {
    /// The probability threshold `φ`.
    pub phi: f64,
    /// Precision mean ± CI over **all** windows. A window that retrieves
    /// nothing contributes precision 0 (the conservative convention: an
    /// empty answer earns no credit), so the mean is always finite and
    /// averages over the same window set as recall and F1. Use
    /// [`ThresholdPoint::windows_scored`] to see how many windows actually
    /// retrieved something.
    pub precision: MeanCi,
    /// Recall mean ± CI over windows.
    pub recall: MeanCi,
    /// F1 mean ± CI over windows.
    pub f1: MeanCi,
    /// Windows in which at least one product was retrieved — the windows
    /// where precision is defined in the textbook sense. When this is less
    /// than the window count, the precision mean includes zero-retrieval
    /// windows at 0.
    pub windows_scored: usize,
    /// Retrieved products per window.
    pub retrieved: MeanCi,
    /// Correctly retrieved products per window.
    pub correct: MeanCi,
    /// Relevant (ground-truth) products per window.
    pub relevant: MeanCi,
}

/// Runs the full sliding-window evaluation for one recommender family.
///
/// `eval_ids` are the companies to evaluate on (the paper's test split).
/// `train_ids` are passed to the factory; histories before each window start
/// are the training signal.
///
/// # Panics
/// Panics if the config has no windows or thresholds.
pub fn evaluate_recommender(
    factory: &dyn RecommenderFactory,
    corpus: &Corpus,
    train_ids: &[CompanyId],
    eval_ids: &[CompanyId],
    cfg: &RecEvalConfig,
) -> Vec<ThresholdPoint> {
    assert!(!cfg.windows.is_empty(), "need at least one window");
    assert!(!cfg.thresholds.is_empty(), "need at least one threshold");
    let n_phi = cfg.thresholds.len();
    let n_win = cfg.windows.len();

    // Per threshold, per window: counts.
    let mut retrieved = vec![vec![0.0f64; n_win]; n_phi];
    let mut correct = vec![vec![0.0f64; n_win]; n_phi];
    let mut relevant = vec![vec![0.0f64; n_win]; n_phi];

    let mut model: Option<Box<dyn Recommender>> = None;
    for (wi, window) in cfg.windows.iter().enumerate() {
        if cfg.retrain_per_window || model.is_none() {
            let cutoff = if cfg.retrain_per_window {
                window.start
            } else {
                cfg.windows[0].start
            };
            model = Some(factory.train(corpus, train_ids, cutoff));
        }
        let model = model.as_deref().expect("model trained above");

        // Fan scoring out over fixed company chunks; per-chunk count
        // vectors are merged in chunk order (the counts are integer-valued,
        // so the totals are exact at any thread count).
        const COMPANY_CHUNK: usize = 8;
        let pool = hlm_par::Pool::global();
        let parts = hlm_par::par_chunks(&pool, eval_ids, COMPANY_CHUNK, |_c, chunk| {
            let mut ret = vec![0.0f64; n_phi];
            let mut cor = vec![0.0f64; n_phi];
            let mut rel = vec![0.0f64; n_phi];
            for &id in chunk {
                let company = corpus.company(id);
                let history: Vec<usize> = company
                    .sequence_before(window.start)
                    .into_iter()
                    .map(|p| p.index())
                    .collect();
                if cfg.require_history && history.is_empty() {
                    continue;
                }
                let truth: Vec<usize> = company
                    .products_first_seen_in(window.start, window.end)
                    .into_iter()
                    .map(|p| p.index())
                    .collect();
                let scores = model.scores(&history);
                // A model trained before a mid-stream product launch scores
                // fewer categories than the grown corpus vocabulary; it can
                // never retrieve the newer products (they still count as
                // relevant, honestly lowering recall).
                debug_assert!(scores.len() <= corpus.vocab().len());

                let mut owned = vec![false; scores.len()];
                for &h in &history {
                    if h < owned.len() {
                        owned[h] = true;
                    }
                }
                let mut is_truth = vec![false; scores.len()];
                for &t in &truth {
                    if t < is_truth.len() {
                        is_truth[t] = true;
                    }
                }

                for (pi, &phi) in cfg.thresholds.iter().enumerate() {
                    rel[pi] += truth.len() as f64;
                    for (p, &s) in scores.iter().enumerate() {
                        if owned[p] || s < phi {
                            continue;
                        }
                        ret[pi] += 1.0;
                        if is_truth[p] {
                            cor[pi] += 1.0;
                        }
                    }
                }
            }
            (ret, cor, rel)
        });
        for (ret, cor, rel) in parts {
            for pi in 0..n_phi {
                retrieved[pi][wi] += ret[pi];
                correct[pi][wi] += cor[pi];
                relevant[pi][wi] += rel[pi];
            }
        }
    }

    cfg.thresholds
        .iter()
        .enumerate()
        .map(|(pi, &phi)| {
            let mut precisions = Vec::with_capacity(n_win);
            let mut recalls = Vec::with_capacity(n_win);
            let mut f1s = Vec::with_capacity(n_win);
            let mut windows_scored = 0usize;
            for wi in 0..n_win {
                let ret = retrieved[pi][wi];
                let cor = correct[pi][wi];
                let rel = relevant[pi][wi];
                // Precision is undefined in the textbook sense when nothing
                // is retrieved (the paper notes this for φ > 0.5). All three
                // metrics must average over the SAME window set or their
                // means stop being comparable, so such windows score
                // precision 0 — no credit for an empty answer — and
                // `windows_scored` reports how many windows retrieved
                // anything at all.
                if ret > 0.0 {
                    windows_scored += 1;
                }
                let precision = if ret > 0.0 { cor / ret } else { 0.0 };
                precisions.push(precision);
                let recall = if rel > 0.0 { cor / rel } else { 0.0 };
                recalls.push(recall);
                let f1 = if precision + recall > 0.0 {
                    2.0 * precision * recall / (precision + recall)
                } else {
                    0.0
                };
                f1s.push(f1);
            }
            ThresholdPoint {
                phi,
                precision: mean_ci(&precisions, 0.95),
                recall: mean_ci(&recalls, 0.95),
                f1: mean_ci(&f1s, 0.95),
                windows_scored,
                retrieved: mean_ci(&retrieved[pi], 0.95),
                correct: mean_ci(&correct[pi], 0.95),
                relevant: mean_ci(&relevant[pi], 0.95),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlm_corpus::{Company, InstallEvent, ProductId, Sic2, Vocabulary};

    /// A corpus where every company acquires product 0 in 2010, product 1 in
    /// 2013-06, and product 2 never — inside the single window
    /// [2013-01, 2014-01) the truth is exactly {1}.
    fn corpus() -> Corpus {
        let vocab = Vocabulary::new(["a", "b", "c"]);
        let companies = (0..10)
            .map(|i| {
                let mut c = Company::new(i, format!("c{i}"), Sic2(1), 0);
                c.add_event(InstallEvent::at(ProductId(0), Month::from_ym(2010, 1)));
                c.add_event(InstallEvent::at(ProductId(1), Month::from_ym(2013, 6)));
                c
            })
            .collect();
        Corpus::new(vocab, companies)
    }

    /// Recommender with fixed scores.
    struct Fixed(Vec<f64>);
    impl Recommender for Fixed {
        fn scores(&self, _h: &[usize]) -> Vec<f64> {
            self.0.clone()
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }
    struct FixedFactory(Vec<f64>);
    impl RecommenderFactory for FixedFactory {
        fn train(&self, _c: &Corpus, _t: &[CompanyId], _m: Month) -> Box<dyn Recommender> {
            Box::new(Fixed(self.0.clone()))
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }

    fn single_window_cfg(thresholds: Vec<f64>) -> RecEvalConfig {
        RecEvalConfig {
            windows: vec![TimeWindow::new(Month::from_ym(2013, 1), 12)],
            thresholds,
            retrain_per_window: true,
            require_history: true,
        }
    }

    #[test]
    fn perfect_recommender_scores_one() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        // Scores: product 1 high, product 2 low; product 0 is owned (masked).
        let factory = FixedFactory(vec![0.9, 0.8, 0.01]);
        let pts = evaluate_recommender(&factory, &c, &ids, &ids, &single_window_cfg(vec![0.5]));
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert!(
            (p.precision.mean - 1.0).abs() < 1e-12,
            "precision {}",
            p.precision.mean
        );
        assert!((p.recall.mean - 1.0).abs() < 1e-12);
        assert!((p.f1.mean - 1.0).abs() < 1e-12);
        assert_eq!(p.retrieved.mean, 10.0);
        assert_eq!(p.correct.mean, 10.0);
        assert_eq!(p.relevant.mean, 10.0);
    }

    #[test]
    fn owned_products_are_never_recommended() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        // Score everything at 1.0: retrieved = products 1 and 2 only (0 owned).
        let factory = FixedFactory(vec![1.0, 1.0, 1.0]);
        let pts = evaluate_recommender(&factory, &c, &ids, &ids, &single_window_cfg(vec![0.5]));
        assert_eq!(
            pts[0].retrieved.mean, 20.0,
            "2 unowned products x 10 companies"
        );
        assert_eq!(pts[0].correct.mean, 10.0);
        assert!((pts[0].precision.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_sweep_monotone_retrieved() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let factory = FixedFactory(vec![0.9, 0.3, 0.1]);
        let pts = evaluate_recommender(
            &factory,
            &c,
            &ids,
            &ids,
            &single_window_cfg(vec![0.0, 0.2, 0.4, 0.95]),
        );
        let retrieved: Vec<f64> = pts.iter().map(|p| p.retrieved.mean).collect();
        assert!(retrieved.windows(2).all(|w| w[1] <= w[0]), "{retrieved:?}");
        // At 0.95 nothing clears the bar: recall 0, precision 0 by the
        // zero-retrieval convention (finite, same window set as recall),
        // and no window scored.
        assert_eq!(pts[3].recall.mean, 0.0);
        assert_eq!(pts[3].precision.mean, 0.0);
        assert_eq!(pts[3].windows_scored, 0);
        // Lower thresholds retrieve in the single window.
        assert_eq!(pts[0].windows_scored, 1);
    }

    #[test]
    fn metrics_are_always_finite_and_share_the_window_count() {
        // Regression: zero-retrieval windows used to be skipped for
        // precision only, leaving precision.mean NaN while recall/f1
        // averaged over a different window count.
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let factory = FixedFactory(vec![0.9, 0.3, 0.1]);
        let cfg = RecEvalConfig {
            windows: vec![
                TimeWindow::new(Month::from_ym(2013, 1), 12),
                TimeWindow::new(Month::from_ym(2014, 1), 12),
            ],
            thresholds: vec![0.0, 0.2, 0.5, 0.95],
            retrain_per_window: false,
            require_history: true,
        };
        let pts = evaluate_recommender(&factory, &c, &ids, &ids, &cfg);
        for p in &pts {
            for (name, m) in [
                ("precision", &p.precision),
                ("recall", &p.recall),
                ("f1", &p.f1),
            ] {
                assert!(
                    m.mean.is_finite() && m.half_width.is_finite(),
                    "{name} at phi {} must be finite, got {} ± {}",
                    p.phi,
                    m.mean,
                    m.half_width
                );
                assert_eq!(
                    m.n,
                    cfg.windows.len(),
                    "{name} at phi {} must average over every window",
                    p.phi
                );
            }
            assert!(p.windows_scored <= cfg.windows.len());
        }
    }

    #[test]
    fn random_baseline_behaves_like_paper() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let uniform = 1.0 / 3.0;
        let factory = RandomRecommender::new(3);
        let pts = evaluate_recommender(
            &factory,
            &c,
            &ids,
            &ids,
            &single_window_cfg(vec![uniform - 0.01, uniform + 0.01]),
        );
        // Below 1/M: retrieves every unowned product; above: nothing.
        assert_eq!(pts[0].retrieved.mean, 20.0);
        assert_eq!(pts[1].retrieved.mean, 0.0);
        assert_eq!(pts[1].recall.mean, 0.0);
    }

    #[test]
    fn history_requirement_skips_new_companies() {
        let vocab = Vocabulary::new(["a", "b"]);
        let mut c0 = Company::new(0, "new", Sic2(1), 0);
        // Only activity inside the window: no history before it.
        c0.add_event(InstallEvent::at(ProductId(0), Month::from_ym(2013, 5)));
        let corpus = Corpus::new(vocab, vec![c0]);
        let ids: Vec<CompanyId> = corpus.ids().collect();
        let factory = FixedFactory(vec![1.0, 1.0]);
        let pts =
            evaluate_recommender(&factory, &corpus, &ids, &ids, &single_window_cfg(vec![0.0]));
        assert_eq!(
            pts[0].retrieved.mean, 0.0,
            "company without history skipped"
        );
        assert_eq!(pts[0].relevant.mean, 0.0);
    }

    #[test]
    fn multi_window_aggregation_counts_each_window() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let cfg = RecEvalConfig {
            windows: vec![
                TimeWindow::new(Month::from_ym(2013, 1), 12),
                TimeWindow::new(Month::from_ym(2014, 1), 12), // truth empty here
            ],
            thresholds: vec![0.5],
            retrain_per_window: false,
            require_history: true,
        };
        let factory = FixedFactory(vec![0.9, 0.8, 0.01]);
        let pts = evaluate_recommender(&factory, &c, &ids, &ids, &cfg);
        // Window 1 relevant 10, window 2 relevant 0 → mean 5.
        assert!((pts[0].relevant.mean - 5.0).abs() < 1e-12);
        // Recall: window 1 = 1.0, window 2 = 0 relevant → recall 0 → mean 0.5.
        assert!((pts[0].recall.mean - 0.5).abs() < 1e-12);
        assert_eq!(pts[0].recall.n, 2);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn rejects_empty_windows() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let cfg = RecEvalConfig {
            windows: vec![],
            thresholds: vec![0.1],
            retrain_per_window: true,
            require_history: true,
        };
        evaluate_recommender(&FixedFactory(vec![0.0; 3]), &c, &ids, &ids, &cfg);
    }

    #[test]
    fn paper_config_matches_section_5_1() {
        let cfg = RecEvalConfig::paper();
        assert_eq!(cfg.windows.len(), 13);
        assert_eq!(cfg.thresholds.len(), 11);
        assert!(cfg.retrain_per_window);
    }
}
