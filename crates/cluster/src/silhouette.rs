//! Silhouette scores (Rousseeuw 1987), the clustering-quality measure of
//! Figure 7.
//!
//! For each point `i`: `a(i)` is its mean distance to the other members of
//! its own cluster, `b(i)` the smallest mean distance to any other cluster,
//! and `s(i) = (b − a) / max(a, b)`. The score is the mean of `s(i)`.
//! Singleton clusters contribute `s(i) = 0`, matching the sklearn
//! implementation the paper used.

use hlm_linalg::vector::euclidean_distance;
use hlm_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exact mean silhouette score over all points (O(n²) distances).
///
/// # Panics
/// Panics unless there are at least 2 distinct cluster labels and at most
/// `n − 1`, and `labels.len()` matches the number of points.
pub fn silhouette_score(points: &Matrix, labels: &[usize]) -> f64 {
    silhouette_of_subset(points, labels, &(0..points.rows()).collect::<Vec<_>>())
}

/// Sampled silhouette: computes the exact silhouette on a seeded random
/// subset of at most `max_samples` points (distances measured within the
/// subset), the standard approximation for large corpora.
///
/// # Panics
/// Same conditions as [`silhouette_score`], applied to the subset.
pub fn silhouette_score_sampled(
    points: &Matrix,
    labels: &[usize],
    max_samples: usize,
    seed: u64,
) -> f64 {
    assert!(max_samples >= 2, "need at least two samples");
    let n = points.rows();
    if n <= max_samples {
        return silhouette_score(points, labels);
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    hlm_linalg::dist::shuffle(&mut rng, &mut idx);
    idx.truncate(max_samples);
    silhouette_of_subset(points, labels, &idx)
}

fn silhouette_of_subset(points: &Matrix, labels: &[usize], subset: &[usize]) -> f64 {
    assert_eq!(labels.len(), points.rows(), "one label per point required");
    assert!(subset.len() >= 2, "need at least two points");

    // Distinct labels within the subset.
    let mut distinct: Vec<usize> = subset.iter().map(|&i| labels[i]).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let k = distinct.len();
    assert!(
        k >= 2 && k < subset.len(),
        "silhouette requires 2 <= clusters ({k}) < points ({})",
        subset.len()
    );
    let label_index = |l: usize| distinct.binary_search(&l).expect("label present");

    let n = subset.len();
    let mut cluster_sizes = vec![0usize; k];
    for &i in subset {
        cluster_sizes[label_index(labels[i])] += 1;
    }

    // Per point: mean distance to each cluster. The O(n²) distance work is
    // data-parallel over fixed point chunks; per-chunk partial sums are
    // folded in chunk order so the score is independent of the thread count.
    const POINT_CHUNK: usize = 16;
    let pool = hlm_par::Pool::global();
    let total = hlm_par::par_map_reduce(
        &pool,
        subset,
        POINT_CHUNK,
        |c, chunk| {
            let lo = c * POINT_CHUNK;
            let mut part = 0.0;
            for (off, &i) in chunk.iter().enumerate() {
                let si = lo + off;
                let own = label_index(labels[i]);
                if cluster_sizes[own] == 1 {
                    continue; // singleton: s = 0
                }
                let mut sums = vec![0.0f64; k];
                for (sj, &j) in subset.iter().enumerate() {
                    if si == sj {
                        continue;
                    }
                    sums[label_index(labels[j])] +=
                        euclidean_distance(points.row(i), points.row(j));
                }
                let a = sums[own] / (cluster_sizes[own] - 1) as f64;
                let mut b = f64::INFINITY;
                for c in 0..k {
                    if c != own && cluster_sizes[c] > 0 {
                        b = b.min(sums[c] / cluster_sizes[c] as f64);
                    }
                }
                let denom = a.max(b);
                if denom > 0.0 {
                    part += (b - a) / denom;
                }
            }
            part
        },
        0.0f64,
        |acc, part| acc + part,
    );
    let _ = n;
    total / subset.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(sep: f64) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let offsets = [-0.2, -0.1, 0.0, 0.1, 0.2];
        for &o in &offsets {
            rows.push(vec![o, 0.0]);
            labels.push(0);
        }
        for &o in &offsets {
            rows.push(vec![sep + o, 0.0]);
            labels.push(1);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), labels)
    }

    #[test]
    fn well_separated_clusters_score_high() {
        let (points, labels) = two_blobs(10.0);
        let s = silhouette_score(&points, &labels);
        assert!(s > 0.9, "separation 10 should score near 1, got {s}");
    }

    #[test]
    fn score_grows_with_separation() {
        let (p1, l) = two_blobs(1.0);
        let (p2, _) = two_blobs(5.0);
        let s1 = silhouette_score(&p1, &l);
        let s2 = silhouette_score(&p2, &l);
        assert!(s2 > s1, "{s2} vs {s1}");
    }

    #[test]
    fn bad_labels_score_low() {
        let (points, mut labels) = two_blobs(10.0);
        // Scramble: split each true blob across both labels.
        for (i, l) in labels.iter_mut().enumerate() {
            *l = i % 2;
        }
        let s = silhouette_score(&points, &labels);
        assert!(
            s < 0.1,
            "scrambled labels should score near/below 0, got {s}"
        );
    }

    #[test]
    fn known_value_four_points() {
        // Two pairs on a line: {0, 1} and {10, 11}.
        let points = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        let labels = vec![0, 0, 1, 1];
        // For point 0: a = 1, b = (10 + 11) / 2 = 10.5 → s = 9.5/10.5.
        // Symmetric structure: every point has s = 9.5/10.5 or 8.5/9.5.
        let expect = (9.5 / 10.5 + 8.5 / 9.5) / 2.0;
        let s = silhouette_score(&points, &labels);
        assert!((s - expect).abs() < 1e-12, "s = {s}, expect {expect}");
    }

    #[test]
    fn singleton_cluster_contributes_zero() {
        let points = Matrix::from_rows(&[&[0.0], &[0.5], &[10.0]]);
        let labels = vec![0, 0, 1];
        let s = silhouette_score(&points, &labels);
        // Points 0, 1: a = 0.5, b = 10 resp. 9.5 → s ≈ 0.95; singleton: 0.
        let expect = ((10.0 - 0.5) / 10.0 + (9.5 - 0.5) / 9.5 + 0.0) / 3.0;
        assert!((s - expect).abs() < 1e-12);
    }

    #[test]
    fn sampled_agrees_with_exact_on_small_input() {
        let (points, labels) = two_blobs(5.0);
        let exact = silhouette_score(&points, &labels);
        let sampled = silhouette_score_sampled(&points, &labels, 100, 1);
        assert_eq!(exact, sampled, "subset covers everything");
    }

    #[test]
    fn sampled_approximates_exact_on_larger_input() {
        // 200 points in two blobs.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut state = 9u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0
        };
        for i in 0..200 {
            let c = i % 2;
            rows.push(vec![c as f64 * 8.0 + noise(), noise()]);
            labels.push(c);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let points = Matrix::from_rows(&refs);
        let exact = silhouette_score(&points, &labels);
        let sampled = silhouette_score_sampled(&points, &labels, 60, 3);
        assert!(
            (exact - sampled).abs() < 0.1,
            "exact {exact} vs sampled {sampled}"
        );
    }

    #[test]
    #[should_panic(expected = "silhouette requires")]
    fn rejects_single_cluster() {
        let points = Matrix::from_rows(&[&[0.0], &[1.0]]);
        silhouette_score(&points, &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "one label per point")]
    fn rejects_label_length_mismatch() {
        let points = Matrix::from_rows(&[&[0.0], &[1.0]]);
        silhouette_score(&points, &[0]);
    }
}
