//! Spectral co-clustering (Dhillon, KDD 2001).
//!
//! Section 3.1 of the paper reports that co-clustering the raw binary
//! company-product matrix fails on install-base data: "the only co-cluster
//! generated contained overall popular products". This module implements the
//! standard spectral bipartite co-clustering algorithm so that comparison
//! can be reproduced: normalize `A_n = D₁^{-1/2} A D₂^{-1/2}`, take the
//! second-and-later singular vector pairs, scale them back by `D^{-1/2}`,
//! stack row and column embeddings, and k-means them jointly.

use crate::kmeans::{kmeans, KmeansOptions};
use hlm_linalg::svd::truncated_svd;
use hlm_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A co-clustering of a two-dimensional matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoClustering {
    /// Cluster index of every row (company).
    pub row_labels: Vec<usize>,
    /// Cluster index of every column (product).
    pub col_labels: Vec<usize>,
    /// Number of co-clusters requested.
    pub k: usize,
}

impl CoClustering {
    /// The columns assigned to co-cluster `c`.
    pub fn columns_of(&self, c: usize) -> Vec<usize> {
        self.col_labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// The rows assigned to co-cluster `c`.
    pub fn rows_of(&self, c: usize) -> Vec<usize> {
        self.row_labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Sizes `(rows, cols)` of each co-cluster.
    pub fn sizes(&self) -> Vec<(usize, usize)> {
        (0..self.k)
            .map(|c| {
                (
                    self.row_labels.iter().filter(|&&l| l == c).count(),
                    self.col_labels.iter().filter(|&&l| l == c).count(),
                )
            })
            .collect()
    }
}

/// Runs spectral co-clustering with `k` co-clusters on a non-negative
/// matrix.
///
/// # Panics
/// Panics if `k < 2`, the matrix is empty, or it contains negative entries.
pub fn spectral_cocluster(a: &Matrix, k: usize, seed: u64) -> CoClustering {
    assert!(k >= 2, "need at least two co-clusters");
    let (n, m) = a.shape();
    assert!(n > 0 && m > 0, "empty matrix");
    assert!(
        a.as_slice().iter().all(|&x| x >= 0.0),
        "matrix must be non-negative"
    );

    // Degree scalings; empty rows/columns get a unit degree so the
    // normalization stays finite (they end up in arbitrary clusters).
    let mut d1 = vec![0.0f64; n];
    let mut d2 = vec![0.0f64; m];
    for (i, d1i) in d1.iter_mut().enumerate().take(n) {
        for (j, d2j) in d2.iter_mut().enumerate().take(m) {
            let v = a.get(i, j);
            *d1i += v;
            *d2j += v;
        }
    }
    let d1_inv_sqrt: Vec<f64> = d1
        .iter()
        .map(|&d| if d > 0.0 { d.powf(-0.5) } else { 1.0 })
        .collect();
    let d2_inv_sqrt: Vec<f64> = d2
        .iter()
        .map(|&d| if d > 0.0 { d.powf(-0.5) } else { 1.0 })
        .collect();

    let an = Matrix::from_fn(n, m, |i, j| d1_inv_sqrt[i] * a.get(i, j) * d2_inv_sqrt[j]);

    // Number of informative singular-vector pairs: ceil(log2 k), skipping
    // the first (trivial) pair.
    let l = (k as f64).log2().ceil() as usize;
    let l = l.max(1);
    let svd = truncated_svd(&an, l + 1, seed);
    let used = svd.rank().saturating_sub(1).min(l);
    // Degenerate case: not enough spectrum; fall back to one dimension of
    // whatever is available.
    let used = used.max(1).min(svd.rank());

    // Build the joint embedding Z = [D1^{-1/2} U_{2..}; D2^{-1/2} V_{2..}].
    let offset = if svd.rank() > used { 1 } else { 0 };
    let mut z = Matrix::zeros(n + m, used);
    for (i, &s) in d1_inv_sqrt.iter().enumerate().take(n) {
        for c in 0..used {
            z.set(i, c, s * svd.u.get(i, offset + c));
        }
    }
    for (j, &s) in d2_inv_sqrt.iter().enumerate().take(m) {
        for c in 0..used {
            z.set(n + j, c, s * svd.v.get(j, offset + c));
        }
    }

    let res = kmeans(
        &z,
        &KmeansOptions {
            k,
            max_iters: 100,
            tol: 1e-9,
            seed,
        },
    );
    CoClustering {
        row_labels: res.assignments[..n].to_vec(),
        col_labels: res.assignments[n..].to_vec(),
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Block-diagonal bipartite structure: rows 0..10 × cols 0..4 and rows
    /// 10..20 × cols 4..8.
    fn block_matrix() -> Matrix {
        Matrix::from_fn(20, 8, |i, j| {
            let row_block = usize::from(i >= 10);
            let col_block = usize::from(j >= 4);
            if row_block == col_block {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn recovers_planted_blocks() {
        let cc = spectral_cocluster(&block_matrix(), 2, 1);
        // Rows 0..10 share a label; rows 10..20 share the other.
        let l0 = cc.row_labels[0];
        assert!(cc.row_labels[..10].iter().all(|&l| l == l0));
        let l1 = cc.row_labels[10];
        assert_ne!(l0, l1);
        assert!(cc.row_labels[10..].iter().all(|&l| l == l1));
        // Columns follow their block's rows.
        assert!(cc.col_labels[..4].iter().all(|&l| l == l0));
        assert!(cc.col_labels[4..].iter().all(|&l| l == l1));
    }

    #[test]
    fn noisy_blocks_still_recovered() {
        let mut a = block_matrix();
        // Sprinkle weak off-block noise.
        for i in 0..20 {
            for j in 0..8 {
                if a.get(i, j) == 0.0 && (i * 7 + j) % 5 == 0 {
                    a.set(i, j, 0.15);
                }
            }
        }
        let cc = spectral_cocluster(&a, 2, 2);
        let l0 = cc.row_labels[0];
        let same_block_0 = cc.row_labels[..10].iter().filter(|&&l| l == l0).count();
        assert!(same_block_0 >= 9, "block 0 purity {same_block_0}/10");
    }

    #[test]
    fn sizes_account_for_everything() {
        let cc = spectral_cocluster(&block_matrix(), 2, 3);
        let sizes = cc.sizes();
        let rows: usize = sizes.iter().map(|s| s.0).sum();
        let cols: usize = sizes.iter().map(|s| s.1).sum();
        assert_eq!(rows, 20);
        assert_eq!(cols, 8);
        assert_eq!(cc.rows_of(0).len() + cc.rows_of(1).len(), 20);
    }

    #[test]
    fn handles_empty_columns() {
        let mut a = block_matrix();
        for i in 0..20 {
            a.set(i, 3, 0.0); // column 3 becomes empty
        }
        let cc = spectral_cocluster(&a, 2, 4);
        assert_eq!(cc.col_labels.len(), 8);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_entries() {
        let a = Matrix::from_rows(&[&[1.0, -0.5], &[0.0, 1.0]]);
        spectral_cocluster(&a, 2, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = block_matrix();
        let x = spectral_cocluster(&a, 2, 9);
        let y = spectral_cocluster(&a, 2, 9);
        assert_eq!(x.row_labels, y.row_labels);
        assert_eq!(x.col_labels, y.col_labels);
    }
}
