//! Diagonal-covariance Gaussian mixture models fit by EM, and Fisher-vector
//! aggregation.
//!
//! Section 3.4 of the paper describes aggregating word/product embeddings
//! into a document/company vector with "the Fisher Kernel Framework
//! (probabilistic modeling of the corpus of documents using a mixture of
//! Gaussians)", citing Jaakkola & Haussler and Clinchant & Perronnin. This
//! module provides that pipeline: a GMM over product-embedding space and the
//! (improved) Fisher vector of a company's product set under that GMM.

use hlm_linalg::special::log_sum_exp;
use hlm_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// EM options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GmmOptions {
    /// Number of mixture components.
    pub k: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Stop when the mean log-likelihood improves by less than this.
    pub tol: f64,
    /// Variance floor (keeps components from collapsing onto single points).
    pub var_floor: f64,
    /// Seed for the k-means-style initialization.
    pub seed: u64,
}

impl GmmOptions {
    /// Sensible defaults for `k` components.
    pub fn new(k: usize) -> Self {
        GmmOptions {
            k,
            max_iters: 100,
            tol: 1e-7,
            var_floor: 1e-6,
            seed: 42,
        }
    }
}

/// A fitted diagonal-covariance Gaussian mixture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gmm {
    /// Mixture weights (sum to 1).
    pub weights: Vec<f64>,
    /// Component means, `K x D`.
    pub means: Matrix,
    /// Component variances (diagonal), `K x D`.
    pub vars: Matrix,
    /// Mean log-likelihood per point at the final EM iteration.
    pub final_log_likelihood: f64,
}

impl Gmm {
    /// Fits a GMM to the rows of `points` by EM with a k-means++-style mean
    /// initialization.
    ///
    /// # Panics
    /// Panics if there are fewer points than components or `k == 0`.
    pub fn fit(points: &Matrix, opts: &GmmOptions) -> Gmm {
        let n = points.rows();
        let d = points.cols();
        assert!(opts.k >= 1, "k must be positive");
        assert!(n >= opts.k, "need at least k points");
        let k = opts.k;
        let mut rng = StdRng::seed_from_u64(opts.seed);

        // Initialize means at random distinct points; variances at the
        // global per-dimension variance; uniform weights.
        let mut idx: Vec<usize> = (0..n).collect();
        hlm_linalg::dist::shuffle(&mut rng, &mut idx);
        let mut means = Matrix::zeros(k, d);
        for (c, &i) in idx.iter().take(k).enumerate() {
            means.row_mut(c).copy_from_slice(points.row(i));
        }
        let mut global_var = vec![0.0f64; d];
        let mut mean_all = vec![0.0f64; d];
        for i in 0..n {
            for (m, &x) in mean_all.iter_mut().zip(points.row(i)) {
                *m += x / n as f64;
            }
        }
        for i in 0..n {
            for (v, (&x, &m)) in global_var
                .iter_mut()
                .zip(points.row(i).iter().zip(&mean_all))
            {
                *v += (x - m) * (x - m) / n as f64;
            }
        }
        let mut vars = Matrix::from_fn(k, d, |_, j| global_var[j].max(opts.var_floor));
        let mut weights = vec![1.0 / k as f64; k];

        let mut log_resp = Matrix::zeros(n, k);
        let mut prev_ll = f64::NEG_INFINITY;
        let mut final_ll = prev_ll;
        for _iter in 0..opts.max_iters {
            // E-step: log responsibilities.
            let mut total_ll = 0.0;
            for i in 0..n {
                let row = points.row(i);
                let mut lps = vec![0.0f64; k];
                for (c, (lp, &w)) in lps.iter_mut().zip(&weights).enumerate() {
                    *lp = w.max(1e-300).ln() + log_gaussian_diag(row, means.row(c), vars.row(c));
                }
                let norm = log_sum_exp(&lps);
                total_ll += norm;
                for (c, &lp) in lps.iter().enumerate() {
                    log_resp.set(i, c, lp - norm);
                }
            }
            let mean_ll = total_ll / n as f64;
            final_ll = mean_ll;
            if (mean_ll - prev_ll).abs() < opts.tol {
                break;
            }
            prev_ll = mean_ll;

            // M-step.
            for (c, wc) in weights.iter_mut().enumerate().take(k) {
                let mut nk = 0.0;
                let mut mu = vec![0.0f64; d];
                for i in 0..n {
                    let r = log_resp.get(i, c).exp();
                    nk += r;
                    for (m, &x) in mu.iter_mut().zip(points.row(i)) {
                        *m += r * x;
                    }
                }
                if nk < 1e-12 {
                    // Dead component: re-seed at a random point.
                    let i = rng.gen_range(0..n);
                    means.row_mut(c).copy_from_slice(points.row(i));
                    for (j, &gv) in global_var.iter().enumerate().take(d) {
                        vars.set(c, j, gv.max(opts.var_floor));
                    }
                    *wc = 1e-6;
                    continue;
                }
                mu.iter_mut().for_each(|m| *m /= nk);
                let mut var = vec![0.0f64; d];
                for i in 0..n {
                    let r = log_resp.get(i, c).exp();
                    for (v, (&x, &m)) in var.iter_mut().zip(points.row(i).iter().zip(&mu)) {
                        *v += r * (x - m) * (x - m);
                    }
                }
                for (j, v) in var.iter().enumerate() {
                    vars.set(c, j, (v / nk).max(opts.var_floor));
                }
                means.row_mut(c).copy_from_slice(&mu);
                *wc = nk / n as f64;
            }
            // Renormalize weights (dead-component reseeding can unbalance).
            let ws: f64 = weights.iter().sum();
            weights.iter_mut().for_each(|w| *w /= ws);
        }

        Gmm {
            weights,
            means,
            vars,
            final_log_likelihood: final_ll,
        }
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.weights.len()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.means.cols()
    }

    /// Mean log-likelihood of the rows of `points` under the mixture.
    pub fn log_likelihood(&self, points: &Matrix) -> f64 {
        let n = points.rows();
        let mut total = 0.0;
        for i in 0..n {
            total += self.log_density(points.row(i));
        }
        total / n.max(1) as f64
    }

    /// Log density of one point.
    pub fn log_density(&self, x: &[f64]) -> f64 {
        let lps: Vec<f64> = (0..self.k())
            .map(|c| {
                self.weights[c].max(1e-300).ln()
                    + log_gaussian_diag(x, self.means.row(c), self.vars.row(c))
            })
            .collect();
        log_sum_exp(&lps)
    }

    /// Posterior component responsibilities `γ(k | x)`.
    pub fn responsibilities(&self, x: &[f64]) -> Vec<f64> {
        let lps: Vec<f64> = (0..self.k())
            .map(|c| {
                self.weights[c].max(1e-300).ln()
                    + log_gaussian_diag(x, self.means.row(c), self.vars.row(c))
            })
            .collect();
        hlm_linalg::special::softmax(&lps)
    }

    /// The improved Fisher vector of a point set (Perronnin et al.):
    /// mean- and variance-gradient blocks per component, signed-square-root
    /// power normalization, then L2 normalization. Output dimension is
    /// `2 · K · D`. An empty point set maps to the zero vector.
    pub fn fisher_vector(&self, points: &[&[f64]]) -> Vec<f64> {
        let k = self.k();
        let d = self.dim();
        let mut fv = vec![0.0f64; 2 * k * d];
        let t = points.len();
        if t == 0 {
            return fv;
        }
        for &x in points {
            let gamma = self.responsibilities(x);
            for c in 0..k {
                let g = gamma[c];
                if g <= 0.0 {
                    continue;
                }
                for j in 0..d {
                    let sigma = self.vars.get(c, j).sqrt();
                    let u = (x[j] - self.means.get(c, j)) / sigma;
                    fv[c * d + j] += g * u;
                    fv[k * d + c * d + j] += g * (u * u - 1.0);
                }
            }
        }
        for c in 0..k {
            let wc = self.weights[c].max(1e-12);
            let s_mu = 1.0 / (t as f64 * wc.sqrt());
            let s_sig = 1.0 / (t as f64 * (2.0 * wc).sqrt());
            for j in 0..d {
                fv[c * d + j] *= s_mu;
                fv[k * d + c * d + j] *= s_sig;
            }
        }
        // Power normalization + L2.
        for v in fv.iter_mut() {
            *v = v.signum() * v.abs().sqrt();
        }
        hlm_linalg::vector::normalize(&mut fv);
        fv
    }
}

/// Log density of a diagonal Gaussian.
fn log_gaussian_diag(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), mean.len());
    let mut lp = 0.0;
    for ((&xi, &mi), &vi) in x.iter().zip(mean).zip(var) {
        let v = vi.max(1e-300);
        lp += -0.5 * ((xi - mi) * (xi - mi) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
    }
    lp
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two planted Gaussians at (0,0) and (6,6) with sd 0.5.
    fn planted_points(n_per: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(2 * n_per, 2, |i, _| {
            let base = if i < n_per { 0.0 } else { 6.0 };
            base + 0.5 * hlm_linalg::dist::sample_standard_normal(&mut rng)
        })
    }

    #[test]
    fn em_recovers_planted_mixture() {
        let points = planted_points(150, 1);
        let gmm = Gmm::fit(&points, &GmmOptions::new(2));
        // Means near (0,0) and (6,6), in some order.
        let m0 = gmm.means.row(0)[0];
        let (lo, hi) = if m0 < 3.0 { (0, 1) } else { (1, 0) };
        for j in 0..2 {
            assert!(
                gmm.means.get(lo, j).abs() < 0.3,
                "low mean {}",
                gmm.means.get(lo, j)
            );
            assert!((gmm.means.get(hi, j) - 6.0).abs() < 0.3);
        }
        for &w in &gmm.weights {
            assert!((w - 0.5).abs() < 0.1, "weight {w}");
        }
        // Variances near 0.25.
        assert!((gmm.vars.get(0, 0) - 0.25).abs() < 0.15);
    }

    #[test]
    fn log_likelihood_improves_with_right_k() {
        let points = planted_points(100, 2);
        let g1 = Gmm::fit(&points, &GmmOptions::new(1));
        let g2 = Gmm::fit(&points, &GmmOptions::new(2));
        assert!(
            g2.final_log_likelihood > g1.final_log_likelihood + 0.5,
            "2 components {} must beat 1 {}",
            g2.final_log_likelihood,
            g1.final_log_likelihood
        );
        // The reported likelihood matches an independent evaluation.
        assert!((g2.log_likelihood(&points) - g2.final_log_likelihood).abs() < 0.05);
    }

    #[test]
    fn responsibilities_are_posterior_distributions() {
        let points = planted_points(80, 3);
        let gmm = Gmm::fit(&points, &GmmOptions::new(2));
        for i in [0usize, 100] {
            let r = gmm.responsibilities(points.row(i));
            assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(r.iter().all(|&x| (0.0..=1.0).contains(&x)));
            // Points deep inside a cluster are confidently assigned.
            assert!(r.iter().cloned().fold(0.0, f64::max) > 0.95);
        }
    }

    #[test]
    fn fisher_vectors_reflect_set_overlap() {
        // Fisher vectors of in-model random sets are zero-mean noise; the
        // discriminative signal is *which* points a set contains. Sets with
        // heavy overlap must be far closer than disjoint sets from another
        // cluster.
        let points = planted_points(100, 4);
        let gmm = Gmm::fit(&points, &GmmOptions::new(2));
        let rows = |range: std::ops::Range<usize>| -> Vec<&[f64]> {
            range.map(|i| points.row(i)).collect()
        };
        let fv_a = gmm.fisher_vector(&rows(0..20));
        let fv_overlap = gmm.fisher_vector(&rows(5..25)); // shares 15 of 20 points
        let fv_other = gmm.fisher_vector(&rows(100..120)); // other cluster
        let d_overlap = hlm_linalg::vector::euclidean_distance(&fv_a, &fv_overlap);
        let d_other = hlm_linalg::vector::euclidean_distance(&fv_a, &fv_other);
        assert!(
            d_other > 1.3 * d_overlap,
            "disjoint-set FV distance {d_other} vs overlapping {d_overlap}"
        );
        // Identical sets give identical vectors.
        assert_eq!(fv_a, gmm.fisher_vector(&rows(0..20)));
    }

    #[test]
    fn fisher_vector_shape_and_norm() {
        let points = planted_points(50, 5);
        let gmm = Gmm::fit(&points, &GmmOptions::new(3));
        let fv = gmm.fisher_vector(&[points.row(0), points.row(1)]);
        assert_eq!(fv.len(), 2 * 3 * 2);
        assert!(
            (hlm_linalg::vector::norm(&fv) - 1.0).abs() < 1e-9,
            "L2 normalized"
        );
        let empty = gmm.fisher_vector(&[]);
        assert!(empty.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let points = planted_points(60, 6);
        let a = Gmm::fit(&points, &GmmOptions::new(2));
        let b = Gmm::fit(&points, &GmmOptions::new(2));
        assert_eq!(a.means, b.means);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    #[should_panic(expected = "need at least k points")]
    fn rejects_more_components_than_points() {
        let points = Matrix::zeros(2, 2);
        Gmm::fit(&points, &GmmOptions::new(5));
    }
}
