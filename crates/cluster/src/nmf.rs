//! Non-negative matrix factorization with overlapping co-cluster
//! extraction.
//!
//! Section 3.1 of the paper names OCuLaR (Heckel & Vlachos, "Interpretable
//! recommendations via overlapping co-clusters") as the co-clustering method
//! closest to its problem. OCuLaR's core is a non-negative factorization of
//! the interaction matrix whose factors are read as *overlapping*
//! co-clusters: a company (row) participates in every component where its
//! loading is large, and likewise for products (columns). This module
//! implements that pipeline: Lee–Seung multiplicative updates for
//! `V ≈ W · H` under the Frobenius objective, plus the loading-threshold
//! co-cluster reader.

use hlm_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Factorization options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NmfOptions {
    /// Number of components (co-clusters).
    pub k: usize,
    /// Maximum multiplicative-update iterations.
    pub max_iters: usize,
    /// Stop when the relative reconstruction-error improvement falls below
    /// this.
    pub tol: f64,
    /// Seed for the random initialization.
    pub seed: u64,
}

impl NmfOptions {
    /// Sensible defaults for `k` components.
    pub fn new(k: usize) -> Self {
        NmfOptions {
            k,
            max_iters: 200,
            tol: 1e-6,
            seed: 42,
        }
    }
}

/// A fitted factorization `V ≈ W · H`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Nmf {
    /// Row (company) loadings, `N x K`, non-negative.
    pub w: Matrix,
    /// Column (product) loadings, `K x M`, non-negative.
    pub h: Matrix,
    /// Relative Frobenius reconstruction error `‖V − WH‖ / ‖V‖` at the last
    /// iteration.
    pub relative_error: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// One overlapping co-cluster: the rows and columns loading on a component.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverlappingCoCluster {
    /// Component index.
    pub component: usize,
    /// Row (company) indices with loading ≥ threshold × max loading of the
    /// component's row column.
    pub rows: Vec<usize>,
    /// Column (product) indices selected the same way on `H`.
    pub cols: Vec<usize>,
}

const EPS: f64 = 1e-12;

/// Fits NMF by Lee–Seung multiplicative updates.
///
/// # Panics
/// Panics if `v` contains negative entries, is empty, or `k` is 0 or larger
/// than both dimensions.
pub fn nmf(v: &Matrix, opts: &NmfOptions) -> Nmf {
    let (n, m) = v.shape();
    assert!(n > 0 && m > 0, "empty matrix");
    assert!(opts.k >= 1, "k must be positive");
    assert!(opts.k <= n.max(m), "k larger than both dimensions");
    assert!(
        v.as_slice().iter().all(|&x| x >= 0.0),
        "matrix must be non-negative"
    );

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let scale = (v.sum() / (n * m) as f64 / opts.k as f64).sqrt().max(1e-3);
    let mut w = Matrix::from_fn(n, opts.k, |_, _| scale * (0.1 + rng.gen::<f64>()));
    let mut h = Matrix::from_fn(opts.k, m, |_, _| scale * (0.1 + rng.gen::<f64>()));

    let v_norm = v.frobenius_norm().max(EPS);
    let mut prev_err = f64::INFINITY;
    let mut err = prev_err;
    let mut iterations = 0;
    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        // H <- H .* (Wᵀ V) ./ (Wᵀ W H)
        let wt_v = w.transpose().matmul(v);
        let wt_w_h = w.transpose().matmul(&w).matmul(&h);
        for r in 0..h.rows() {
            for c in 0..h.cols() {
                let upd = h.get(r, c) * wt_v.get(r, c) / (wt_w_h.get(r, c) + EPS);
                h.set(r, c, upd);
            }
        }
        // W <- W .* (V Hᵀ) ./ (W H Hᵀ)
        let v_ht = v.matmul(&h.transpose());
        let w_h_ht = w.matmul(&h.matmul(&h.transpose()));
        for r in 0..w.rows() {
            for c in 0..w.cols() {
                let upd = w.get(r, c) * v_ht.get(r, c) / (w_h_ht.get(r, c) + EPS);
                w.set(r, c, upd);
            }
        }

        err = v.sub(&w.matmul(&h)).frobenius_norm() / v_norm;
        if prev_err.is_finite() && (prev_err - err).abs() < opts.tol * prev_err.max(EPS) {
            break;
        }
        prev_err = err;
    }
    Nmf {
        w,
        h,
        relative_error: err,
        iterations,
    }
}

impl Nmf {
    /// Number of components.
    pub fn k(&self) -> usize {
        self.w.cols()
    }

    /// The rank-`k` reconstruction `W · H`.
    pub fn reconstruct(&self) -> Matrix {
        self.w.matmul(&self.h)
    }

    /// Reads the factors as overlapping co-clusters: a row belongs to
    /// component `c` when `W[row, c] ≥ threshold · max_row W[·, c]`, and a
    /// column when `H[c, col] ≥ threshold · max_col H[c, ·]`. With
    /// `threshold` well below 1, rows/columns appear in multiple
    /// co-clusters — the "overlapping" reading of OCuLaR.
    ///
    /// # Panics
    /// Panics unless `0 < threshold <= 1`.
    pub fn overlapping_coclusters(&self, threshold: f64) -> Vec<OverlappingCoCluster> {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1], got {threshold}"
        );
        (0..self.k())
            .map(|c| {
                let w_col = self.w.col(c);
                let w_max = w_col.iter().cloned().fold(0.0f64, f64::max);
                let rows = w_col
                    .iter()
                    .enumerate()
                    .filter(|&(_, &x)| w_max > 0.0 && x >= threshold * w_max)
                    .map(|(i, _)| i)
                    .collect();
                let h_row = self.h.row(c);
                let h_max = h_row.iter().cloned().fold(0.0f64, f64::max);
                let cols = h_row
                    .iter()
                    .enumerate()
                    .filter(|&(_, &x)| h_max > 0.0 && x >= threshold * h_max)
                    .map(|(j, _)| j)
                    .collect();
                OverlappingCoCluster {
                    component: c,
                    rows,
                    cols,
                }
            })
            .collect()
    }

    /// Recommendation scores for a row: the reconstructed row of `W · H`,
    /// the OCuLaR-style score "how strongly do this company's co-clusters
    /// load on each product".
    ///
    /// # Panics
    /// Panics on an out-of-range row.
    pub fn predict_row(&self, row: usize) -> Vec<f64> {
        assert!(row < self.w.rows(), "row out of range");
        self.h.vecmat(self.w.row(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rank-2 block matrix with overlap: rows 0..10 use cols 0..4, rows
    /// 10..20 use cols 4..8, rows 20..24 use both blocks.
    fn block_matrix() -> Matrix {
        Matrix::from_fn(24, 8, |i, j| {
            let in_a = i < 10 || i >= 20;
            let in_b = (10..20).contains(&i) || i >= 20;
            let col_a = j < 4;
            if (in_a && col_a) || (in_b && !col_a) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn reconstruction_error_is_small_on_low_rank_input() {
        let v = block_matrix();
        let fit = nmf(&v, &NmfOptions::new(2));
        assert!(
            fit.relative_error < 0.05,
            "rank-2 input should factor well, err {}",
            fit.relative_error
        );
        // Factors stay non-negative.
        assert!(fit.w.as_slice().iter().all(|&x| x >= 0.0));
        assert!(fit.h.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn error_does_not_increase_with_rank() {
        let v = block_matrix();
        let e1 = nmf(&v, &NmfOptions::new(1)).relative_error;
        let e2 = nmf(&v, &NmfOptions::new(2)).relative_error;
        let e4 = nmf(&v, &NmfOptions::new(4)).relative_error;
        assert!(e2 <= e1 + 1e-6, "{e2} vs {e1}");
        assert!(e4 <= e2 + 1e-2, "{e4} vs {e2}");
    }

    #[test]
    fn overlapping_rows_appear_in_both_coclusters() {
        let v = block_matrix();
        let fit = nmf(&v, &NmfOptions::new(2));
        let ccs = fit.overlapping_coclusters(0.5);
        assert_eq!(ccs.len(), 2);
        // The overlap rows 20..24 belong to both components; the pure rows
        // to exactly one.
        for overlap_row in 20..24 {
            assert!(
                ccs.iter().all(|c| c.rows.contains(&overlap_row)),
                "row {overlap_row} must be in both co-clusters"
            );
        }
        let in_both = |row: usize| ccs.iter().filter(|c| c.rows.contains(&row)).count();
        assert_eq!(in_both(0), 1, "pure block-A row in exactly one co-cluster");
        assert_eq!(in_both(15), 1, "pure block-B row in exactly one co-cluster");
        // Column sides separate the two blocks.
        let cols0: std::collections::HashSet<_> = ccs[0].cols.iter().collect();
        let cols1: std::collections::HashSet<_> = ccs[1].cols.iter().collect();
        assert!(
            cols0.is_disjoint(&cols1),
            "{:?} vs {:?}",
            ccs[0].cols,
            ccs[1].cols
        );
    }

    #[test]
    fn predict_row_matches_reconstruction() {
        let v = block_matrix();
        let fit = nmf(&v, &NmfOptions::new(2));
        let rec = fit.reconstruct();
        let row = fit.predict_row(3);
        for (j, &x) in row.iter().enumerate() {
            assert!((x - rec.get(3, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let v = block_matrix();
        let a = nmf(&v, &NmfOptions::new(2));
        let b = nmf(&v, &NmfOptions::new(2));
        assert_eq!(a.w, b.w);
        assert_eq!(a.h, b.h);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_input() {
        let v = Matrix::from_rows(&[&[1.0, -0.1], &[0.0, 1.0]]);
        nmf(&v, &NmfOptions::new(1));
    }

    #[test]
    fn handles_zero_matrix_gracefully() {
        let v = Matrix::zeros(5, 4);
        let fit = nmf(&v, &NmfOptions::new(2));
        assert!(fit.relative_error.is_finite());
        let ccs = fit.overlapping_coclusters(0.5);
        assert_eq!(ccs.len(), 2);
    }
}
