//! Clustering and visualization substrates: k-means++, silhouette scores and
//! exact t-SNE.
//!
//! Section 4.2 of the paper validates company representations by clustering
//! them (k-means) and scoring the clusterings with silhouettes (Figure 7);
//! Figures 8–9 project LDA product embeddings to 2-D with t-SNE. The paper
//! used sklearn; this crate implements the same algorithms from scratch.

pub mod cocluster;
pub mod gmm;
pub mod kmeans;
pub mod nmf;
pub mod silhouette;
pub mod tsne;

pub use cocluster::{spectral_cocluster, CoClustering};
pub use gmm::{Gmm, GmmOptions};
pub use kmeans::{kmeans, KmeansOptions, KmeansResult};
pub use nmf::{nmf, Nmf, NmfOptions, OverlappingCoCluster};
pub use silhouette::{silhouette_score, silhouette_score_sampled};
pub use tsne::{tsne, TsneOptions};
