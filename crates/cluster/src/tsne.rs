//! Exact t-SNE (van der Maaten & Hinton 2008).
//!
//! Projects high-dimensional points to 2-D for the product-embedding maps of
//! Figures 8–9. The point sets involved are tiny (38 products), so the exact
//! O(n²) formulation with early exaggeration and momentum is the right
//! implementation — no Barnes–Hut tree needed.

use hlm_linalg::dist::sample_standard_normal;
use hlm_linalg::vector::euclidean_distance_sq;
use hlm_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// t-SNE options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TsneOptions {
    /// Output dimensionality (2 for the paper's maps).
    pub out_dims: usize,
    /// Target perplexity of the input-space conditional distributions.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub n_iters: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied to `P` for the first quarter of the
    /// iterations.
    pub exaggeration: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneOptions {
    fn default() -> Self {
        TsneOptions {
            out_dims: 2,
            perplexity: 5.0,
            n_iters: 500,
            learning_rate: 100.0,
            exaggeration: 12.0,
            seed: 42,
        }
    }
}

impl TsneOptions {
    /// Checks internal consistency against the number of points.
    ///
    /// # Panics
    /// Panics on nonsensical settings.
    fn validate(&self, n: usize) {
        assert!(self.out_dims >= 1, "need at least one output dimension");
        assert!(n >= 3, "t-SNE needs at least 3 points, got {n}");
        assert!(
            self.perplexity > 0.0 && self.perplexity < n as f64,
            "perplexity must be in (0, n)"
        );
        assert!(self.n_iters >= 10, "too few iterations");
        assert!(self.learning_rate > 0.0 && self.exaggeration >= 1.0);
    }
}

/// Binary-searches the Gaussian bandwidth for row `i` so the conditional
/// distribution's perplexity matches the target; returns `p_{j|i}`.
fn conditional_probs(d2_row: &[f64], i: usize, target_perplexity: f64) -> Vec<f64> {
    let n = d2_row.len();
    let target_entropy = target_perplexity.ln();
    let mut beta = 1.0; // 1 / (2σ²)
    let (mut beta_min, mut beta_max) = (f64::NEG_INFINITY, f64::INFINITY);
    let mut probs = vec![0.0; n];
    for _ in 0..64 {
        let mut sum = 0.0;
        for (j, &d2) in d2_row.iter().enumerate() {
            probs[j] = if j == i { 0.0 } else { (-beta * d2).exp() };
            sum += probs[j];
        }
        if sum <= 0.0 {
            // All neighbours infinitely far at this beta: soften.
            beta /= 10.0;
            continue;
        }
        // Shannon entropy of the normalized distribution.
        let mut entropy = 0.0;
        for (j, p) in probs.iter_mut().enumerate() {
            *p /= sum;
            if *p > 0.0 {
                entropy -= *p * p.ln();
            }
            let _ = j;
        }
        let diff = entropy - target_entropy;
        if diff.abs() < 1e-5 {
            break;
        }
        if diff > 0.0 {
            beta_min = beta;
            beta = if beta_max.is_finite() {
                (beta + beta_max) / 2.0
            } else {
                beta * 2.0
            };
        } else {
            beta_max = beta;
            beta = if beta_min.is_finite() {
                (beta + beta_min) / 2.0
            } else {
                beta / 2.0
            };
        }
    }
    probs
}

/// Runs exact t-SNE on the rows of `points`; returns an `n x out_dims`
/// embedding.
///
/// # Panics
/// Panics on invalid options (including `perplexity >= n`).
pub fn tsne(points: &Matrix, opts: &TsneOptions) -> Matrix {
    let n = points.rows();
    opts.validate(n);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Pairwise squared distances.
    let mut d2 = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i + 1..n {
            let d = euclidean_distance_sq(points.row(i), points.row(j));
            d2.set(i, j, d);
            d2.set(j, i, d);
        }
    }

    // Symmetrized joint P.
    let mut p = Matrix::zeros(n, n);
    for i in 0..n {
        let cond = conditional_probs(d2.row(i), i, opts.perplexity);
        for (j, &c) in cond.iter().enumerate() {
            p.add_at(i, j, c);
            p.add_at(j, i, c);
        }
    }
    let p_sum = p.sum();
    p.scale_mut(1.0 / p_sum);
    let p = p.map(|x| x.max(1e-12));

    // Initial layout.
    let d_out = opts.out_dims;
    let mut y = Matrix::from_fn(n, d_out, |_, _| 1e-2 * sample_standard_normal(&mut rng));
    let mut velocity = Matrix::zeros(n, d_out);
    let mut gains = Matrix::filled(n, d_out, 1.0);

    // Rows per data-parallel chunk in the Q / gradient passes. Fixed so
    // chunk boundaries and reduction order never depend on the thread count.
    const ROW_CHUNK: usize = 8;
    let pool = hlm_par::Pool::global();

    let exag_end = opts.n_iters / 4;
    let mut q = Matrix::zeros(n, n);
    for iter in 0..opts.n_iters {
        let exaggeration = if iter < exag_end {
            opts.exaggeration
        } else {
            1.0
        };
        let momentum = if iter < exag_end { 0.5 } else { 0.8 };

        // Student-t affinities in the embedding: each row computed in full
        // (both triangles), row chunks in parallel, per-chunk sums folded in
        // chunk order.
        let partials = {
            let y_ref = &y;
            hlm_par::par_for_each_init(
                &pool,
                q.as_mut_slice(),
                ROW_CHUNK * n,
                |_| (),
                |_, c, block| {
                    let lo = c * ROW_CHUNK;
                    let mut part = 0.0;
                    for (r, row) in block.chunks_mut(n).enumerate() {
                        let i = lo + r;
                        for (j, cell) in row.iter_mut().enumerate() {
                            if i == j {
                                *cell = 0.0;
                                continue;
                            }
                            let w = 1.0 / (1.0 + euclidean_distance_sq(y_ref.row(i), y_ref.row(j)));
                            *cell = w;
                            part += w;
                        }
                    }
                    part
                },
            )
        };
        let q_sum: f64 = partials.iter().sum();

        // Gradient: 4 Σ_j (exag·p_ij − q_ij) w_ij (y_i − y_j). Rows are
        // independent, so row chunks run in parallel.
        let mut grad = Matrix::zeros(n, d_out);
        {
            let (y_ref, p_ref, q_ref) = (&y, &p, &q);
            hlm_par::par_for_each_init(
                &pool,
                grad.as_mut_slice(),
                ROW_CHUNK * d_out,
                |_| (),
                |_, c, block| {
                    let lo = c * ROW_CHUNK;
                    for (r, row) in block.chunks_mut(d_out).enumerate() {
                        let i = lo + r;
                        for j in 0..n {
                            if i == j {
                                continue;
                            }
                            let w = q_ref.get(i, j);
                            let q_ij = (w / q_sum).max(1e-12);
                            let coeff = 4.0 * (exaggeration * p_ref.get(i, j) - q_ij) * w;
                            for (k, g) in row.iter_mut().enumerate() {
                                *g += coeff * (y_ref.get(i, k) - y_ref.get(j, k));
                            }
                        }
                    }
                },
            );
        }

        // Adaptive gains + momentum update (van der Maaten's scheme).
        for i in 0..n {
            for k in 0..d_out {
                let g = grad.get(i, k);
                let v = velocity.get(i, k);
                let same_sign = g.signum() == v.signum();
                let gain = (if same_sign {
                    gains.get(i, k) * 0.8
                } else {
                    gains.get(i, k) + 0.2
                })
                .max(0.01);
                gains.set(i, k, gain);
                let new_v = momentum * v - opts.learning_rate * gain * g;
                velocity.set(i, k, new_v);
                y.add_at(i, k, new_v);
            }
        }

        // Re-center to remove drift.
        for k in 0..d_out {
            let mean: f64 = (0..n).map(|i| y.get(i, k)).sum::<f64>() / n as f64;
            for i in 0..n {
                y.add_at(i, k, -mean);
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 10-point clusters in 5-D, far apart.
    fn clustered_points() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut state = 77u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.6
        };
        for c in 0..2 {
            for _ in 0..10 {
                let base = c as f64 * 20.0;
                rows.push(vec![
                    base + noise(),
                    noise(),
                    noise(),
                    base + noise(),
                    noise(),
                ]);
                labels.push(c);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), labels)
    }

    #[test]
    fn preserves_cluster_separation() {
        let (points, labels) = clustered_points();
        let opts = TsneOptions {
            n_iters: 400,
            perplexity: 4.0,
            ..Default::default()
        };
        let emb = tsne(&points, &opts);
        assert_eq!(emb.shape(), (20, 2));
        assert!(emb.is_finite());

        // Mean intra-cluster distance must be well below inter-cluster.
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        for i in 0..20 {
            for j in i + 1..20 {
                let d = euclidean_distance_sq(emb.row(i), emb.row(j)).sqrt();
                if labels[i] == labels[j] {
                    intra.0 += d;
                    intra.1 += 1;
                } else {
                    inter.0 += d;
                    inter.1 += 1;
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f64;
        let inter_mean = inter.0 / inter.1 as f64;
        assert!(
            inter_mean > 2.0 * intra_mean,
            "inter {inter_mean} vs intra {intra_mean}"
        );
    }

    #[test]
    fn conditional_probs_hit_target_perplexity() {
        // A ring of equidistant-ish points: check entropy calibration.
        let d2_row: Vec<f64> = (0..20)
            .map(|j| if j == 3 { 0.0 } else { (j as f64 + 1.0) * 0.7 })
            .collect();
        let target = 6.0;
        let probs = conditional_probs(&d2_row, 3, target);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(probs[3], 0.0);
        let entropy: f64 = -probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>();
        assert!(
            (entropy.exp() - target).abs() < 0.05,
            "effective perplexity {}",
            entropy.exp()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (points, _) = clustered_points();
        let opts = TsneOptions {
            n_iters: 100,
            perplexity: 4.0,
            ..Default::default()
        };
        let a = tsne(&points, &opts);
        let b = tsne(&points, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_centered() {
        let (points, _) = clustered_points();
        let opts = TsneOptions {
            n_iters: 50,
            perplexity: 4.0,
            ..Default::default()
        };
        let emb = tsne(&points, &opts);
        for k in 0..2 {
            let mean: f64 = (0..20).map(|i| emb.get(i, k)).sum::<f64>() / 20.0;
            assert!(mean.abs() < 1e-9, "dim {k} mean {mean}");
        }
    }

    #[test]
    #[should_panic(expected = "perplexity must be in")]
    fn rejects_perplexity_above_n() {
        let points = Matrix::zeros(5, 3);
        tsne(
            &points,
            &TsneOptions {
                perplexity: 10.0,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn rejects_too_few_points() {
        let points = Matrix::zeros(2, 3);
        tsne(
            &points,
            &TsneOptions {
                perplexity: 1.0,
                ..Default::default()
            },
        );
    }
}
