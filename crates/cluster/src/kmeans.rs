//! Lloyd's k-means with k-means++ initialization.

use hlm_linalg::dist::sample_categorical;
use hlm_linalg::vector::euclidean_distance_sq;
use hlm_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// k-means options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KmeansOptions {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when the total centroid movement falls below this.
    pub tol: f64,
    /// RNG seed (k-means++ seeding and empty-cluster reseeding).
    pub seed: u64,
}

impl KmeansOptions {
    /// Sensible defaults for the given `k`.
    pub fn new(k: usize) -> Self {
        KmeansOptions {
            k,
            max_iters: 100,
            tol: 1e-7,
            seed: 42,
        }
    }
}

/// A k-means clustering result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KmeansResult {
    /// `k x dim` centroid matrix.
    pub centroids: Matrix,
    /// Cluster index of every input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroids.
    pub inertia: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

/// Points per data-parallel assignment chunk. Fixed so chunk boundaries (and
/// the inertia reduction order) depend on the data alone, never the thread
/// count.
const ASSIGN_CHUNK: usize = 64;

/// Index and squared distance of the centroid nearest to `point`.
fn nearest_centroid(point: &[f64], centroids: &Matrix) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for c in 0..centroids.rows() {
        let d = euclidean_distance_sq(point, centroids.row(c));
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Runs k-means on the rows of `points`.
///
/// # Panics
/// Panics if `k == 0` or `k > n` or `points` is empty.
pub fn kmeans(points: &Matrix, opts: &KmeansOptions) -> KmeansResult {
    let n = points.rows();
    let k = opts.k;
    assert!(n > 0, "no points to cluster");
    assert!(k >= 1, "k must be at least 1");
    assert!(k <= n, "k = {k} exceeds the number of points {n}");
    let dim = points.cols();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // k-means++ seeding.
    let mut centroids = Matrix::zeros(k, dim);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(points.row(first));
    let mut d2: Vec<f64> = (0..n)
        .map(|i| euclidean_distance_sq(points.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = d2.iter().sum();
        let next = if total > 0.0 {
            sample_categorical(&mut rng, &d2)
        } else {
            rng.gen_range(0..n) // all points identical; any choice works
        };
        centroids.row_mut(c).copy_from_slice(points.row(next));
        for (i, d) in d2.iter_mut().enumerate() {
            let nd = euclidean_distance_sq(points.row(i), centroids.row(c));
            if nd < *d {
                *d = nd;
            }
        }
    }

    let pool = hlm_par::Pool::global();
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        // Assignment step: data-parallel over fixed point chunks. Every
        // write is independent, so the labels are thread-count invariant.
        {
            let centroids = &centroids;
            hlm_par::par_for_each_init(
                &pool,
                &mut assignments,
                ASSIGN_CHUNK,
                |_| (),
                |_, c, block| {
                    let lo = c * ASSIGN_CHUNK;
                    for (off, a) in block.iter_mut().enumerate() {
                        *a = nearest_centroid(points.row(lo + off), centroids).0;
                    }
                },
            );
        }
        // Update step.
        let mut sums = Matrix::zeros(k, dim);
        let mut counts = vec![0usize; k];
        for (i, &a) in assignments.iter().enumerate() {
            counts[a] += 1;
            for (s, &p) in sums.row_mut(a).iter_mut().zip(points.row(i)) {
                *s += p;
            }
        }
        let mut movement = 0.0;
        for (c, &count) in counts.iter().enumerate().take(k) {
            if count == 0 {
                // Empty cluster: reseed at the point farthest from its
                // centroid.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da =
                            euclidean_distance_sq(points.row(a), centroids.row(assignments[a]));
                        let db =
                            euclidean_distance_sq(points.row(b), centroids.row(assignments[b]));
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .expect("n > 0");
                movement += euclidean_distance_sq(centroids.row(c), points.row(far)).sqrt();
                centroids.row_mut(c).copy_from_slice(points.row(far));
                continue;
            }
            let inv = 1.0 / count as f64;
            let new_row: Vec<f64> = sums.row(c).iter().map(|&s| s * inv).collect();
            movement += euclidean_distance_sq(centroids.row(c), &new_row).sqrt();
            centroids.row_mut(c).copy_from_slice(&new_row);
        }
        if movement < opts.tol {
            break;
        }
    }

    // Final assignment against the last centroids; per-chunk inertia sums
    // are folded in chunk order so inertia is thread-count invariant.
    let n_chunks = hlm_par::chunk_count(n, ASSIGN_CHUNK);
    let parts = {
        let centroids = &centroids;
        pool.run(n_chunks, |c| {
            let (lo, hi) = hlm_par::chunk_bounds(n, ASSIGN_CHUNK, c);
            let mut block = Vec::with_capacity(hi - lo);
            let mut part = 0.0;
            for i in lo..hi {
                let (best, best_d) = nearest_centroid(points.row(i), centroids);
                block.push(best);
                part += best_d;
            }
            (block, part)
        })
    };
    let mut inertia = 0.0;
    for (c, (block, part)) in parts.into_iter().enumerate() {
        let lo = c * ASSIGN_CHUNK;
        assignments[lo..lo + block.len()].copy_from_slice(&block);
        inertia += part;
    }
    KmeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tight blobs at (0,0), (10,0), (0,10).
    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let mut state = 12345u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.8
        };
        for &(cx, cy) in &centers {
            for _ in 0..20 {
                rows.push(vec![cx + noise(), cy + noise()]);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let points = blobs();
        let res = kmeans(&points, &KmeansOptions::new(3));
        // Points 0..20, 20..40, 40..60 must each share one label.
        for group in 0..3 {
            let label = res.assignments[group * 20];
            for i in group * 20..(group + 1) * 20 {
                assert_eq!(res.assignments[i], label, "point {i} strayed");
            }
        }
        assert!(res.inertia < 60.0 * 0.5, "inertia {}", res.inertia);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let points = blobs();
        let i1 = kmeans(&points, &KmeansOptions::new(1)).inertia;
        let i3 = kmeans(&points, &KmeansOptions::new(3)).inertia;
        let i10 = kmeans(&points, &KmeansOptions::new(10)).inertia;
        assert!(i3 < i1 * 0.2);
        assert!(i10 <= i3);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let points = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 0.0]]);
        let res = kmeans(&points, &KmeansOptions::new(3));
        assert!(res.inertia < 1e-12);
        let mut labels = res.assignments.clone();
        labels.sort_unstable();
        assert_eq!(labels, vec![0, 1, 2]);
    }

    #[test]
    fn deterministic_given_seed() {
        let points = blobs();
        let a = kmeans(&points, &KmeansOptions::new(3));
        let b = kmeans(&points, &KmeansOptions::new(3));
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn identical_points_are_handled() {
        let row: &[f64] = &[1.0, 2.0];
        let points = Matrix::from_rows(&[row; 5]);
        let res = kmeans(&points, &KmeansOptions::new(2));
        assert!(res.inertia < 1e-12);
        assert_eq!(res.assignments.len(), 5);
    }

    #[test]
    #[should_panic(expected = "exceeds the number of points")]
    fn rejects_k_above_n() {
        let points = Matrix::from_rows(&[&[0.0], &[1.0]]);
        kmeans(&points, &KmeansOptions::new(5));
    }
}
