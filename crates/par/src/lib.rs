//! Deterministic data-parallel runtime for the hidden-layer-models
//! workspace.
//!
//! Everything here is std-only: a scoped worker pool built on
//! [`std::thread::scope`] plus a small set of chunked primitives. The design
//! contract is **determinism independent of thread count**:
//!
//! * **Fixed chunk assignment** — chunk boundaries are a pure function of
//!   the data size and the chunk size, never of the worker count. The same
//!   input always produces the same chunks.
//! * **Ordered reduction** — chunk results are merged in chunk order, so
//!   floating-point accumulation follows one canonical order no matter
//!   which worker produced which chunk, or in what order they finished.
//! * **Per-chunk RNG streams** — callers derive one seed per
//!   `(master seed, iteration, chunk index)` with [`split_seed`] /
//!   [`split_seed3`], so stochastic sweeps (Gibbs sampling, BPMF draws,
//!   datagen) consume independent streams that do not depend on scheduling.
//!
//! Under this contract a run with one worker and a run with sixteen produce
//! bit-identical results; parallelism only changes wall-clock time. That is
//! what lets the parallel trainers keep the checkpoint/resume bit-identity
//! guarantees introduced with the resilience layer.
//!
//! The worker count comes from, in priority order: an explicit
//! [`Pool::new`], the process-wide [`set_threads`] override (the engine's
//! `--threads` option), the `HLM_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

/// Process-wide worker-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by [`Pool::global`]. Passing 0
/// clears the override, falling back to `HLM_THREADS` / detected
/// parallelism. This only changes how many workers execute the fixed chunk
/// schedule — results are unaffected by construction.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count [`Pool::global`] would use right now: the
/// [`set_threads`] override if set, else `HLM_THREADS` if parsable and
/// positive, else [`std::thread::available_parallelism`] (1 when detection
/// fails).
pub fn effective_threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    if let Ok(s) = std::env::var("HLM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A worker pool of a fixed size. The pool is scoped: each parallel call
/// spawns its workers inside [`std::thread::scope`] and joins them before
/// returning, so borrowed data flows into tasks without `'static` bounds
/// and a panicking task propagates to the caller.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with an explicit worker count (at least 1). Used directly by
    /// the determinism tests to pin specific counts such as 1, 2 and 7.
    ///
    /// # Panics
    /// Panics if `threads` is 0.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "pool needs at least one worker");
        Pool { threads }
    }

    /// The pool honouring the process-wide thread policy (see
    /// [`effective_threads`]).
    pub fn global() -> Self {
        Pool {
            threads: effective_threads(),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `n_tasks` independent tasks and returns their results **in task
    /// order**. Tasks are handed to workers through an atomic counter;
    /// because each result is keyed by its task index, the output is
    /// independent of which worker ran what.
    pub fn run<R, F>(&self, n_tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n_tasks == 0 {
            return Vec::new();
        }
        // Task/run counters depend only on the task count, so totals are
        // identical whichever path executes. Per-worker figures (busy time,
        // queue imbalance) are wall-clock observations and naturally vary.
        let rec = hlm_obs::global();
        rec.add("par.runs", 1);
        rec.add("par.tasks", n_tasks as u64);
        let workers = self.threads.min(n_tasks);
        if workers <= 1 {
            return (0..n_tasks).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let f = &f;
        let rec = &rec;
        let per_worker: Vec<Vec<(usize, R)>> = thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let t0 = rec.is_enabled().then(Instant::now);
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_tasks {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        if let Some(t0) = t0 {
                            rec.observe("par.worker_busy_seconds", t0.elapsed().as_secs_f64());
                            rec.observe("par.worker_tasks", local.len() as f64);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        reorder(n_tasks, per_worker)
    }
}

/// Places `(index, value)` pairs into index order.
fn reorder<R>(n: usize, batches: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in batches.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "task {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every task ran"))
        .collect()
}

/// Number of fixed-size chunks covering `len` items (`chunk` is clamped to
/// at least 1). A pure function of the data — never of the thread count.
pub fn chunk_count(len: usize, chunk: usize) -> usize {
    len.div_ceil(chunk.max(1))
}

/// Half-open item range `[lo, hi)` of chunk `i`.
pub fn chunk_bounds(len: usize, chunk: usize, i: usize) -> (usize, usize) {
    let chunk = chunk.max(1);
    let lo = i * chunk;
    (lo.min(len), ((i + 1) * chunk).min(len))
}

/// Maps fixed chunks of `items` in parallel; returns one result per chunk,
/// in chunk order. `f` receives the chunk index and the chunk slice.
pub fn par_chunks<T, R, F>(pool: &Pool, items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let n = chunk_count(items.len(), chunk);
    pool.run(n, |i| {
        let (lo, hi) = chunk_bounds(items.len(), chunk, i);
        f(i, &items[lo..hi])
    })
}

/// Maps fixed chunks in parallel, then folds the chunk results **in chunk
/// order** on the calling thread. The ordered fold pins the floating-point
/// accumulation order, so the reduction is bitwise-reproducible across
/// thread counts.
pub fn par_map_reduce<T, R, A, F, G>(
    pool: &Pool,
    items: &[T],
    chunk: usize,
    map: F,
    init: A,
    fold: G,
) -> A
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    par_chunks(pool, items, chunk, map)
        .into_iter()
        .fold(init, fold)
}

/// Mutates fixed disjoint chunks of `items` in parallel, giving each chunk
/// a fresh state built by `init(chunk_index)` — typically an RNG seeded via
/// [`split_seed3`]. Returns one result per chunk, in chunk order. Chunks
/// are pre-assigned to workers round-robin; since every chunk's work
/// depends only on its own contents, index and state, the schedule cannot
/// influence results.
pub fn par_for_each_init<T, S, R, I, F>(
    pool: &Pool,
    items: &mut [T],
    chunk: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) -> R + Sync,
{
    let len = items.len();
    let n = chunk_count(len, chunk);
    if n == 0 {
        return Vec::new();
    }
    // Same counter discipline as `Pool::run`: totals are a pure function of
    // the chunk count, identical in the serial and parallel paths.
    let rec = hlm_obs::global();
    rec.add("par.runs", 1);
    rec.add("par.tasks", n as u64);
    let workers = pool.threads.min(n);
    if workers <= 1 {
        return items
            .chunks_mut(chunk.max(1))
            .enumerate()
            .map(|(i, c)| {
                let mut state = init(i);
                f(&mut state, i, c)
            })
            .collect();
    }
    let mut assigned: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, c) in items.chunks_mut(chunk.max(1)).enumerate() {
        assigned[i % workers].push((i, c));
    }
    let init = &init;
    let f = &f;
    let rec = &rec;
    let per_worker: Vec<Vec<(usize, R)>> = thread::scope(|s| {
        let handles: Vec<_> = assigned
            .into_iter()
            .map(|work| {
                s.spawn(move || {
                    let t0 = rec.is_enabled().then(Instant::now);
                    let n_assigned = work.len();
                    let out = work
                        .into_iter()
                        .map(|(i, c)| {
                            let mut state = init(i);
                            (i, f(&mut state, i, c))
                        })
                        .collect::<Vec<_>>();
                    if let Some(t0) = t0 {
                        rec.observe("par.worker_busy_seconds", t0.elapsed().as_secs_f64());
                        rec.observe("par.worker_tasks", n_assigned as f64);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    reorder(n, per_worker)
}

/// Derives an independent stream seed from a master seed and a stream
/// index. Two SplitMix64 finalizer rounds over the mixed pair: small input
/// deltas (stream 0, 1, 2, …) land far apart, so per-chunk `StdRng`s seeded
/// from consecutive indices are statistically unrelated.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Two-level stream derivation: `(master, a, b)` → seed. Used for
/// per-sweep, per-chunk streams: `a` is the sweep/iteration, `b` the chunk
/// index.
pub fn split_seed3(master: u64, a: u64, b: u64) -> u64 {
    split_seed(split_seed(master, a), b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_exactly() {
        for len in [0usize, 1, 5, 64, 65, 1000] {
            for chunk in [1usize, 3, 64, 1000] {
                let n = chunk_count(len, chunk);
                let mut covered = 0;
                for i in 0..n {
                    let (lo, hi) = chunk_bounds(len, chunk, i);
                    assert_eq!(lo, covered, "len {len} chunk {chunk} i {i}");
                    assert!(hi > lo);
                    covered = hi;
                }
                assert_eq!(covered, len);
            }
        }
        assert_eq!(chunk_count(0, 8), 0);
    }

    #[test]
    fn run_returns_results_in_task_order() {
        for workers in [1, 2, 3, 7, 16] {
            let pool = Pool::new(workers);
            let out = pool.run(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_is_thread_count_independent() {
        let items: Vec<f64> = (0..997).map(|i| (i as f64).sin()).collect();
        let serial = par_chunks(&Pool::new(1), &items, 64, |i, c| (i, c.iter().sum::<f64>()));
        for workers in [2, 7] {
            let par = par_chunks(&Pool::new(workers), &items, 64, |i, c| {
                (i, c.iter().sum::<f64>())
            });
            assert_eq!(serial, par, "workers {workers}");
        }
    }

    #[test]
    fn par_map_reduce_folds_in_chunk_order() {
        let items: Vec<u32> = (0..100).collect();
        for workers in [1, 2, 7] {
            let order = par_map_reduce(
                &Pool::new(workers),
                &items,
                9,
                |i, _| i,
                Vec::new(),
                |mut acc: Vec<usize>, i| {
                    acc.push(i);
                    acc
                },
            );
            assert_eq!(order, (0..chunk_count(100, 9)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_for_each_init_mutates_disjoint_chunks() {
        let mut serial: Vec<u64> = vec![0; 137];
        par_for_each_init(
            &Pool::new(1),
            &mut serial,
            16,
            |i| split_seed(42, i as u64),
            |seed, _i, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = seed.wrapping_add(j as u64);
                }
            },
        );
        for workers in [2, 7] {
            let mut par: Vec<u64> = vec![0; 137];
            par_for_each_init(
                &Pool::new(workers),
                &mut par,
                16,
                |i| split_seed(42, i as u64),
                |seed, _i, chunk| {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x = seed.wrapping_add(j as u64);
                    }
                },
            );
            assert_eq!(serial, par, "workers {workers}");
        }
    }

    #[test]
    fn split_seed_separates_streams() {
        let seeds: Vec<u64> = (0..64).map(|i| split_seed(7, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "stream seeds must be distinct");
        // Consecutive streams should differ in many bits, not just the low
        // ones.
        for w in seeds.windows(2) {
            assert!((w[0] ^ w[1]).count_ones() >= 16);
        }
        assert_ne!(split_seed3(7, 1, 2), split_seed3(7, 2, 1));
    }

    #[test]
    fn set_threads_overrides_policy() {
        set_threads(5);
        assert_eq!(effective_threads(), 5);
        assert_eq!(Pool::global().threads(), 5);
        set_threads(0);
        assert!(effective_threads() >= 1);
    }

    #[test]
    fn pool_propagates_worker_panic() {
        let caught = std::panic::catch_unwind(|| {
            Pool::new(4).run(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
