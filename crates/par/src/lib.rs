//! Deterministic data-parallel runtime for the hidden-layer-models
//! workspace.
//!
//! Everything here is std-only: a lazily-initialized **persistent worker
//! pool** (workers park on a channel `recv` and are fed lifetime-erased
//! jobs; no thread is spawned per call) plus a small set of chunked
//! primitives and a work-size **cost model** that routes small inputs to
//! the serial path. The design contract is **determinism independent of
//! thread count**:
//!
//! * **Fixed chunk assignment** — chunk boundaries are a pure function of
//!   the data size and the chunk size, never of the worker count. The same
//!   input always produces the same chunks.
//! * **Ordered reduction** — chunk results are merged in chunk order, so
//!   floating-point accumulation follows one canonical order no matter
//!   which worker produced which chunk, or in what order they finished.
//! * **Per-chunk RNG streams** — callers derive one seed per
//!   `(master seed, iteration, chunk index)` with [`split_seed`] /
//!   [`split_seed3`], so stochastic sweeps (Gibbs sampling, BPMF draws,
//!   datagen) consume independent streams that do not depend on scheduling.
//!
//! Under this contract a run with one worker and a run with sixteen produce
//! bit-identical results; parallelism — and the cost model's serial
//! fallback — only change wall-clock time. That is what lets the parallel
//! trainers keep the checkpoint/resume bit-identity guarantees introduced
//! with the resilience layer.
//!
//! # Pool lifecycle
//!
//! Workers are process-global and spawned on first parallel dispatch, grown
//! on demand up to the widest width ever requested, and then reused by
//! every later call ([`Pool`] itself is a cheap `Copy` scheduling handle).
//! Between jobs they are parked inside `Receiver::recv`. [`shutdown_pool`]
//! closes the channels and joins every worker (the next dispatch respawns
//! lazily); at process exit the OS reclaims parked workers, so calling it
//! is optional. A job dispatched *from inside* a pool worker (nested
//! parallelism) runs on the serial path — same results, no risk of a
//! worker waiting on its own queue.
//!
//! # Cost model
//!
//! Spawning was free to decide when threads were scoped per call; with any
//! pool, dispatch itself has a fixed cost (wake + schedule + join
//! handshake), so parallelizing tiny inputs is a pure penalty. Callers
//! describe a call's total work with a [`Budget`] (1 unit ≈ 1 ns of serial
//! inner-loop time); the `*_budgeted` entry points compare it against
//! [`par_threshold`] — calibrated once per process from the measured
//! dispatch latency, overridable via `HLM_PAR_THRESHOLD` or
//! [`set_par_threshold`] — and fall back to the serial path when the work
//! cannot amortize the dispatch. The decision only ever picks *which
//! schedule* executes the fixed chunk plan, never what it computes.
//!
//! The worker count comes from, in priority order: an explicit
//! [`Pool::new`], the process-wide [`set_threads`] override (the engine's
//! `--threads` option), the `HLM_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`].

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Instant;

/// Process-wide worker-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by [`Pool::global`]. Passing 0
/// clears the override, falling back to `HLM_THREADS` / detected
/// parallelism. This only changes how many workers execute the fixed chunk
/// schedule — results are unaffected by construction.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count [`Pool::global`] would use right now: the
/// [`set_threads`] override if set, else `HLM_THREADS` if parsable and
/// positive, else [`std::thread::available_parallelism`] (1 when detection
/// fails).
pub fn effective_threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    if let Ok(s) = std::env::var("HLM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

/// Sentinel for "no override installed" in [`set_par_threshold`].
const THRESHOLD_UNSET: u64 = u64::MAX;

/// Multiple of the measured dispatch latency a call's work must exceed
/// before the pool engages.
const PAR_AMORTIZE: u64 = 32;

/// Calibration clamp: even on hardware where dispatch measures very cheap,
/// anything under ~1 ms of work is not worth waking workers for — and even
/// on a noisy box the threshold must not grow past the point where real
/// paper-scale sweeps (tens of ms) stay serial.
const MIN_PAR_THRESHOLD: u64 = 1_000_000;
const MAX_PAR_THRESHOLD: u64 = 16_000_000;

static THRESHOLD_OVERRIDE: AtomicU64 = AtomicU64::new(THRESHOLD_UNSET);
static CALIBRATED_THRESHOLD: OnceLock<u64> = OnceLock::new();

/// Approximate total work of one parallel call, in units of ~1 ns of serial
/// inner-loop time. The `*_budgeted` entry points compare it against
/// [`par_threshold`] and take the serial path when the work is too small to
/// amortize a pool dispatch. [`Budget::UNBOUNDED`] always engages the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    work: u64,
}

impl Budget {
    /// A budget that always engages the pool (the pre-cost-model
    /// behaviour). Used where the caller knows the work is large or has no
    /// cheap estimate.
    pub const UNBOUNDED: Budget = Budget { work: u64::MAX };

    /// A budget of `work` units (≈ nanoseconds of serial work).
    pub const fn units(work: u64) -> Self {
        Budget { work }
    }

    /// `n` items at `unit_cost` units each, saturating.
    pub fn items(n: usize, unit_cost: u64) -> Self {
        Budget {
            work: (n as u64).saturating_mul(unit_cost),
        }
    }

    /// The estimated work in units.
    pub fn work(self) -> u64 {
        self.work
    }

    /// Whether this much work should engage `workers` pool workers. A pure
    /// function of the budget and the process-wide threshold — never of
    /// scheduling — so the serial/parallel choice is reproducible.
    /// `UNBOUNDED` engages without consulting (or calibrating) the
    /// threshold.
    pub fn engages(self, workers: usize) -> bool {
        if workers <= 1 {
            return false;
        }
        if self.work == u64::MAX {
            return true;
        }
        self.work >= par_threshold()
    }
}

/// Installs (`Some(units)`) or clears (`None`) a process-wide override of
/// the parallelism threshold. With the override cleared the threshold comes
/// from `HLM_PAR_THRESHOLD` or the one-time calibration. Tests pin
/// `Some(0)` to force the parallel path and large values to force serial.
pub fn set_par_threshold(units: Option<u64>) {
    THRESHOLD_OVERRIDE.store(units.unwrap_or(THRESHOLD_UNSET), Ordering::Relaxed);
}

/// The minimum [`Budget`] work (in units) a call needs before the pool
/// engages. Priority: [`set_par_threshold`] override, `HLM_PAR_THRESHOLD`,
/// then a one-time calibration that measures the pool's empty-job dispatch
/// latency and multiplies it by an amortization factor (clamped to
/// `[1e6, 16e6]` units).
pub fn par_threshold() -> u64 {
    let over = THRESHOLD_OVERRIDE.load(Ordering::Relaxed);
    if over != THRESHOLD_UNSET {
        return over;
    }
    if let Ok(s) = std::env::var("HLM_PAR_THRESHOLD") {
        if let Ok(n) = s.trim().parse::<u64>() {
            return n;
        }
    }
    *CALIBRATED_THRESHOLD.get_or_init(calibrate_threshold)
}

/// Measures the round-trip latency of an empty two-slot dispatch (best of a
/// few rounds, so scheduler noise inflates nothing) and converts it into a
/// work threshold.
fn calibrate_threshold() -> u64 {
    let mut best = u64::MAX;
    for _ in 0..16 {
        let t0 = Instant::now();
        dispatch(2, &|_slot| {});
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best.saturating_mul(PAR_AMORTIZE)
        .clamp(MIN_PAR_THRESHOLD, MAX_PAR_THRESHOLD)
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

thread_local! {
    /// Set for the lifetime of a pool worker thread; a dispatch attempted
    /// from such a thread runs serially instead (nested parallelism).
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn in_pool_worker() -> bool {
    IN_POOL_WORKER.with(|c| c.get())
}

/// One parallel call in flight. `body` is the caller's slot closure with
/// its lifetime erased; the dispatching thread blocks until `remaining`
/// background slots have finished, so the borrow outlives every use.
struct Job {
    body: &'static (dyn Fn(usize) + Sync),
    state: Mutex<JobState>,
    cv: Condvar,
}

struct JobState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Channel end a background worker receives `(job, slot)` assignments on.
type JobSender = Sender<(Arc<Job>, usize)>;

/// One worker slot's assigned `(chunk index, chunk)` pairs plus the
/// per-chunk results it produced, in assignment order.
type SlotWork<'a, U, R> = Mutex<(Vec<(usize, &'a mut U)>, Vec<(usize, R)>)>;

impl Job {
    /// # Safety
    /// The caller must not return (or otherwise invalidate `body`) until
    /// the job's `remaining` count has reached zero.
    unsafe fn new(body: &(dyn Fn(usize) + Sync), remaining: usize) -> Job {
        let body: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
        Job {
            body,
            state: Mutex::new(JobState {
                remaining,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }
}

/// The process-global persistent worker set, grown lazily and reused by
/// every [`Pool`] handle.
struct Runtime {
    set: Mutex<WorkerSet>,
    /// Slot messages sent but not yet picked up by a worker — the pool's
    /// task-queue depth, observed into a histogram at dispatch time.
    inflight: AtomicUsize,
}

#[derive(Default)]
struct WorkerSet {
    senders: Vec<Sender<(Arc<Job>, usize)>>,
    handles: Vec<thread::JoinHandle<()>>,
}

fn runtime() -> &'static Runtime {
    static RUNTIME: OnceLock<Runtime> = OnceLock::new();
    RUNTIME.get_or_init(|| Runtime {
        set: Mutex::new(WorkerSet::default()),
        inflight: AtomicUsize::new(0),
    })
}

/// Parked-worker main loop: block on `recv`, run the slot, report
/// completion (and any panic payload) through the job, park again. Exits
/// when the sender side is dropped by [`shutdown_pool`].
fn worker_loop(rx: Receiver<(Arc<Job>, usize)>) {
    IN_POOL_WORKER.with(|c| c.set(true));
    while let Ok((job, slot)) = rx.recv() {
        runtime().inflight.fetch_sub(1, Ordering::Relaxed);
        let result = catch_unwind(AssertUnwindSafe(|| (job.body)(slot)));
        let mut st = job.state.lock().expect("job state poisoned");
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            job.cv.notify_all();
        }
    }
}

/// Ensures at least `n` background workers exist; returns their senders and
/// how many had to be spawned (0 = a fully warm pool was reused).
fn ensure_workers(n: usize) -> (Vec<JobSender>, usize) {
    let rt = runtime();
    let mut set = rt.set.lock().expect("worker set poisoned");
    let mut spawned = 0;
    while set.senders.len() < n {
        let (tx, rx) = channel();
        let idx = set.senders.len();
        let handle = thread::Builder::new()
            .name(format!("hlm-par-worker-{idx}"))
            .spawn(move || worker_loop(rx))
            .expect("failed to spawn pool worker");
        set.senders.push(tx);
        set.handles.push(handle);
        spawned += 1;
    }
    (set.senders[..n].to_vec(), spawned)
}

/// Runs `body(slot)` for every slot in `0..slots`: slot 0 inline on the
/// calling thread, the rest on parked pool workers. Blocks until every slot
/// has finished, then re-raises the first panic (caller's slot wins).
fn dispatch(slots: usize, body: &(dyn Fn(usize) + Sync)) {
    debug_assert!(slots >= 2, "dispatch needs at least one background slot");
    let rec = hlm_obs::global();
    let background = slots - 1;
    let (senders, spawned) = ensure_workers(background);
    if spawned == 0 {
        rec.add("par.pool_reused", 1);
    } else {
        rec.add("par.pool_spawned", spawned as u64);
    }
    let rt = runtime();
    let depth = rt.inflight.fetch_add(background, Ordering::Relaxed) + background;
    rec.observe("par.queue_depth", depth as f64);
    // SAFETY: this function does not return until `remaining` is zero, so
    // `body` outlives every worker dereference.
    let job = Arc::new(unsafe { Job::new(body, background) });
    for (i, tx) in senders.iter().enumerate() {
        tx.send((Arc::clone(&job), i + 1))
            .expect("pool worker channel closed mid-dispatch");
    }
    let caller = catch_unwind(AssertUnwindSafe(|| body(0)));
    let mut st = job.state.lock().expect("job state poisoned");
    while st.remaining > 0 {
        st = job.cv.wait(st).expect("job state poisoned");
    }
    let worker_panic = st.panic.take();
    drop(st);
    if let Err(payload) = caller {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// Shuts the persistent pool down cleanly: closes every task channel and
/// joins the parked workers. Must only be called while no parallel call is
/// in flight. The next parallel dispatch lazily respawns workers, so this
/// is optional housekeeping (at process exit the OS reclaims parked
/// threads) — useful for tests and for embedders that audit thread leaks.
pub fn shutdown_pool() {
    let rt = runtime();
    let mut set = rt.set.lock().expect("worker set poisoned");
    set.senders.clear();
    for handle in set.handles.drain(..) {
        let _ = handle.join();
    }
}

/// Number of live background pool workers (diagnostic; used by tests to
/// assert reuse and clean shutdown).
pub fn pool_workers() -> usize {
    runtime()
        .set
        .lock()
        .expect("worker set poisoned")
        .senders
        .len()
}

/// A scheduling handle of a fixed logical width. All handles share the one
/// process-global persistent worker set; `threads` only bounds how many
/// slots a call may occupy, so the handle stays a trivial `Copy` value.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool handle with an explicit worker count (at least 1). Used
    /// directly by the determinism tests to pin specific counts such as 1,
    /// 2 and 7.
    ///
    /// # Panics
    /// Panics if `threads` is 0.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "pool needs at least one worker");
        Pool { threads }
    }

    /// The pool honouring the process-wide thread policy (see
    /// [`effective_threads`]).
    pub fn global() -> Self {
        Pool {
            threads: effective_threads(),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `n_tasks` independent tasks and returns their results **in task
    /// order**, always engaging the pool when more than one worker fits
    /// (the [`Budget::UNBOUNDED`] cost). Tasks are handed to slots through
    /// an atomic counter; because each result is keyed by its task index,
    /// the output is independent of which worker ran what.
    pub fn run<R, F>(&self, n_tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run_budgeted(Budget::UNBOUNDED, n_tasks, f)
    }

    /// [`Pool::run`] with a cost model: when `budget` is below
    /// [`par_threshold`] (or the call is nested inside a pool worker) the
    /// tasks run serially on the calling thread — same results, no dispatch
    /// overhead.
    pub fn run_budgeted<R, F>(&self, budget: Budget, n_tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n_tasks == 0 {
            return Vec::new();
        }
        // Task/run counters depend only on the task count, so totals are
        // identical whichever path executes. Per-worker figures (busy time,
        // queue depth, pool reuse) are scheduling observations and
        // naturally vary.
        let rec = hlm_obs::global();
        rec.add("par.runs", 1);
        rec.add("par.tasks", n_tasks as u64);
        let workers = self.threads.min(n_tasks);
        if workers <= 1 || in_pool_worker() || !budget.engages(workers) {
            return (0..n_tasks).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Vec<(usize, R)>>> =
            (0..workers).map(|_| Mutex::new(Vec::new())).collect();
        let rec = &rec;
        let f = &f;
        let body = |slot: usize| {
            let t0 = rec.is_enabled().then(Instant::now);
            let mut local = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                local.push((i, f(i)));
            }
            if let Some(t0) = t0 {
                rec.observe("par.worker_busy_seconds", t0.elapsed().as_secs_f64());
                rec.observe("par.worker_tasks", local.len() as f64);
            }
            *results[slot].lock().expect("slot results poisoned") = local;
        };
        dispatch(workers, &body);
        let per_worker: Vec<Vec<(usize, R)>> = results
            .into_iter()
            .map(|m| m.into_inner().expect("slot results poisoned"))
            .collect();
        reorder(n_tasks, per_worker)
    }
}

/// Places `(index, value)` pairs into index order.
fn reorder<R>(n: usize, batches: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in batches.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "task {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every task ran"))
        .collect()
}

/// Number of fixed-size chunks covering `len` items (`chunk` is clamped to
/// at least 1). A pure function of the data — never of the thread count.
pub fn chunk_count(len: usize, chunk: usize) -> usize {
    len.div_ceil(chunk.max(1))
}

/// Half-open item range `[lo, hi)` of chunk `i`.
pub fn chunk_bounds(len: usize, chunk: usize, i: usize) -> (usize, usize) {
    let chunk = chunk.max(1);
    let lo = i * chunk;
    (lo.min(len), ((i + 1) * chunk).min(len))
}

/// Maps fixed chunks of `items` in parallel; returns one result per chunk,
/// in chunk order. `f` receives the chunk index and the chunk slice.
pub fn par_chunks<T, R, F>(pool: &Pool, items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    par_chunks_budgeted(pool, Budget::UNBOUNDED, items, chunk, f)
}

/// [`par_chunks`] with a cost model (see [`Pool::run_budgeted`]).
pub fn par_chunks_budgeted<T, R, F>(
    pool: &Pool,
    budget: Budget,
    items: &[T],
    chunk: usize,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let n = chunk_count(items.len(), chunk);
    pool.run_budgeted(budget, n, |i| {
        let (lo, hi) = chunk_bounds(items.len(), chunk, i);
        f(i, &items[lo..hi])
    })
}

/// Maps fixed chunks in parallel, then folds the chunk results **in chunk
/// order** on the calling thread. The ordered fold pins the floating-point
/// accumulation order, so the reduction is bitwise-reproducible across
/// thread counts.
pub fn par_map_reduce<T, R, A, F, G>(
    pool: &Pool,
    items: &[T],
    chunk: usize,
    map: F,
    init: A,
    fold: G,
) -> A
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    par_map_reduce_budgeted(pool, Budget::UNBOUNDED, items, chunk, map, init, fold)
}

/// [`par_map_reduce`] with a cost model (see [`Pool::run_budgeted`]).
pub fn par_map_reduce_budgeted<T, R, A, F, G>(
    pool: &Pool,
    budget: Budget,
    items: &[T],
    chunk: usize,
    map: F,
    init: A,
    fold: G,
) -> A
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    par_chunks_budgeted(pool, budget, items, chunk, map)
        .into_iter()
        .fold(init, fold)
}

/// Mutates fixed disjoint chunks of `items` in parallel, giving each chunk
/// a fresh state built by `init(chunk_index)` — typically an RNG seeded via
/// [`split_seed3`], or a reusable scratch buffer sized once per slot.
/// Returns one result per chunk, in chunk order. Chunks are pre-assigned to
/// slots round-robin; since every chunk's work depends only on its own
/// contents, index and state, the schedule cannot influence results.
pub fn par_for_each_init<T, S, R, I, F>(
    pool: &Pool,
    items: &mut [T],
    chunk: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) -> R + Sync,
{
    par_for_each_init_budgeted(pool, Budget::UNBOUNDED, items, chunk, init, f)
}

/// [`par_for_each_init`] with a cost model (see [`Pool::run_budgeted`]).
/// `init(i)` runs once per **chunk** (it keys RNG streams); for scratch
/// buffers that should be built once and reused across chunks, see
/// [`par_for_each_scratch`].
pub fn par_for_each_init_budgeted<T, S, R, I, F>(
    pool: &Pool,
    budget: Budget,
    items: &mut [T],
    chunk: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) -> R + Sync,
{
    let len = items.len();
    let n = chunk_count(len, chunk);
    if n == 0 {
        return Vec::new();
    }
    // Same counter discipline as `Pool::run`: totals are a pure function of
    // the chunk count, identical in the serial and parallel paths.
    let rec = hlm_obs::global();
    rec.add("par.runs", 1);
    rec.add("par.tasks", n as u64);
    let workers = pool.threads.min(n);
    if workers <= 1 || in_pool_worker() || !budget.engages(workers) {
        return items
            .chunks_mut(chunk.max(1))
            .enumerate()
            .map(|(i, c)| {
                let mut state = init(i);
                f(&mut state, i, c)
            })
            .collect();
    }
    let mut assigned: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, c) in items.chunks_mut(chunk.max(1)).enumerate() {
        assigned[i % workers].push((i, c));
    }
    let slots: Vec<SlotWork<'_, [T], R>> = assigned
        .into_iter()
        .map(|work| Mutex::new((work, Vec::new())))
        .collect();
    let rec = &rec;
    let init = &init;
    let f = &f;
    let body = |slot: usize| {
        let t0 = rec.is_enabled().then(Instant::now);
        let mut guard = slots[slot].lock().expect("slot work poisoned");
        let (work, out) = &mut *guard;
        let n_assigned = work.len();
        for (i, c) in std::mem::take(work) {
            let mut state = init(i);
            out.push((i, f(&mut state, i, c)));
        }
        if let Some(t0) = t0 {
            rec.observe("par.worker_busy_seconds", t0.elapsed().as_secs_f64());
            rec.observe("par.worker_tasks", n_assigned as f64);
        }
    };
    dispatch(workers, &body);
    let per_worker: Vec<Vec<(usize, R)>> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot work poisoned").1)
        .collect();
    reorder(n, per_worker)
}

/// Processes each element of `items` independently (one element = one work
/// unit, pre-assigned round-robin), giving every **slot** a single scratch
/// value built by `init()` that is reused across all the elements the slot
/// processes — the allocation-free-inner-loop primitive: buffers are sized
/// once per slot, not once per chunk. Returns one result per element, in
/// element order.
///
/// **Determinism caveat:** which elements share a scratch instance depends
/// on the schedule width, so `f` must fully overwrite whatever scratch
/// state it reads — results must be a pure function of `(element index,
/// element)`, with the scratch acting only as a buffer arena. RNG streams
/// must be derived inside `f` from the element index (via [`split_seed3`]),
/// never stored in the scratch.
pub fn par_for_each_scratch<T, S, R, I, F>(
    pool: &Pool,
    budget: Budget,
    items: &mut [T],
    init: I,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let rec = hlm_obs::global();
    rec.add("par.runs", 1);
    rec.add("par.tasks", n as u64);
    let workers = pool.threads.min(n);
    if workers <= 1 || in_pool_worker() || !budget.engages(workers) {
        let mut scratch = init();
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(&mut scratch, i, item))
            .collect();
    }
    let mut assigned: Vec<Vec<(usize, &mut T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.iter_mut().enumerate() {
        assigned[i % workers].push((i, item));
    }
    let slots: Vec<SlotWork<'_, T, R>> = assigned
        .into_iter()
        .map(|work| Mutex::new((work, Vec::new())))
        .collect();
    let rec = &rec;
    let init = &init;
    let f = &f;
    let body = |slot: usize| {
        let t0 = rec.is_enabled().then(Instant::now);
        let mut guard = slots[slot].lock().expect("slot work poisoned");
        let (work, out) = &mut *guard;
        let n_assigned = work.len();
        let mut scratch = init();
        for (i, item) in std::mem::take(work) {
            out.push((i, f(&mut scratch, i, item)));
        }
        if let Some(t0) = t0 {
            rec.observe("par.worker_busy_seconds", t0.elapsed().as_secs_f64());
            rec.observe("par.worker_tasks", n_assigned as f64);
        }
    };
    dispatch(workers, &body);
    let per_worker: Vec<Vec<(usize, R)>> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot work poisoned").1)
        .collect();
    reorder(n, per_worker)
}

/// Derives an independent stream seed from a master seed and a stream
/// index. Two SplitMix64 finalizer rounds over the mixed pair: small input
/// deltas (stream 0, 1, 2, …) land far apart, so per-chunk `StdRng`s seeded
/// from consecutive indices are statistically unrelated.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Two-level stream derivation: `(master, a, b)` → seed. Used for
/// per-sweep, per-chunk streams: `a` is the sweep/iteration, `b` the chunk
/// index.
pub fn split_seed3(master: u64, a: u64, b: u64) -> u64 {
    split_seed(split_seed(master, a), b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pool, the threshold override and the worker set are all
    /// process-global, and the default test harness runs tests
    /// concurrently — serialize every test that touches them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        for len in [0usize, 1, 5, 64, 65, 1000] {
            for chunk in [1usize, 3, 64, 1000] {
                let n = chunk_count(len, chunk);
                let mut covered = 0;
                for i in 0..n {
                    let (lo, hi) = chunk_bounds(len, chunk, i);
                    assert_eq!(lo, covered, "len {len} chunk {chunk} i {i}");
                    assert!(hi > lo);
                    covered = hi;
                }
                assert_eq!(covered, len);
            }
        }
        assert_eq!(chunk_count(0, 8), 0);
    }

    #[test]
    fn run_returns_results_in_task_order() {
        let _g = lock();
        for workers in [1, 2, 3, 7, 16] {
            let pool = Pool::new(workers);
            let out = pool.run(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_is_thread_count_independent() {
        let _g = lock();
        let items: Vec<f64> = (0..997).map(|i| (i as f64).sin()).collect();
        let serial = par_chunks(&Pool::new(1), &items, 64, |i, c| (i, c.iter().sum::<f64>()));
        for workers in [2, 7] {
            let par = par_chunks(&Pool::new(workers), &items, 64, |i, c| {
                (i, c.iter().sum::<f64>())
            });
            assert_eq!(serial, par, "workers {workers}");
        }
    }

    #[test]
    fn par_map_reduce_folds_in_chunk_order() {
        let _g = lock();
        let items: Vec<u32> = (0..100).collect();
        for workers in [1, 2, 7] {
            let order = par_map_reduce(
                &Pool::new(workers),
                &items,
                9,
                |i, _| i,
                Vec::new(),
                |mut acc: Vec<usize>, i| {
                    acc.push(i);
                    acc
                },
            );
            assert_eq!(order, (0..chunk_count(100, 9)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_for_each_init_mutates_disjoint_chunks() {
        let _g = lock();
        let mut serial: Vec<u64> = vec![0; 137];
        par_for_each_init(
            &Pool::new(1),
            &mut serial,
            16,
            |i| split_seed(42, i as u64),
            |seed, _i, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = seed.wrapping_add(j as u64);
                }
            },
        );
        for workers in [2, 7] {
            let mut par: Vec<u64> = vec![0; 137];
            par_for_each_init(
                &Pool::new(workers),
                &mut par,
                16,
                |i| split_seed(42, i as u64),
                |seed, _i, chunk| {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x = seed.wrapping_add(j as u64);
                    }
                },
            );
            assert_eq!(serial, par, "workers {workers}");
        }
    }

    #[test]
    fn par_for_each_scratch_reuses_one_buffer_per_slot() {
        let _g = lock();
        // Scratch identity: count how many times init() ran. On the serial
        // path exactly once; on the parallel path at most one per slot.
        for workers in [1usize, 2, 7] {
            let inits = AtomicUsize::new(0);
            let mut items: Vec<u64> = (0..23).collect();
            let out = par_for_each_scratch(
                &Pool::new(workers),
                Budget::UNBOUNDED,
                &mut items,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    vec![0u64; 4]
                },
                |scratch, i, item| {
                    // Fully overwrite the scratch before reading it, as the
                    // contract demands.
                    scratch[0] = *item * 3;
                    *item = scratch[0];
                    i as u64 + scratch[0]
                },
            );
            let expect: Vec<u64> = (0..23).map(|i| i + i * 3).collect();
            assert_eq!(out, expect, "workers {workers}");
            assert_eq!(items, (0..23).map(|i| i * 3).collect::<Vec<_>>());
            assert!(inits.load(Ordering::Relaxed) <= workers.min(23));
        }
    }

    #[test]
    fn split_seed_separates_streams() {
        let seeds: Vec<u64> = (0..64).map(|i| split_seed(7, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "stream seeds must be distinct");
        // Consecutive streams should differ in many bits, not just the low
        // ones.
        for w in seeds.windows(2) {
            assert!((w[0] ^ w[1]).count_ones() >= 16);
        }
        assert_ne!(split_seed3(7, 1, 2), split_seed3(7, 2, 1));
    }

    #[test]
    fn set_threads_overrides_policy() {
        let _g = lock();
        set_threads(5);
        assert_eq!(effective_threads(), 5);
        assert_eq!(Pool::global().threads(), 5);
        set_threads(0);
        assert!(effective_threads() >= 1);
    }

    #[test]
    fn pool_propagates_worker_panic() {
        let _g = lock();
        let caught = std::panic::catch_unwind(|| {
            Pool::new(4).run(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
        // The pool must stay usable after a panicked job.
        assert_eq!(Pool::new(4).run(4, |i| i + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn workers_persist_across_calls() {
        let _g = lock();
        let pool = Pool::new(3);
        let _ = pool.run(8, |i| i);
        let after_first = pool_workers();
        assert!(after_first >= 2, "background workers should be live");
        let _ = pool.run(8, |i| i);
        assert_eq!(
            pool_workers(),
            after_first,
            "second run must reuse, not respawn"
        );
    }

    #[test]
    fn cost_model_takes_serial_path_for_small_budgets() {
        let _g = lock();
        let main = thread::current().id();
        set_par_threshold(Some(1_000_000));
        // Work far below the threshold: every task runs on the caller.
        let ids = Pool::new(4).run_budgeted(Budget::units(10), 8, |_| thread::current().id());
        assert!(
            ids.iter().all(|id| *id == main),
            "small budget must stay serial"
        );
        let mut items = vec![0u8; 64];
        let chunk_threads = par_for_each_init_budgeted(
            &Pool::new(4),
            Budget::units(10),
            &mut items,
            8,
            |_| (),
            |_, _, _| thread::current().id(),
        );
        assert!(chunk_threads.iter().all(|id| *id == main));
        set_par_threshold(None);
    }

    #[test]
    fn nested_dispatch_runs_serially_without_deadlock() {
        let _g = lock();
        let out = Pool::new(3).run(4, |i| {
            // A parallel call from inside a pool worker must not wait on
            // its own queue; it degrades to the serial path.
            Pool::new(3).run(3, move |j| i * 10 + j)
        });
        let expect: Vec<Vec<usize>> = (0..4)
            .map(|i| (0..3).map(|j| i * 10 + j).collect())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn shutdown_then_reuse_respawns_lazily() {
        let _g = lock();
        let _ = Pool::new(2).run(4, |i| i);
        shutdown_pool();
        assert_eq!(pool_workers(), 0);
        assert_eq!(Pool::new(2).run(3, |i| i * 2), vec![0, 2, 4]);
        assert!(pool_workers() >= 1);
    }

    #[test]
    fn budget_engage_rules() {
        let _g = lock();
        set_par_threshold(Some(500));
        assert!(!Budget::units(499).engages(4));
        assert!(Budget::units(500).engages(4));
        assert!(!Budget::units(500).engages(1), "one worker never engages");
        assert!(Budget::UNBOUNDED.engages(2));
        assert_eq!(Budget::items(10, 60).work(), 600);
        set_par_threshold(None);
    }
}
