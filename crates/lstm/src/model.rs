//! The recurrent language model: embedding → stacked LSTM (or GRU) layers
//! (+ dropout on non-recurrent connections) → softmax over the token
//! alphabet.

use crate::cell::{CellCache, LstmCell};
use crate::gru::{GruCache, GruCell};
use crate::param::Param;
use hlm_linalg::special::softmax_in_place;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Recurrent cell family. The paper's main model is the LSTM; GRUs are the
/// simpler alternative it discusses in Section 3.4, available here for the
/// architecture ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CellKind {
    /// Long Short-Term Memory (the paper's model).
    #[default]
    Lstm,
    /// Gated Recurrent Unit.
    Gru,
}

/// Model architecture. The paper varies `n_layers ∈ {1,2,3}` and
/// `hidden_size ∈ {10,100,200,300}`; the embedding size equals the hidden
/// size ("the number of nodes per layer corresponds to the product embedding
/// size").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmConfig {
    /// Number of product categories `M` (token alphabet adds BOS and EOS).
    pub vocab_size: usize,
    /// Hidden units per layer == embedding size.
    pub hidden_size: usize,
    /// Number of stacked LSTM layers.
    pub n_layers: usize,
    /// Dropout probability on non-recurrent connections (Zaremba et al.).
    pub dropout: f64,
    /// Recurrent cell family (defaults to LSTM).
    #[serde(default)]
    pub cell: CellKind,
}

impl Default for LstmConfig {
    fn default() -> Self {
        LstmConfig {
            vocab_size: 38,
            hidden_size: 100,
            n_layers: 1,
            dropout: 0.2,
            cell: CellKind::Lstm,
        }
    }
}

/// One recurrent layer, dispatching on the cell family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RnnLayer {
    /// An LSTM layer.
    Lstm(LstmCell),
    /// A GRU layer.
    Gru(GruCell),
}

/// Per-timestep cache, matching the layer's cell family.
#[derive(Debug, Clone)]
pub enum RnnCache {
    /// LSTM cache.
    Lstm(CellCache),
    /// GRU cache.
    Gru(GruCache),
}

impl RnnLayer {
    fn new<R: Rng + ?Sized>(kind: CellKind, rng: &mut R, h: usize) -> Self {
        match kind {
            CellKind::Lstm => RnnLayer::Lstm(LstmCell::new(rng, h, h)),
            CellKind::Gru => RnnLayer::Gru(GruCell::new(rng, h, h)),
        }
    }

    /// Scalar parameter count of this layer.
    pub fn parameter_count(&self) -> usize {
        match self {
            RnnLayer::Lstm(c) => c.parameter_count(),
            RnnLayer::Gru(c) => c.parameter_count(),
        }
    }

    /// The layer as an LSTM cell, if it is one.
    pub fn as_lstm(&self) -> Option<&LstmCell> {
        match self {
            RnnLayer::Lstm(c) => Some(c),
            RnnLayer::Gru(_) => None,
        }
    }

    /// The layer as an LSTM cell, mutably.
    pub fn as_lstm_mut(&mut self) -> Option<&mut LstmCell> {
        match self {
            RnnLayer::Lstm(c) => Some(c),
            RnnLayer::Gru(_) => None,
        }
    }

    fn params_mut(&mut self) -> [&mut Param; 3] {
        match self {
            RnnLayer::Lstm(c) => [&mut c.w, &mut c.u, &mut c.b],
            RnnLayer::Gru(c) => [&mut c.w, &mut c.u, &mut c.b],
        }
    }

    fn params(&self) -> [&Param; 3] {
        match self {
            RnnLayer::Lstm(c) => [&c.w, &c.u, &c.b],
            RnnLayer::Gru(c) => [&c.w, &c.u, &c.b],
        }
    }

    /// Forward step. GRU layers carry no cell state: they return `c_prev`
    /// unchanged so the caller's state plumbing is uniform.
    fn forward(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, Vec<f64>, RnnCache) {
        match self {
            RnnLayer::Lstm(cell) => {
                let (h, c, cache) = cell.forward(x, h_prev, c_prev);
                (h, c, RnnCache::Lstm(cache))
            }
            RnnLayer::Gru(cell) => {
                let (h, cache) = cell.forward(x, h_prev);
                (h, c_prev.to_vec(), RnnCache::Gru(cache))
            }
        }
    }

    /// Backward step; GRU layers ignore `dc` and return a zero `dc_prev`.
    fn backward(
        &mut self,
        cache: &RnnCache,
        dh: &[f64],
        dc: &[f64],
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        match (self, cache) {
            (RnnLayer::Lstm(cell), RnnCache::Lstm(cache)) => cell.backward(cache, dh, dc),
            (RnnLayer::Gru(cell), RnnCache::Gru(cache)) => {
                let (dx, dh_prev) = cell.backward(cache, dh);
                let dc_prev = vec![0.0; dh.len()];
                (dx, dh_prev, dc_prev)
            }
            _ => panic!("cache kind does not match layer kind"),
        }
    }
}

impl LstmConfig {
    /// Alphabet size: products + BOS + EOS.
    pub fn n_tokens(&self) -> usize {
        self.vocab_size + 2
    }

    /// BOS token index.
    pub fn bos(&self) -> usize {
        self.vocab_size
    }

    /// EOS token index.
    pub fn eos(&self) -> usize {
        self.vocab_size + 1
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    /// Panics on nonsensical settings.
    pub fn validate(&self) {
        assert!(self.vocab_size >= 1, "empty vocabulary");
        assert!(self.hidden_size >= 1, "hidden size must be positive");
        assert!(self.n_layers >= 1, "need at least one layer");
        assert!(
            (0.0..1.0).contains(&self.dropout),
            "dropout must be in [0, 1)"
        );
    }
}

/// Dropout masks for one training sequence, pre-drawn from the model's
/// dropout RNG. Separating the draw from the gradient computation lets the
/// trainer consume the RNG stream in batch order (exactly as the serial loop
/// would) while the compute runs data-parallel on cloned models.
#[derive(Debug, Clone)]
pub struct DropoutMasks {
    /// `in_masks[layer][t]`: mask applied to layer `layer`'s input at step `t`.
    in_masks: Vec<Vec<Vec<f64>>>,
    /// `out_masks[t]`: mask applied to the top hidden state at step `t`.
    out_masks: Vec<Vec<f64>>,
}

/// The trainable language model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmLm {
    cfg: LstmConfig,
    /// Token embeddings, `(M+2) x H`.
    pub embedding: Param,
    /// Stacked recurrent layers.
    pub layers: Vec<RnnLayer>,
    /// Output projection, `(M+2) x H`.
    pub w_out: Param,
    /// Output bias, `1 x (M+2)`.
    pub b_out: Param,
    /// RNG for dropout masks (separate from trainer shuffling).
    #[serde(skip, default = "default_dropout_rng")]
    dropout_rng: StdRng,
}

fn default_dropout_rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

impl LstmLm {
    /// Creates a model with Xavier-initialized weights.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent.
    pub fn new(cfg: LstmConfig, seed: u64) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let h = cfg.hidden_size;
        let n_tok = cfg.n_tokens();
        let embedding = Param::xavier(&mut rng, n_tok, h);
        let layers = (0..cfg.n_layers)
            .map(|_| RnnLayer::new(cfg.cell, &mut rng, h))
            .collect();
        let w_out = Param::xavier(&mut rng, n_tok, h);
        let b_out = Param::zeros(1, n_tok);
        let dropout_rng = StdRng::seed_from_u64(seed ^ 0x5EED_D80F);
        LstmLm {
            cfg,
            embedding,
            layers,
            w_out,
            b_out,
            dropout_rng,
        }
    }

    /// The architecture.
    pub fn config(&self) -> &LstmConfig {
        &self.cfg
    }

    /// The dropout RNG's raw state, for checkpointing. `dropout_rng` is
    /// `#[serde(skip)]` (deserializing resets it), so resumable training
    /// captures and restores it explicitly alongside the serialized model.
    pub fn dropout_rng_state(&self) -> [u64; 4] {
        self.dropout_rng.state()
    }

    /// Restores the dropout RNG mid-stream (see
    /// [`LstmLm::dropout_rng_state`]).
    pub fn set_dropout_rng_state(&mut self, state: [u64; 4]) {
        self.dropout_rng = StdRng::from_state(state);
    }

    /// Total scalar parameter count (embedding + cells + output head).
    pub fn parameter_count(&self) -> usize {
        self.embedding.len()
            + self
                .layers
                .iter()
                .map(|l| l.parameter_count())
                .sum::<usize>()
            + self.w_out.len()
            + self.b_out.len()
    }

    /// Mutable references to every parameter, for the optimizer.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        let mut out: Vec<&mut Param> = vec![&mut self.embedding];
        for l in &mut self.layers {
            out.extend(l.params_mut());
        }
        out.push(&mut self.w_out);
        out.push(&mut self.b_out);
        out
    }

    /// Wraps a product sequence into (inputs, targets):
    /// inputs `[BOS, w_1 … w_n]`, targets `[w_1 … w_n, EOS]`.
    ///
    /// # Panics
    /// Panics if a product index is out of range.
    pub fn io_tokens(&self, seq: &[usize]) -> (Vec<usize>, Vec<usize>) {
        for &w in seq {
            assert!(w < self.cfg.vocab_size, "product {w} outside vocabulary");
        }
        let mut input = Vec::with_capacity(seq.len() + 1);
        input.push(self.cfg.bos());
        input.extend_from_slice(seq);
        let mut target = seq.to_vec();
        target.push(self.cfg.eos());
        (input, target)
    }

    /// Draws the dropout masks for one training sequence from the model's
    /// dropout RNG (inverted dropout): one mask per layer input per step,
    /// plus one on the final hidden state per step. Consumes the RNG stream
    /// in exactly the order [`LstmLm::train_sequence`] historically did, so
    /// checkpointed RNG states stay compatible.
    pub fn draw_masks(&mut self, seq: &[usize]) -> DropoutMasks {
        let t_len = seq.len() + 1; // BOS-prefixed input length
        let h = self.cfg.hidden_size;
        let n_layers = self.cfg.n_layers;
        let p_drop = self.cfg.dropout;
        let keep = 1.0 - p_drop;
        let dropout_on = p_drop > 0.0;
        let mut make_mask = |on: bool| -> Vec<f64> {
            (0..h)
                .map(|_| {
                    if on && self.dropout_rng.gen::<f64>() < p_drop {
                        0.0
                    } else if on {
                        1.0 / keep
                    } else {
                        1.0
                    }
                })
                .collect()
        };
        let in_masks: Vec<Vec<Vec<f64>>> = (0..n_layers)
            .map(|_| (0..t_len).map(|_| make_mask(dropout_on)).collect())
            .collect();
        let out_masks: Vec<Vec<f64>> = (0..t_len).map(|_| make_mask(dropout_on)).collect();
        DropoutMasks {
            in_masks,
            out_masks,
        }
    }

    /// Adds `other`'s accumulated gradients into this model's gradient
    /// buffers. Used by the data-parallel trainer to merge per-chunk
    /// gradients (computed on cloned models) back into the master in fixed
    /// chunk order.
    ///
    /// # Panics
    /// Panics if the architectures differ.
    pub fn accumulate_grads(&mut self, other: &LstmLm) {
        // Gradient merges are plain sums on large buffers — the minibatch
        // hot path — so they opt into the f32 fast-math axpy kernel. With
        // the feature off this forwards to the exact f64 kernel, which is
        // element-for-element identical to `Matrix::axpy`.
        fn merge(dst: &mut hlm_linalg::Matrix, src: &hlm_linalg::Matrix) {
            assert_eq!(dst.shape(), src.shape(), "axpy shape mismatch");
            hlm_linalg::fastmath::axpy(dst.as_mut_slice(), 1.0, src.as_slice());
        }
        merge(&mut self.embedding.grad, &other.embedding.grad);
        assert_eq!(self.layers.len(), other.layers.len(), "layer count differs");
        for (mine, theirs) in self.layers.iter_mut().zip(&other.layers) {
            for (dst, src) in mine.params_mut().into_iter().zip(theirs.params()) {
                merge(&mut dst.grad, &src.grad);
            }
        }
        merge(&mut self.w_out.grad, &other.w_out.grad);
        merge(&mut self.b_out.grad, &other.b_out.grad);
    }

    /// Copies `other`'s parameter values into this model's existing buffers
    /// and clears the gradient accumulators — the allocation-free alternative
    /// to cloning a fresh worker model per gradient chunk. Adam moments and
    /// the dropout RNG are left untouched (workers never step the optimizer
    /// or draw masks).
    ///
    /// # Panics
    /// Panics if the architectures differ.
    pub fn sync_params_from(&mut self, other: &LstmLm) {
        fn sync(dst: &mut Param, src: &Param) {
            dst.value.copy_from(&src.value);
            dst.grad.fill(0.0);
        }
        sync(&mut self.embedding, &other.embedding);
        assert_eq!(self.layers.len(), other.layers.len(), "layer count differs");
        for (mine, theirs) in self.layers.iter_mut().zip(&other.layers) {
            for (dst, src) in mine.params_mut().into_iter().zip(theirs.params()) {
                sync(dst, src);
            }
        }
        sync(&mut self.w_out, &other.w_out);
        sync(&mut self.b_out, &other.b_out);
    }

    /// Runs one training sequence: forward with dropout, cross-entropy loss,
    /// full BPTT accumulating gradients into the parameters (no optimizer
    /// step). Returns `(total negative log-likelihood, target count)`.
    pub fn train_sequence(&mut self, seq: &[usize]) -> (f64, usize) {
        let masks = self.draw_masks(seq);
        self.train_sequence_masked(seq, &masks)
    }

    /// Like [`LstmLm::train_sequence`], but uses pre-drawn dropout masks and
    /// never touches the dropout RNG — safe to run on cloned models in
    /// parallel workers.
    pub fn train_sequence_masked(&mut self, seq: &[usize], masks: &DropoutMasks) -> (f64, usize) {
        let (inputs, targets) = self.io_tokens(seq);
        let t_len = inputs.len();
        let h = self.cfg.hidden_size;
        let n_layers = self.cfg.n_layers;
        let DropoutMasks {
            in_masks,
            out_masks,
        } = masks;
        assert_eq!(
            out_masks.len(),
            t_len,
            "mask length does not match sequence"
        );

        // Forward.
        let mut hs = vec![vec![0.0; h]; n_layers];
        let mut cs = vec![vec![0.0; h]; n_layers];
        let mut caches: Vec<Vec<RnnCache>> = vec![Vec::with_capacity(t_len); n_layers];
        let mut h_dropped: Vec<Vec<f64>> = Vec::with_capacity(t_len);
        let mut dlogits_all: Vec<Vec<f64>> = Vec::with_capacity(t_len);
        let mut total_nll = 0.0;

        for t in 0..t_len {
            let mut x: Vec<f64> = self.embedding.value.row(inputs[t]).to_vec();
            for l in 0..n_layers {
                for (xj, &m) in x.iter_mut().zip(&in_masks[l][t]) {
                    *xj *= m;
                }
                let (h_new, c_new, cache) = self.layers[l].forward(&x, &hs[l], &cs[l]);
                caches[l].push(cache);
                cs[l] = c_new;
                x = h_new;
                hs[l].copy_from_slice(&x);
            }
            for (xj, &m) in x.iter_mut().zip(&out_masks[t]) {
                *xj *= m;
            }
            let mut logits = self.w_out.value.matvec(&x);
            for (lj, &bj) in logits.iter_mut().zip(self.b_out.value.row(0)) {
                *lj += bj;
            }
            softmax_in_place(&mut logits);
            let p_target = logits[targets[t]].max(f64::MIN_POSITIVE);
            total_nll -= p_target.ln();
            // dL/dlogits for softmax + CE.
            logits[targets[t]] -= 1.0;
            dlogits_all.push(logits);
            h_dropped.push(x);
        }

        // Backward through time.
        let mut dh_next = vec![vec![0.0; h]; n_layers];
        let mut dc_next = vec![vec![0.0; h]; n_layers];
        for t in (0..t_len).rev() {
            let dlogits = &dlogits_all[t];
            self.w_out.grad.add_outer(1.0, dlogits, &h_dropped[t]);
            for (j, &d) in dlogits.iter().enumerate() {
                self.b_out.grad.add_at(0, j, d);
            }
            let mut dh_out = self.w_out.value.vecmat(dlogits);
            for (dj, &m) in dh_out.iter_mut().zip(&out_masks[t]) {
                *dj *= m;
            }

            // Gradient flowing into the top layer's h at step t.
            let mut dh: Vec<f64> = dh_out
                .iter()
                .zip(&dh_next[n_layers - 1])
                .map(|(&a, &b)| a + b)
                .collect();
            for l in (0..n_layers).rev() {
                // `take` instead of `clone`: the slot is overwritten with
                // `dc_prev` below, so stealing the buffer saves an allocation
                // per layer per step without changing any value.
                let dc = std::mem::take(&mut dc_next[l]);
                let (mut dx, dh_prev, dc_prev) = self.layers[l].backward(&caches[l][t], &dh, &dc);
                dh_next[l] = dh_prev;
                dc_next[l] = dc_prev;
                for (dj, &m) in dx.iter_mut().zip(&in_masks[l][t]) {
                    *dj *= m;
                }
                if l > 0 {
                    for (o, (&a, &b)) in dh.iter_mut().zip(dx.iter().zip(&dh_next[l - 1])) {
                        *o = a + b;
                    }
                } else {
                    // Embedding gradient.
                    for (j, &d) in dx.iter().enumerate() {
                        self.embedding.grad.add_at(inputs[t], j, d);
                    }
                }
            }
        }
        (total_nll, targets.len())
    }

    /// Forward pass without dropout: returns the softmax distribution over
    /// the full token alphabet after consuming `history` (products only).
    pub fn predict_next_tokens(&self, history: &[usize]) -> Vec<f64> {
        let h_sz = self.cfg.hidden_size;
        let n_layers = self.cfg.n_layers;
        let mut hs = vec![vec![0.0; h_sz]; n_layers];
        let mut cs = vec![vec![0.0; h_sz]; n_layers];
        let mut inputs = Vec::with_capacity(history.len() + 1);
        inputs.push(self.cfg.bos());
        for &w in history {
            assert!(w < self.cfg.vocab_size, "product {w} outside vocabulary");
            inputs.push(w);
        }
        let mut logits = vec![0.0; self.cfg.n_tokens()];
        for &tok in &inputs {
            let mut x: Vec<f64> = self.embedding.value.row(tok).to_vec();
            for l in 0..n_layers {
                let (h_new, c_new, _) = self.layers[l].forward(&x, &hs[l], &cs[l]);
                hs[l] = h_new.clone();
                cs[l] = c_new;
                x = h_new;
            }
            logits = self.w_out.value.matvec(&x);
            for (lj, &bj) in logits.iter_mut().zip(self.b_out.value.row(0)) {
                *lj += bj;
            }
        }
        softmax_in_place(&mut logits);
        logits
    }

    /// Encodes a product history into the company embedding `B_i`: the top
    /// layer's final hidden state after consuming `[BOS, history…]` (no
    /// dropout). This is the "RNN-based representation" of Section 4.
    pub fn encode(&self, history: &[usize]) -> Vec<f64> {
        let h_sz = self.cfg.hidden_size;
        let n_layers = self.cfg.n_layers;
        let mut hs = vec![vec![0.0; h_sz]; n_layers];
        let mut cs = vec![vec![0.0; h_sz]; n_layers];
        let mut inputs = Vec::with_capacity(history.len() + 1);
        inputs.push(self.cfg.bos());
        for &w in history {
            assert!(w < self.cfg.vocab_size, "product {w} outside vocabulary");
            inputs.push(w);
        }
        for &tok in &inputs {
            let mut x: Vec<f64> = self.embedding.value.row(tok).to_vec();
            for l in 0..n_layers {
                let (h_new, c_new, _) = self.layers[l].forward(&x, &hs[l], &cs[l]);
                hs[l] = h_new.clone();
                cs[l] = c_new;
                x = h_new;
            }
        }
        hs.pop().expect("at least one layer")
    }

    /// Next-product distribution: the token distribution restricted to
    /// products and renormalized (BOS/EOS mass removed). This is the
    /// recommender score `Pr(p | M, p_{i−1}, p_{i−2}, …)` of Section 4.3.
    pub fn predict_next(&self, history: &[usize]) -> Vec<f64> {
        let mut dist = self.predict_next_tokens(history);
        dist.truncate(self.cfg.vocab_size);
        let s: f64 = dist.iter().sum();
        if s > 0.0 {
            dist.iter_mut().for_each(|p| *p /= s);
        }
        dist
    }

    /// Log-likelihood of a product sequence. Returns
    /// `(Σ ln p(w_t | w_{<t}), token count)`; `include_eos` additionally
    /// scores the end-of-sequence prediction.
    pub fn sequence_log_likelihood(&self, seq: &[usize], include_eos: bool) -> (f64, usize) {
        let (inputs, targets) = self.io_tokens(seq);
        let h_sz = self.cfg.hidden_size;
        let n_layers = self.cfg.n_layers;
        let mut hs = vec![vec![0.0; h_sz]; n_layers];
        let mut cs = vec![vec![0.0; h_sz]; n_layers];
        let mut total = 0.0;
        let mut count = 0usize;
        for (t, &tok) in inputs.iter().enumerate() {
            let mut x: Vec<f64> = self.embedding.value.row(tok).to_vec();
            for l in 0..n_layers {
                let (h_new, c_new, _) = self.layers[l].forward(&x, &hs[l], &cs[l]);
                hs[l] = h_new.clone();
                cs[l] = c_new;
                x = h_new;
            }
            let is_eos_step = targets[t] == self.cfg.eos();
            if is_eos_step && !include_eos {
                continue;
            }
            let mut logits = self.w_out.value.matvec(&x);
            for (lj, &bj) in logits.iter_mut().zip(self.b_out.value.row(0)) {
                *lj += bj;
            }
            softmax_in_place(&mut logits);
            total += logits[targets[t]].max(f64::MIN_POSITIVE).ln();
            count += 1;
        }
        (total, count)
    }

    /// Average perplexity per product over a set of sequences:
    /// `exp(−(1/n) Σ ln p)`, EOS excluded (matching the paper's per-product
    /// measure). Returns `NaN` for empty input.
    pub fn perplexity(&self, seqs: &[Vec<usize>]) -> f64 {
        let mut ll = 0.0;
        let mut n = 0usize;
        for s in seqs {
            let (l, c) = self.sequence_log_likelihood(s, false);
            ll += l;
            n += c;
        }
        if n == 0 {
            f64::NAN
        } else {
            (-ll / n as f64).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LstmLm {
        LstmLm::new(
            LstmConfig {
                vocab_size: 4,
                hidden_size: 6,
                n_layers: 2,
                dropout: 0.0,
                ..Default::default()
            },
            3,
        )
    }

    #[test]
    fn io_tokens_wrap_with_markers() {
        let m = tiny();
        let (i, t) = m.io_tokens(&[0, 2]);
        assert_eq!(i, vec![4, 0, 2]); // BOS = 4
        assert_eq!(t, vec![0, 2, 5]); // EOS = 5
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn rejects_out_of_range_product() {
        tiny().io_tokens(&[9]);
    }

    #[test]
    fn predict_next_is_distribution_over_products() {
        let m = tiny();
        let d = m.predict_next(&[0, 1]);
        assert_eq!(d.len(), 4);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_reduces_loss_on_repeated_pattern() {
        use crate::param::{Adam, AdamOptions};
        let mut m = LstmLm::new(
            LstmConfig {
                vocab_size: 4,
                hidden_size: 12,
                n_layers: 1,
                dropout: 0.0,
                ..Default::default()
            },
            5,
        );
        let seqs: Vec<Vec<usize>> = vec![vec![0, 1, 2, 3]; 8];
        let mut adam = Adam::new(AdamOptions {
            learning_rate: 1e-2,
            ..Default::default()
        });
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..60 {
            let mut total = 0.0;
            let mut n = 0;
            for s in &seqs {
                let (nll, cnt) = m.train_sequence(s);
                total += nll;
                n += cnt;
            }
            adam.step(&mut m.parameters_mut());
            let avg = total / n as f64;
            if epoch == 0 {
                first = avg;
            }
            last = avg;
        }
        assert!(
            last < first * 0.3,
            "loss must fall substantially: first {first}, last {last}"
        );
        // The model should now strongly predict 1 after [0].
        let d = m.predict_next(&[0]);
        assert!(d[1] > 0.8, "p(1 | 0) = {}", d[1]);
    }

    #[test]
    fn train_sequence_gradients_match_finite_differences() {
        let mut m = LstmLm::new(
            LstmConfig {
                vocab_size: 3,
                hidden_size: 4,
                n_layers: 2,
                dropout: 0.0,
                ..Default::default()
            },
            7,
        );
        let seq = vec![0usize, 2, 1];
        let (nll0, _) = m.train_sequence(&seq);
        assert!(nll0 > 0.0);

        // Pick representative parameters across all tensors.
        let eps = 1e-5;
        let loss_of = |m: &mut LstmLm| -> f64 {
            // Clone so gradient accumulation in train_sequence is discarded.
            let mut c = m.clone();
            c.train_sequence(&seq).0
        };
        // embedding[0, 1]
        let analytic = m.embedding.grad.get(0, 1);
        m.embedding.value.add_at(0, 1, eps);
        let lp = loss_of(&mut m);
        m.embedding.value.add_at(0, 1, -2.0 * eps);
        let lm = loss_of(&mut m);
        m.embedding.value.add_at(0, 1, eps);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-5 * analytic.abs().max(1.0),
            "embedding grad: analytic {analytic}, numeric {numeric}"
        );
        // w_out[2, 3]
        let analytic = m.w_out.grad.get(2, 3);
        m.w_out.value.add_at(2, 3, eps);
        let lp = loss_of(&mut m);
        m.w_out.value.add_at(2, 3, -2.0 * eps);
        let lm = loss_of(&mut m);
        m.w_out.value.add_at(2, 3, eps);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-5 * analytic.abs().max(1.0),
            "w_out grad: analytic {analytic}, numeric {numeric}"
        );
        // second layer recurrent weight u[1, 2]
        let analytic = m.layers[1].as_lstm().expect("lstm layer").u.grad.get(1, 2);
        m.layers[1]
            .as_lstm_mut()
            .expect("lstm layer")
            .u
            .value
            .add_at(1, 2, eps);
        let lp = loss_of(&mut m);
        m.layers[1]
            .as_lstm_mut()
            .expect("lstm layer")
            .u
            .value
            .add_at(1, 2, -2.0 * eps);
        let lm = loss_of(&mut m);
        m.layers[1]
            .as_lstm_mut()
            .expect("lstm layer")
            .u
            .value
            .add_at(1, 2, eps);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-5 * analytic.abs().max(1.0),
            "layer-1 U grad: analytic {analytic}, numeric {numeric}"
        );
    }

    #[test]
    fn perplexity_of_untrained_model_is_near_alphabet_size() {
        let m = tiny();
        let seqs: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![3, 2]];
        let ppl = m.perplexity(&seqs);
        // Untrained softmax over 6 tokens ≈ uniform → per-product ppl ≈ 6.
        assert!((3.0..12.0).contains(&ppl), "untrained perplexity {ppl}");
    }

    #[test]
    fn dropout_changes_training_but_not_inference() {
        let cfg = LstmConfig {
            vocab_size: 4,
            hidden_size: 6,
            n_layers: 1,
            dropout: 0.5,
            ..Default::default()
        };
        let mut a = LstmLm::new(cfg.clone(), 9);
        let b = a.clone();
        // Inference is deterministic and dropout-free.
        assert_eq!(a.predict_next(&[0]), b.predict_next(&[0]));
        // Two training passes with the same weights draw different masks.
        let (nll1, _) = a.train_sequence(&[0, 1, 2]);
        let grads1 = a.embedding.grad.clone();
        for p in a.parameters_mut() {
            p.zero_grad();
        }
        let (nll2, _) = a.train_sequence(&[0, 1, 2]);
        let differs = nll1 != nll2 || a.embedding.grad != grads1;
        assert!(differs, "dropout masks should differ between passes");
    }

    #[test]
    fn parameter_count_scales_with_architecture() {
        let small = LstmLm::new(
            LstmConfig {
                vocab_size: 38,
                hidden_size: 10,
                n_layers: 1,
                dropout: 0.0,
                ..Default::default()
            },
            1,
        );
        let big = LstmLm::new(
            LstmConfig {
                vocab_size: 38,
                hidden_size: 100,
                n_layers: 1,
                dropout: 0.0,
                ..Default::default()
            },
            1,
        );
        assert!(big.parameter_count() > 40 * small.parameter_count() / 2);
        // Paper's lower bound: H=100 one-layer LSTM has ≥ 100(4·100+100) =
        // 50000 parameters in the recurrent block alone.
        let cell_params = big.layers[0].parameter_count();
        assert!(cell_params >= 50_000, "cell params {cell_params}");
    }

    #[test]
    fn gru_language_model_trains_and_predicts() {
        use crate::param::{Adam, AdamOptions};
        let mut m = LstmLm::new(
            LstmConfig {
                vocab_size: 4,
                hidden_size: 12,
                n_layers: 2,
                dropout: 0.0,
                cell: CellKind::Gru,
            },
            6,
        );
        let seqs: Vec<Vec<usize>> = vec![vec![0, 1, 2, 3]; 8];
        let mut adam = Adam::new(AdamOptions {
            learning_rate: 1e-2,
            ..Default::default()
        });
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..60 {
            let mut total = 0.0;
            let mut n = 0;
            for s in &seqs {
                let (nll, cnt) = m.train_sequence(s);
                total += nll;
                n += cnt;
            }
            adam.step(&mut m.parameters_mut());
            let avg = total / n as f64;
            if epoch == 0 {
                first = avg;
            }
            last = avg;
        }
        assert!(last < first * 0.3, "GRU loss must fall: {first} -> {last}");
        let d = m.predict_next(&[0]);
        assert!(d[1] > 0.8, "p(1 | 0) = {}", d[1]);
    }

    #[test]
    fn gru_train_sequence_gradients_match_finite_differences() {
        let mut m = LstmLm::new(
            LstmConfig {
                vocab_size: 3,
                hidden_size: 4,
                n_layers: 2,
                dropout: 0.0,
                cell: CellKind::Gru,
            },
            8,
        );
        let seq = vec![0usize, 2, 1];
        m.train_sequence(&seq);
        let eps = 1e-5;
        let loss_of = |m: &mut LstmLm| -> f64 {
            let mut c = m.clone();
            c.train_sequence(&seq).0
        };
        let analytic = m.embedding.grad.get(0, 1);
        m.embedding.value.add_at(0, 1, eps);
        let lp = loss_of(&mut m);
        m.embedding.value.add_at(0, 1, -2.0 * eps);
        let lm = loss_of(&mut m);
        m.embedding.value.add_at(0, 1, eps);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-5 * analytic.abs().max(1.0),
            "GRU embedding grad: analytic {analytic}, numeric {numeric}"
        );
    }

    #[test]
    fn gru_has_fewer_parameters_than_lstm() {
        let mk = |cell: CellKind| {
            LstmLm::new(
                LstmConfig {
                    vocab_size: 38,
                    hidden_size: 50,
                    n_layers: 1,
                    dropout: 0.0,
                    cell,
                },
                1,
            )
        };
        let lstm = mk(CellKind::Lstm);
        let gru = mk(CellKind::Gru);
        assert!(gru.parameter_count() < lstm.parameter_count());
        assert!(gru.layers[0].as_lstm().is_none());
        assert!(lstm.layers[0].as_lstm().is_some());
    }

    #[test]
    fn encode_returns_hidden_state_sensitive_to_history() {
        let m = tiny();
        let a = m.encode(&[0, 1]);
        let b = m.encode(&[2, 3]);
        assert_eq!(a.len(), 6);
        assert!(a.iter().zip(&b).any(|(x, y)| (x - y).abs() > 1e-9));
        // Deterministic.
        assert_eq!(a, m.encode(&[0, 1]));
    }

    #[test]
    fn empty_sequence_scores_nothing_without_eos() {
        let m = tiny();
        let (ll, n) = m.sequence_log_likelihood(&[], false);
        assert_eq!(n, 0);
        assert_eq!(ll, 0.0);
        let (_, n_eos) = m.sequence_log_likelihood(&[], true);
        assert_eq!(n_eos, 1);
    }
}
