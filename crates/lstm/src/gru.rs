//! A Gated Recurrent Unit cell (Cho et al. 2014).
//!
//! Section 3.4 of the paper discusses GRUs as the simpler LSTM alternative
//! ("the performance of GRUs … can be better for some datasets, but do not
//! outperform LSTM in general", citing Greff et al.). This cell slots into
//! the same language model as [`crate::LstmCell`] so the comparison can be
//! run as an ablation.
//!
//! Gate layout in the fused pre-activation `a = W x + b` and `u = U h_prev`
//! (length `3H` each): update gate `z`, reset gate `r`, candidate `n`, with
//!
//! ```text
//! z = σ(a_z + u_z)
//! r = σ(a_r + u_r)
//! n = tanh(a_n + r ⊙ u_n)
//! h' = (1 − z) ⊙ n + z ⊙ h_prev
//! ```

use crate::param::Param;
use rand::Rng;
use serde::{Deserialize, Serialize};

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-timestep values the backward pass needs.
#[derive(Debug, Clone)]
pub struct GruCache {
    /// Input vector.
    pub x: Vec<f64>,
    /// Previous hidden state.
    pub h_prev: Vec<f64>,
    /// Update gate.
    pub z: Vec<f64>,
    /// Reset gate.
    pub r: Vec<f64>,
    /// Candidate activation.
    pub n: Vec<f64>,
    /// `U_n h_prev` (needed for the reset-gate gradient).
    pub un_h: Vec<f64>,
}

/// One GRU layer's weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruCell {
    /// Input weights, `3H x E`.
    pub w: Param,
    /// Recurrent weights, `3H x H`.
    pub u: Param,
    /// Bias, `1 x 3H`.
    pub b: Param,
    input_size: usize,
    hidden_size: usize,
}

impl GruCell {
    /// Creates a cell with Xavier-initialized weights.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, input_size: usize, hidden_size: usize) -> Self {
        assert!(input_size > 0 && hidden_size > 0, "sizes must be positive");
        GruCell {
            w: Param::xavier(rng, 3 * hidden_size, input_size),
            u: Param::xavier(rng, 3 * hidden_size, hidden_size),
            b: Param::zeros(1, 3 * hidden_size),
            input_size,
            hidden_size,
        }
    }

    /// Input dimensionality `E`.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden dimensionality `H`.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Number of scalar parameters: `3H(E + H) + 3H` — three quarters of the
    /// equally-sized LSTM cell, the "simpler version" the paper refers to.
    pub fn parameter_count(&self) -> usize {
        self.w.len() + self.u.len() + self.b.len()
    }

    /// One forward step. Returns `(h, cache)`.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn forward(&self, x: &[f64], h_prev: &[f64]) -> (Vec<f64>, GruCache) {
        let h_sz = self.hidden_size;
        assert_eq!(x.len(), self.input_size, "input size mismatch");
        assert_eq!(h_prev.len(), h_sz, "hidden size mismatch");

        let mut a = self.w.value.matvec(x);
        for (ai, &bi) in a.iter_mut().zip(self.b.value.row(0)) {
            *ai += bi;
        }
        let u = self.u.value.matvec(h_prev);

        let mut z = vec![0.0; h_sz];
        let mut r = vec![0.0; h_sz];
        let mut n = vec![0.0; h_sz];
        let mut un_h = vec![0.0; h_sz];
        for j in 0..h_sz {
            z[j] = sigmoid(a[j] + u[j]);
            r[j] = sigmoid(a[h_sz + j] + u[h_sz + j]);
            un_h[j] = u[2 * h_sz + j];
            n[j] = (a[2 * h_sz + j] + r[j] * un_h[j]).tanh();
        }
        let h: Vec<f64> = (0..h_sz)
            .map(|j| (1.0 - z[j]) * n[j] + z[j] * h_prev[j])
            .collect();
        let cache = GruCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            z,
            r,
            n,
            un_h,
        };
        (h, cache)
    }

    /// One backward step: accumulates parameter gradients and returns
    /// `(dx, dh_prev)`.
    pub fn backward(&mut self, cache: &GruCache, dh: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let h_sz = self.hidden_size;
        assert_eq!(dh.len(), h_sz, "dh size mismatch");

        // Pre-activation gradients for the fused [z | r | n] blocks of `a`
        // and the recurrent contributions of `u`.
        let mut da = vec![0.0; 3 * h_sz]; // also the grad of (a + u) per gate
        let mut du_n = vec![0.0; h_sz]; // grad wrt u_n = U_n h_prev
        let mut dh_prev = vec![0.0; h_sz];
        for j in 0..h_sz {
            let dz = dh[j] * (cache.h_prev[j] - cache.n[j]);
            let dn = dh[j] * (1.0 - cache.z[j]);
            dh_prev[j] = dh[j] * cache.z[j];

            let dn_pre = dn * (1.0 - cache.n[j] * cache.n[j]);
            let dr = dn_pre * cache.un_h[j];
            du_n[j] = dn_pre * cache.r[j];

            da[j] = dz * cache.z[j] * (1.0 - cache.z[j]);
            da[h_sz + j] = dr * cache.r[j] * (1.0 - cache.r[j]);
            da[2 * h_sz + j] = dn_pre;
        }

        // Gradient wrt the recurrent pre-activation u = U h_prev: the z and
        // r blocks receive da directly, the n block receives du_n.
        let mut du = da.clone();
        du[2 * h_sz..].copy_from_slice(&du_n);

        self.w.grad.add_outer(1.0, &da, &cache.x);
        self.u.grad.add_outer(1.0, &du, &cache.h_prev);
        for (j, &d) in da.iter().enumerate() {
            self.b.grad.add_at(0, j, d);
        }

        let dx = self.w.value.vecmat(&da);
        let dh_rec = self.u.value.vecmat(&du);
        for (o, &d) in dh_prev.iter_mut().zip(&dh_rec) {
            *o += d;
        }
        (dx, dh_prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cell(e: usize, h: usize, seed: u64) -> GruCell {
        let mut rng = StdRng::seed_from_u64(seed);
        GruCell::new(&mut rng, e, h)
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let c = cell(3, 5, 1);
        let (h, cache) = c.forward(&[0.1, -0.4, 0.9], &[0.0; 5]);
        assert_eq!(h.len(), 5);
        // With h_prev = 0, h' = (1-z) n, |n| <= 1 → |h| <= 1.
        assert!(h.iter().all(|&x| x.abs() <= 1.0));
        assert!(cache.z.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!(cache.r.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn parameter_count_is_three_quarters_of_lstm() {
        let n = 12;
        let gru = cell(n, n, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let lstm = crate::cell::LstmCell::new(&mut rng, n, n);
        assert_eq!(gru.parameter_count() * 4, lstm.parameter_count() * 3);
    }

    /// Numerical gradient check on a 2-step chain with quadratic loss.
    #[test]
    fn gradients_match_finite_differences() {
        let e = 3;
        let h_sz = 4;
        let mut c = cell(e, h_sz, 4);
        let x0 = [0.3, -0.5, 0.8];
        let x1 = [-0.2, 0.6, 0.1];

        let loss = |c: &GruCell| -> f64 {
            let (h0, _) = c.forward(&x0, &vec![0.0; h_sz]);
            let (h1, _) = c.forward(&x1, &h0);
            0.5 * h1.iter().map(|&v| v * v).sum::<f64>()
        };

        let (h0, cache0) = c.forward(&x0, &vec![0.0; h_sz]);
        let (h1, cache1) = c.forward(&x1, &h0);
        let (_, dh0) = c.backward(&cache1, &h1);
        let (_, _) = c.backward(&cache0, &dh0);

        let eps = 1e-5;
        let checks: Vec<(&str, usize, usize)> = vec![
            ("w", 0, 0),
            ("w", 5, 2),
            ("w", 9, 1), // candidate block
            ("u", 2, 3),
            ("u", 7, 0),
            ("u", 11, 2), // candidate block of U (the tricky r ⊙ U_n h path)
            ("b", 0, 1),
            ("b", 0, 10),
        ];
        for (which, row, col) in checks {
            let analytic = match which {
                "w" => c.w.grad.get(row, col),
                "u" => c.u.grad.get(row, col),
                _ => c.b.grad.get(row, col),
            };
            let bump = |c: &mut GruCell, delta: f64| match which {
                "w" => c.w.value.add_at(row, col, delta),
                "u" => c.u.value.add_at(row, col, delta),
                _ => c.b.value.add_at(row, col, delta),
            };
            bump(&mut c, eps);
            let lp = loss(&c);
            bump(&mut c, -2.0 * eps);
            let lm = loss(&c);
            bump(&mut c, eps);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-6 * analytic.abs().max(1.0),
                "{which}[{row},{col}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let e = 3;
        let h_sz = 4;
        let mut c = cell(e, h_sz, 5);
        let x = [0.4, -0.7, 0.2];
        let loss = |c: &GruCell, x: &[f64]| -> f64 {
            let (h, _) = c.forward(x, &vec![0.0; h_sz]);
            0.5 * h.iter().map(|&v| v * v).sum::<f64>()
        };
        let (h, cache) = c.forward(&x, &vec![0.0; h_sz]);
        let (dx, _) = c.backward(&cache, &h);
        let eps = 1e-6;
        for j in 0..e {
            let mut xp = x;
            xp[j] += eps;
            let mut xm = x;
            xm[j] -= eps;
            let numeric = (loss(&c, &xp) - loss(&c, &xm)) / (2.0 * eps);
            assert!(
                (dx[j] - numeric).abs() < 1e-5,
                "dx[{j}]: {} vs {numeric}",
                dx[j]
            );
        }
    }

    #[test]
    fn update_gate_interpolates_between_old_and_new() {
        // With a saturated update gate (huge positive bias on z), h' ≈ h_prev.
        let mut c = cell(2, 3, 6);
        for j in 0..3 {
            c.b.value.set(0, j, 50.0); // z block
        }
        let h_prev = [0.7, -0.3, 0.1];
        let (h, _) = c.forward(&[1.0, -1.0], &h_prev);
        for (a, b) in h.iter().zip(&h_prev) {
            assert!((a - b).abs() < 1e-6, "saturated z must copy the state");
        }
    }
}
