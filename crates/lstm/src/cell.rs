//! A single LSTM cell: forward step and backpropagation through time.
//!
//! Gate layout in the fused pre-activation vector `z = W x + U h_prev + b`
//! (length `4H`): input gate `i`, forget gate `f`, candidate `g`, output
//! gate `o`. The forget-gate bias is initialized to 1, the standard trick
//! that keeps long-range gradients alive early in training.

use crate::param::Param;
use rand::Rng;
use serde::{Deserialize, Serialize};

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-timestep values the backward pass needs.
#[derive(Debug, Clone)]
pub struct CellCache {
    /// Input vector at this step.
    pub x: Vec<f64>,
    /// Previous hidden state.
    pub h_prev: Vec<f64>,
    /// Previous cell state.
    pub c_prev: Vec<f64>,
    /// Input gate activations.
    pub i: Vec<f64>,
    /// Forget gate activations.
    pub f: Vec<f64>,
    /// Candidate (tanh) activations.
    pub g: Vec<f64>,
    /// Output gate activations.
    pub o: Vec<f64>,
    /// New cell state.
    pub c: Vec<f64>,
    /// `tanh(c)`.
    pub tanh_c: Vec<f64>,
}

/// One LSTM layer's weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmCell {
    /// Input weights, `4H x E`.
    pub w: Param,
    /// Recurrent weights, `4H x H`.
    pub u: Param,
    /// Bias, `1 x 4H`.
    pub b: Param,
    input_size: usize,
    hidden_size: usize,
}

impl LstmCell {
    /// Creates a cell with Xavier-initialized weights and forget bias 1.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, input_size: usize, hidden_size: usize) -> Self {
        assert!(input_size > 0 && hidden_size > 0, "sizes must be positive");
        let w = Param::xavier(rng, 4 * hidden_size, input_size);
        let u = Param::xavier(rng, 4 * hidden_size, hidden_size);
        let mut b = Param::zeros(1, 4 * hidden_size);
        for j in hidden_size..2 * hidden_size {
            b.value.set(0, j, 1.0); // forget-gate bias
        }
        LstmCell {
            w,
            u,
            b,
            input_size,
            hidden_size,
        }
    }

    /// Input dimensionality `E`.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden dimensionality `H`.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Number of scalar parameters: `4H(E + H) + 4H`.
    pub fn parameter_count(&self) -> usize {
        self.w.len() + self.u.len() + self.b.len()
    }

    /// One forward step. Returns `(h, c, cache)`.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn forward(
        &self,
        x: &[f64],
        h_prev: &[f64],
        c_prev: &[f64],
    ) -> (Vec<f64>, Vec<f64>, CellCache) {
        let h_sz = self.hidden_size;
        assert_eq!(x.len(), self.input_size, "input size mismatch");
        assert_eq!(h_prev.len(), h_sz, "hidden size mismatch");
        assert_eq!(c_prev.len(), h_sz, "cell size mismatch");

        // z = W x + U h_prev + b
        let mut z = self.w.value.matvec(x);
        let uh = self.u.value.matvec(h_prev);
        for (zi, (&u, &bi)) in z.iter_mut().zip(uh.iter().zip(self.b.value.row(0))) {
            *zi += u + bi;
        }

        let mut i = vec![0.0; h_sz];
        let mut f = vec![0.0; h_sz];
        let mut g = vec![0.0; h_sz];
        let mut o = vec![0.0; h_sz];
        for j in 0..h_sz {
            i[j] = sigmoid(z[j]);
            f[j] = sigmoid(z[h_sz + j]);
            g[j] = z[2 * h_sz + j].tanh();
            o[j] = sigmoid(z[3 * h_sz + j]);
        }
        let mut c = vec![0.0; h_sz];
        let mut tanh_c = vec![0.0; h_sz];
        let mut h = vec![0.0; h_sz];
        for j in 0..h_sz {
            c[j] = f[j] * c_prev[j] + i[j] * g[j];
            tanh_c[j] = c[j].tanh();
            h[j] = o[j] * tanh_c[j];
        }
        let cache = CellCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c: c.clone(),
            tanh_c,
        };
        (h, c, cache)
    }

    /// One backward step. `dh` and `dc` are the gradients flowing into this
    /// step's outputs; gradients are accumulated into the cell's parameters
    /// and `(dx, dh_prev, dc_prev)` are returned for the upstream step.
    pub fn backward(
        &mut self,
        cache: &CellCache,
        dh: &[f64],
        dc: &[f64],
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let h_sz = self.hidden_size;
        assert_eq!(dh.len(), h_sz, "dh size mismatch");
        assert_eq!(dc.len(), h_sz, "dc size mismatch");

        // Through h = o * tanh(c).
        let mut dz = vec![0.0; 4 * h_sz];
        let mut dc_total = vec![0.0; h_sz];
        for j in 0..h_sz {
            let do_ = dh[j] * cache.tanh_c[j];
            let dtanh_c = dh[j] * cache.o[j];
            dc_total[j] = dc[j] + dtanh_c * (1.0 - cache.tanh_c[j] * cache.tanh_c[j]);
            // Output gate pre-activation.
            dz[3 * h_sz + j] = do_ * cache.o[j] * (1.0 - cache.o[j]);
        }
        let mut dc_prev = vec![0.0; h_sz];
        for j in 0..h_sz {
            let di = dc_total[j] * cache.g[j];
            let df = dc_total[j] * cache.c_prev[j];
            let dg = dc_total[j] * cache.i[j];
            dc_prev[j] = dc_total[j] * cache.f[j];
            dz[j] = di * cache.i[j] * (1.0 - cache.i[j]);
            dz[h_sz + j] = df * cache.f[j] * (1.0 - cache.f[j]);
            dz[2 * h_sz + j] = dg * (1.0 - cache.g[j] * cache.g[j]);
        }

        // Parameter gradients: dW += dz xᵀ, dU += dz h_prevᵀ, db += dz.
        self.w.grad.add_outer(1.0, &dz, &cache.x);
        self.u.grad.add_outer(1.0, &dz, &cache.h_prev);
        for (j, &d) in dz.iter().enumerate() {
            self.b.grad.add_at(0, j, d);
        }

        // Input gradients: dx = Wᵀ dz, dh_prev = Uᵀ dz.
        let dx = self.w.value.vecmat(&dz);
        let dh_prev = self.u.value.vecmat(&dz);
        (dx, dh_prev, dc_prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cell(e: usize, h: usize, seed: u64) -> LstmCell {
        let mut rng = StdRng::seed_from_u64(seed);
        LstmCell::new(&mut rng, e, h)
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let c = cell(3, 5, 1);
        let (h, cc, cache) = c.forward(&[0.1, -0.2, 0.3], &[0.0; 5], &[0.0; 5]);
        assert_eq!(h.len(), 5);
        assert_eq!(cc.len(), 5);
        assert!(
            h.iter().all(|&x| x.abs() <= 1.0),
            "h is o*tanh(c), bounded by 1"
        );
        assert_eq!(cache.i.len(), 5);
        assert!(cache.i.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn parameter_count_matches_sak_formula() {
        // Paper cites n_c (4 n_c + n_o) as the dominant term; with E = H = n
        // the exact count is 4n(n + n) + 4n.
        let n = 10;
        let c = cell(n, n, 2);
        assert_eq!(c.parameter_count(), 4 * n * (n + n) + 4 * n);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let c = cell(2, 3, 3);
        for j in 3..6 {
            assert_eq!(c.b.value.get(0, j), 1.0);
        }
        assert_eq!(c.b.value.get(0, 0), 0.0);
    }

    /// Numerical gradient check of every parameter and the inputs on a
    /// 2-step chain with a quadratic loss — the definitive BPTT test.
    #[test]
    fn gradients_match_finite_differences() {
        let e = 3;
        let h_sz = 4;
        let mut c = cell(e, h_sz, 4);
        let x0 = [0.2, -0.4, 0.7];
        let x1 = [-0.3, 0.5, 0.1];

        // Loss: 0.5 * Σ h1² after two steps.
        let loss = |c: &LstmCell| -> f64 {
            let (h0, c0, _) = c.forward(&x0, &vec![0.0; h_sz], &vec![0.0; h_sz]);
            let (h1, _, _) = c.forward(&x1, &h0, &c0);
            0.5 * h1.iter().map(|&v| v * v).sum::<f64>()
        };

        // Analytic gradients.
        let (h0, c0, cache0) = c.forward(&x0, &vec![0.0; h_sz], &vec![0.0; h_sz]);
        let (h1, _, cache1) = c.forward(&x1, &h0, &c0);
        let dh1: Vec<f64> = h1.clone();
        let (_, dh0, dc0) = c.backward(&cache1, &dh1, &vec![0.0; h_sz]);
        let (_, _, _) = c.backward(&cache0, &dh0, &dc0);

        let eps = 1e-5;
        // Check a spread of W, U and b entries.
        let checks: Vec<(&str, usize, usize)> = vec![
            ("w", 0, 0),
            ("w", 7, 2),
            ("u", 3, 1),
            ("u", 15, 3),
            ("b", 0, 2),
            ("b", 0, 9),
        ];
        for (which, r, cidx) in checks {
            let analytic = match which {
                "w" => c.w.grad.get(r, cidx),
                "u" => c.u.grad.get(r, cidx),
                _ => c.b.grad.get(r, cidx),
            };
            let bump = |c: &mut LstmCell, delta: f64| match which {
                "w" => c.w.value.add_at(r, cidx, delta),
                "u" => c.u.value.add_at(r, cidx, delta),
                _ => c.b.value.add_at(r, cidx, delta),
            };
            bump(&mut c, eps);
            let lp = loss(&c);
            bump(&mut c, -2.0 * eps);
            let lm = loss(&c);
            bump(&mut c, eps);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-6 * analytic.abs().max(1.0),
                "{which}[{r},{cidx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn backward_input_gradient_matches_finite_differences() {
        let e = 3;
        let h_sz = 4;
        let mut c = cell(e, h_sz, 5);
        let x = [0.3, -0.1, 0.6];
        let loss = |c: &LstmCell, x: &[f64]| -> f64 {
            let (h, _, _) = c.forward(x, &vec![0.0; h_sz], &vec![0.0; h_sz]);
            0.5 * h.iter().map(|&v| v * v).sum::<f64>()
        };
        let (h, _, cache) = c.forward(&x, &vec![0.0; h_sz], &vec![0.0; h_sz]);
        let (dx, _, _) = c.backward(&cache, &h, &vec![0.0; h_sz]);
        let eps = 1e-6;
        for j in 0..e {
            let mut xp = x;
            xp[j] += eps;
            let mut xm = x;
            xm[j] -= eps;
            let numeric = (loss(&c, &xp) - loss(&c, &xm)) / (2.0 * eps);
            assert!(
                (dx[j] - numeric).abs() < 1e-5,
                "dx[{j}]: analytic {} vs numeric {numeric}",
                dx[j]
            );
        }
    }

    #[test]
    fn state_propagates_information() {
        // The same input with different previous states gives different h.
        let c = cell(2, 3, 6);
        let x = [0.5, -0.5];
        let (h_a, _, _) = c.forward(&x, &[0.0; 3], &[0.0; 3]);
        let (h_b, _, _) = c.forward(&x, &[0.9, -0.9, 0.4], &[1.0, 0.0, -1.0]);
        assert!(h_a.iter().zip(&h_b).any(|(a, b)| (a - b).abs() > 1e-6));
    }
}
