//! Trainable parameters and the Adam optimizer.

use hlm_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A trainable weight tensor with its gradient accumulator and Adam moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (zeroed by the optimizer step).
    pub grad: Matrix,
    /// Adam first moment.
    m: Matrix,
    /// Adam second moment.
    v: Matrix,
}

impl Param {
    /// Zero-initialized parameter (used for biases).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Param {
            value: Matrix::zeros(rows, cols),
            grad: Matrix::zeros(rows, cols),
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
        }
    }

    /// Xavier/Glorot-uniform initialization: `U(-s, s)` with
    /// `s = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Self {
        let s = (6.0 / (rows + cols) as f64).sqrt();
        let value = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-s..s));
        Param {
            grad: Matrix::zeros(rows, cols),
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            value,
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.rows() * self.value.cols()
    }

    /// True when the parameter holds no scalars.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamOptions {
    /// Learning rate.
    pub learning_rate: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub epsilon: f64,
    /// Global gradient-norm clip; `None` disables clipping.
    pub clip_norm: Option<f64>,
}

impl Default for AdamOptions {
    fn default() -> Self {
        AdamOptions {
            learning_rate: 5e-3,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            clip_norm: Some(5.0),
        }
    }
}

/// Adam optimizer state shared across a parameter set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    opts: AdamOptions,
    t: u64,
}

impl Adam {
    /// Creates an optimizer.
    ///
    /// # Panics
    /// Panics on invalid hyper-parameters.
    pub fn new(opts: AdamOptions) -> Self {
        assert!(opts.learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&opts.beta1) && (0.0..1.0).contains(&opts.beta2));
        assert!(opts.epsilon > 0.0);
        if let Some(c) = opts.clip_norm {
            assert!(c > 0.0, "clip norm must be positive");
        }
        Adam { opts, t: 0 }
    }

    /// The options in force.
    pub fn options(&self) -> &AdamOptions {
        &self.opts
    }

    /// Updates the learning rate (used by decay schedules); moments are
    /// preserved.
    ///
    /// # Panics
    /// Panics if `lr` is not positive.
    pub fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.opts.learning_rate = lr;
    }

    /// Applies one Adam step to every parameter and zeroes the gradients.
    ///
    /// Gradient clipping rescales all gradients jointly when the global L2
    /// norm exceeds `clip_norm`.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        if let Some(clip) = self.opts.clip_norm {
            let mut sq = 0.0;
            for p in params.iter() {
                sq += p.grad.as_slice().iter().map(|&g| g * g).sum::<f64>();
            }
            let norm = sq.sqrt();
            if norm > clip {
                let scale = clip / norm;
                for p in params.iter_mut() {
                    p.grad.scale_mut(scale);
                }
            }
        }
        let (b1, b2) = (self.opts.beta1, self.opts.beta2);
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.opts.learning_rate;
        let eps = self.opts.epsilon;
        for p in params.iter_mut() {
            let Param { value, grad, m, v } = &mut **p;
            let grad = grad.as_mut_slice();
            let m = m.as_mut_slice();
            let v = v.as_mut_slice();
            let value = value.as_mut_slice();
            for i in 0..grad.len() {
                m[i] = b1 * m[i] + (1.0 - b1) * grad[i];
                v[i] = b2 * v[i] + (1.0 - b2) * grad[i] * grad[i];
                let m_hat = m[i] / bias1;
                let v_hat = v[i] / bias2;
                value[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                grad[i] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = Param::xavier(&mut rng, 10, 20);
        let s = (6.0 / 30.0_f64).sqrt();
        assert!(p.value.as_slice().iter().all(|&x| x.abs() <= s));
        assert!(p.value.as_slice().iter().any(|&x| x != 0.0));
        assert_eq!(p.len(), 200);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize f(x) = (x - 3)^2 elementwise.
        let mut p = Param::zeros(1, 4);
        let mut adam = Adam::new(AdamOptions {
            learning_rate: 0.1,
            ..Default::default()
        });
        for _ in 0..500 {
            for i in 0..4 {
                let x = p.value.get(0, i);
                p.grad.set(0, i, 2.0 * (x - 3.0));
            }
            adam.step(&mut [&mut p]);
        }
        for i in 0..4 {
            assert!((p.value.get(0, i) - 3.0).abs() < 1e-3);
        }
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = Param::zeros(2, 2);
        p.grad.fill(1.0);
        let mut adam = Adam::new(AdamOptions::default());
        adam.step(&mut [&mut p]);
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut p_clip = Param::zeros(1, 1);
        p_clip.grad.set(0, 0, 1e6);
        let mut p_free = p_clip.clone();
        let mut clipped = Adam::new(AdamOptions {
            clip_norm: Some(1.0),
            learning_rate: 0.1,
            ..Default::default()
        });
        let mut unclipped = Adam::new(AdamOptions {
            clip_norm: None,
            learning_rate: 0.1,
            ..Default::default()
        });
        clipped.step(&mut [&mut p_clip]);
        unclipped.step(&mut [&mut p_free]);
        // Adam normalizes by sqrt(v), so both take ~lr-size steps, but the
        // clipped gradient must not exceed the clip norm internally — verify
        // via identical first-step updates (m/sqrt(v) is scale-invariant) and
        // via state magnitudes.
        assert!(p_clip.m.get(0, 0).abs() <= 0.11, "m {}", p_clip.m.get(0, 0));
        assert!(p_free.m.get(0, 0).abs() > 1e4);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_bad_learning_rate() {
        Adam::new(AdamOptions {
            learning_rate: 0.0,
            ..Default::default()
        });
    }

    #[test]
    fn multi_param_clipping_is_global() {
        let mut a = Param::zeros(1, 1);
        let mut b = Param::zeros(1, 1);
        a.grad.set(0, 0, 3.0);
        b.grad.set(0, 0, 4.0); // global norm 5
        let mut adam = Adam::new(AdamOptions {
            clip_norm: Some(1.0),
            learning_rate: 1.0,
            ..Default::default()
        });
        adam.step(&mut [&mut a, &mut b]);
        // After clipping, the first moments reflect gradients scaled by 1/5.
        assert!((a.m.get(0, 0) - 0.1 * 3.0 / 5.0).abs() < 1e-12);
        assert!((b.m.get(0, 0) - 0.1 * 4.0 / 5.0).abs() < 1e-12);
    }
}
