//! Mini-batch trainer with validation-based early stopping.

use crate::model::LstmLm;
use crate::param::{Adam, AdamOptions};
use hlm_resilience::{Checkpoint, ResilienceError, TrainControl};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Checkpoint kind tag for LSTM training runs.
pub const LSTM_CHECKPOINT_KIND: &str = "lstm";

/// Sequences per data-parallel gradient chunk within a mini-batch. Fixed (a
/// function of the batch alone, never the thread count) so gradient merge
/// order — and therefore training — is identical at any parallelism.
const SEQ_CHUNK: usize = 4;

/// Complete trainer state after a finished epoch. The shuffle order and both
/// RNG streams are captured so a resumed run replays the exact same batch
/// sequence and dropout masks as an uninterrupted one.
#[derive(Serialize, Deserialize)]
struct LstmTrainState {
    epochs_done: u64,
    stopped_early: bool,
    model: LstmLm,
    model_rng: [u64; 4],
    adam: Adam,
    lr: f64,
    order: Vec<usize>,
    stats: Vec<EpochStats>,
    best_ppl: Option<f64>,
    best_model: Option<LstmLm>,
    best_rng: [u64; 4],
    since_best: u64,
    shuffle_rng: [u64; 4],
}

/// Training options. The paper trains for 14 epochs; early stopping on
/// validation perplexity guards the small-corpus regime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Maximum epochs (paper: 14).
    pub epochs: usize,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// Adam settings.
    pub adam: AdamOptions,
    /// Stop when validation perplexity fails to improve this many epochs in
    /// a row (0 disables early stopping).
    pub patience: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Print one line per epoch to stderr.
    pub verbose: bool,
    /// Multiply the learning rate by this factor after each epoch beyond
    /// `decay_after` (Zaremba-style schedule). 1.0 disables decay.
    #[serde(default = "default_lr_decay")]
    pub lr_decay: f64,
    /// First epoch (0-based) after which the decay applies.
    #[serde(default)]
    pub decay_after: usize,
}

fn default_lr_decay() -> f64 {
    1.0
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 14,
            batch_size: 16,
            adam: AdamOptions::default(),
            patience: 3,
            seed: 1234,
            verbose: false,
            lr_decay: 1.0,
            decay_after: 0,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training NLL per target token.
    pub train_nll: f64,
    /// Validation perplexity (NaN when no validation set was given).
    pub valid_perplexity: f64,
}

/// The trainer.
#[derive(Debug, Clone)]
pub struct Trainer {
    opts: TrainOptions,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    /// Panics on nonsensical options.
    pub fn new(opts: TrainOptions) -> Self {
        assert!(opts.epochs >= 1, "need at least one epoch");
        assert!(opts.batch_size >= 1, "batch size must be positive");
        assert!(
            opts.lr_decay > 0.0 && opts.lr_decay <= 1.0,
            "lr_decay must be in (0, 1]"
        );
        Trainer { opts }
    }

    /// Trains `model` on `train` sequences, monitoring perplexity on
    /// `valid` (pass an empty slice to disable validation / early stopping).
    /// Returns per-epoch statistics. The model is left at the parameters of
    /// the best validation epoch (or the final epoch without validation).
    pub fn fit(
        &self,
        model: &mut LstmLm,
        train: &[Vec<usize>],
        valid: &[Vec<usize>],
    ) -> Vec<EpochStats> {
        self.fit_resumable(model, train, valid, &mut TrainControl::noop(), None)
            .expect("noop control cannot interrupt training")
    }

    /// Like [`Trainer::fit`], but consults `ctrl` at every epoch boundary
    /// (watchdog, NaN/divergence detection, per-epoch checkpointing) and
    /// optionally continues from a checkpoint written by an earlier run. An
    /// interrupted-then-resumed run leaves `model` bit-identical to an
    /// uninterrupted one.
    pub fn fit_resumable(
        &self,
        model: &mut LstmLm,
        train: &[Vec<usize>],
        valid: &[Vec<usize>],
        ctrl: &mut TrainControl,
        resume: Option<&Checkpoint>,
    ) -> Result<Vec<EpochStats>, ResilienceError> {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let mut adam = Adam::new(self.opts.adam);
        let mut lr = self.opts.adam.learning_rate;
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut stats = Vec::with_capacity(self.opts.epochs);
        let mut best: Option<(f64, LstmLm)> = None;
        let mut since_best = 0usize;
        let mut start_epoch = 0u64;

        if let Some(ckpt) = resume {
            let state = decode_state(ckpt, train.len())?;
            start_epoch = state.epochs_done;
            *model = state.model;
            model.set_dropout_rng_state(state.model_rng);
            adam = state.adam;
            lr = state.lr;
            order = state.order;
            stats = state.stats;
            best = match (state.best_ppl, state.best_model) {
                (Some(ppl), Some(mut m)) => {
                    m.set_dropout_rng_state(state.best_rng);
                    Some((ppl, m))
                }
                _ => None,
            };
            since_best = state.since_best as usize;
            rng = StdRng::from_state(state.shuffle_rng);
            if state.stopped_early {
                start_epoch = self.opts.epochs as u64; // skip straight to restore
            }
        }

        let rec = hlm_obs::global();
        // Per-chunk worker models, allocated once and reused across every
        // mini-batch and epoch: each batch re-syncs parameter values in place
        // (`sync_params_from`) instead of cloning a fresh model per chunk.
        let mut workers: Vec<LstmLm> = Vec::new();
        // Rough serial cost of one token's forward+backward in ns: a handful
        // of multiply-adds per scalar parameter.
        let token_cost = 6 * model.parameter_count() as u64;
        for epoch in start_epoch as usize..self.opts.epochs {
            ctrl.begin_iteration(epoch as u64)?;
            let epoch_t0 = rec.is_enabled().then(std::time::Instant::now);
            let mut grad_norm_sum = 0.0;
            let mut n_batches = 0u64;
            hlm_linalg::dist::shuffle(&mut rng, &mut order);
            let mut total_nll = 0.0;
            let mut total_tokens = 0usize;
            let pool = hlm_par::Pool::global();
            for batch in order.chunks(self.opts.batch_size) {
                // Pre-draw every dropout mask from the master RNG in batch
                // order (the same stream consumption as a serial loop), then
                // compute per-sequence gradients data-parallel on cloned
                // models and merge them back in fixed chunk order. The chunk
                // layout depends only on the batch, never on the thread
                // count, so training is bit-identical at any parallelism.
                let masks: Vec<_> = batch
                    .iter()
                    .map(|&idx| model.draw_masks(&train[idx]))
                    .collect();
                let n_chunks = hlm_par::chunk_count(batch.len(), SEQ_CHUNK);
                while workers.len() < n_chunks {
                    workers.push(model.clone());
                }
                let batch_tokens: u64 = batch.iter().map(|&i| train[i].len() as u64 + 1).sum();
                let budget = hlm_par::Budget::items(batch_tokens as usize, token_cost);
                let snapshot: &LstmLm = model;
                let mut views: Vec<&mut LstmLm> = workers[..n_chunks].iter_mut().collect();
                let results = hlm_par::par_for_each_scratch(
                    &pool,
                    budget,
                    &mut views,
                    || (),
                    |_, c, worker| {
                        worker.sync_params_from(snapshot);
                        let (lo, hi) = hlm_par::chunk_bounds(batch.len(), SEQ_CHUNK, c);
                        let mut nll = 0.0;
                        let mut n = 0usize;
                        for i in lo..hi {
                            let (l, cnt) =
                                worker.train_sequence_masked(&train[batch[i]], &masks[i]);
                            nll += l;
                            n += cnt;
                        }
                        (nll, n)
                    },
                );
                drop(views);
                for (&(nll, n), worker) in results.iter().zip(&workers[..n_chunks]) {
                    total_nll += nll;
                    total_tokens += n;
                    model.accumulate_grads(worker);
                }
                // Gradient norm must be read before Adam zeroes the grads;
                // pure observation, gated so disabled runs pay nothing.
                if epoch_t0.is_some() {
                    let norm_sq: f64 = model
                        .parameters_mut()
                        .iter()
                        .map(|p| p.grad.as_slice().iter().map(|g| g * g).sum::<f64>())
                        .sum();
                    grad_norm_sum += norm_sq.sqrt();
                    n_batches += 1;
                }
                adam.step(&mut model.parameters_mut());
            }
            let train_nll = if total_tokens > 0 {
                total_nll / total_tokens as f64
            } else {
                0.0
            };
            if let Some(t0) = epoch_t0 {
                rec.observe("lstm.epoch_seconds", t0.elapsed().as_secs_f64());
                rec.add("lstm.epochs", 1);
                rec.trace("lstm.train_nll", epoch as u64, train_nll);
                if n_batches > 0 {
                    rec.trace(
                        "lstm.grad_norm",
                        epoch as u64,
                        grad_norm_sum / n_batches as f64,
                    );
                }
            }
            let train_nll = ctrl.check_metric(epoch as u64, "train nll", train_nll)?;
            let valid_ppl = if valid.is_empty() {
                f64::NAN
            } else {
                ctrl.check_metric(epoch as u64, "valid perplexity", model.perplexity(valid))?
            };
            if self.opts.verbose {
                eprintln!(
                    "epoch {epoch}: train nll/token {train_nll:.4}, valid ppl {valid_ppl:.3}"
                );
            }
            stats.push(EpochStats {
                epoch,
                train_nll,
                valid_perplexity: valid_ppl,
            });

            if self.opts.lr_decay != 1.0 && epoch >= self.opts.decay_after {
                lr *= self.opts.lr_decay;
                adam.set_learning_rate(lr);
            }

            let mut stop = false;
            if !valid.is_empty() {
                let improved = best.as_ref().is_none_or(|(b, _)| valid_ppl < *b);
                if improved {
                    best = Some((valid_ppl, model.clone()));
                    since_best = 0;
                } else {
                    since_best += 1;
                    if self.opts.patience > 0 && since_best >= self.opts.patience {
                        stop = true;
                    }
                }
            }

            ctrl.checkpoint(epoch as u64 + 1, || {
                encode_state(&LstmTrainState {
                    epochs_done: epoch as u64 + 1,
                    stopped_early: stop,
                    model: model.clone(),
                    model_rng: model.dropout_rng_state(),
                    adam: adam.clone(),
                    lr,
                    order: order.clone(),
                    stats: stats.clone(),
                    best_ppl: best.as_ref().map(|(p, _)| *p),
                    best_model: best.as_ref().map(|(_, m)| m.clone()),
                    best_rng: best
                        .as_ref()
                        .map(|(_, m)| m.dropout_rng_state())
                        .unwrap_or([0; 4]),
                    since_best: since_best as u64,
                    shuffle_rng: rng.state(),
                })
            });

            if stop {
                break;
            }
        }
        if let Some((_, best_model)) = best {
            *model = best_model;
        }
        Ok(stats)
    }

    /// Materializes the model a checkpoint captured, without further epochs —
    /// the rollback path when a later epoch diverges. Returns the best
    /// validation model when early stopping was active, otherwise the model
    /// as of the checkpointed epoch, plus the per-epoch stats so far.
    pub fn model_from_checkpoint(
        &self,
        ckpt: &Checkpoint,
    ) -> Result<(LstmLm, Vec<EpochStats>), ResilienceError> {
        let state = decode_state(ckpt, usize::MAX)?;
        let model = match (state.best_ppl, state.best_model) {
            (Some(_), Some(mut m)) => {
                m.set_dropout_rng_state(state.best_rng);
                m
            }
            _ => {
                let mut m = state.model;
                m.set_dropout_rng_state(state.model_rng);
                m
            }
        };
        Ok((model, state.stats))
    }
}

fn encode_state(state: &LstmTrainState) -> Vec<u8> {
    serde_json::to_string(state)
        .expect("lstm trainer state serializes")
        .into_bytes()
}

fn decode_state(ckpt: &Checkpoint, n_train: usize) -> Result<LstmTrainState, ResilienceError> {
    if ckpt.kind != LSTM_CHECKPOINT_KIND {
        return Err(ResilienceError::Mismatch {
            reason: format!("kind {} != {LSTM_CHECKPOINT_KIND}", ckpt.kind),
        });
    }
    let text = std::str::from_utf8(&ckpt.payload)
        .map_err(|_| ResilienceError::corrupt("lstm payload is not UTF-8"))?;
    let state: LstmTrainState = serde_json::from_str(text)
        .map_err(|e| ResilienceError::corrupt(format!("lstm payload does not parse: {e}")))?;
    // n_train == usize::MAX skips the corpus check (rollback path).
    if n_train != usize::MAX && state.order.len() != n_train {
        return Err(ResilienceError::Mismatch {
            reason: format!(
                "checkpoint shuffled {} sequences, corpus has {n_train}",
                state.order.len()
            ),
        });
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LstmConfig;
    use rand::Rng;

    /// Markov data: 0→1→2→3 with occasional restarts.
    fn markov_sequences(n: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let len = 4 + rng.gen_range(0..4);
                let mut s = Vec::with_capacity(len);
                let mut cur = rng.gen_range(0..4usize);
                for _ in 0..len {
                    s.push(cur);
                    // Strong transition structure cur -> (cur + 1) % 4.
                    cur = if rng.gen::<f64>() < 0.9 {
                        (cur + 1) % 4
                    } else {
                        rng.gen_range(0..4)
                    };
                }
                s
            })
            .collect()
    }

    fn quick_opts(epochs: usize) -> TrainOptions {
        TrainOptions {
            epochs,
            batch_size: 8,
            adam: AdamOptions {
                learning_rate: 1e-2,
                ..Default::default()
            },
            patience: 0,
            seed: 5,
            verbose: false,
            ..Default::default()
        }
    }

    #[test]
    fn learns_markov_structure() {
        let train = markov_sequences(120, 1);
        let test = markov_sequences(30, 2);
        let mut model = LstmLm::new(
            LstmConfig {
                vocab_size: 4,
                hidden_size: 16,
                n_layers: 1,
                dropout: 0.0,
                ..Default::default()
            },
            3,
        );
        let before = model.perplexity(&test);
        let stats = Trainer::new(quick_opts(15)).fit(&mut model, &train, &[]);
        let after = model.perplexity(&test);
        assert!(after < before * 0.7, "perplexity {before} -> {after}");
        assert!(stats.last().unwrap().train_nll < stats[0].train_nll);
        // 90% deterministic transitions: ppl should get well under uniform 4.
        assert!(after < 2.5, "learned perplexity {after}");
        let d = model.predict_next(&[0]);
        assert!(d[1] > 0.5, "p(1|0) = {}", d[1]);
    }

    #[test]
    fn early_stopping_restores_best_model() {
        let train = markov_sequences(60, 3);
        let valid = markov_sequences(20, 4);
        let mut model = LstmLm::new(
            LstmConfig {
                vocab_size: 4,
                hidden_size: 8,
                n_layers: 1,
                dropout: 0.0,
                ..Default::default()
            },
            7,
        );
        let mut opts = quick_opts(30);
        opts.patience = 2;
        let stats = Trainer::new(opts).fit(&mut model, &train, &valid);
        // Model perplexity on validation equals the best epoch's perplexity.
        let best = stats
            .iter()
            .map(|s| s.valid_perplexity)
            .fold(f64::INFINITY, f64::min);
        let actual = model.perplexity(&valid);
        assert!(
            (actual - best).abs() < 1e-9,
            "restored model ppl {actual} vs best {best}"
        );
    }

    #[test]
    fn epoch_stats_have_expected_length_without_early_stop() {
        let train = markov_sequences(20, 5);
        let mut model = LstmLm::new(
            LstmConfig {
                vocab_size: 4,
                hidden_size: 6,
                n_layers: 1,
                dropout: 0.0,
                ..Default::default()
            },
            9,
        );
        let stats = Trainer::new(quick_opts(4)).fit(&mut model, &train, &[]);
        assert_eq!(stats.len(), 4);
        assert!(stats.iter().all(|s| s.valid_perplexity.is_nan()));
    }

    #[test]
    fn deterministic_given_seeds() {
        let train = markov_sequences(30, 6);
        let run = || {
            let mut m = LstmLm::new(
                LstmConfig {
                    vocab_size: 4,
                    hidden_size: 6,
                    n_layers: 1,
                    dropout: 0.1,
                    ..Default::default()
                },
                11,
            );
            Trainer::new(quick_opts(3)).fit(&mut m, &train, &[]);
            m.predict_next(&[0, 1])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lr_decay_schedule_is_applied_and_stable() {
        let train = markov_sequences(40, 8);
        let mut opts = quick_opts(6);
        opts.lr_decay = 0.5;
        opts.decay_after = 1;
        let mut model = LstmLm::new(
            LstmConfig {
                vocab_size: 4,
                hidden_size: 8,
                n_layers: 1,
                dropout: 0.0,
                ..Default::default()
            },
            15,
        );
        let stats = Trainer::new(opts).fit(&mut model, &train, &[]);
        assert_eq!(stats.len(), 6);
        assert!(stats.last().unwrap().train_nll < stats[0].train_nll);
    }

    #[test]
    #[should_panic(expected = "lr_decay")]
    fn rejects_bad_decay() {
        let mut opts = quick_opts(2);
        opts.lr_decay = 1.5;
        Trainer::new(opts);
    }

    #[test]
    fn two_layer_model_trains() {
        let train = markov_sequences(60, 7);
        let mut model = LstmLm::new(
            LstmConfig {
                vocab_size: 4,
                hidden_size: 10,
                n_layers: 2,
                dropout: 0.1,
                ..Default::default()
            },
            13,
        );
        let stats = Trainer::new(quick_opts(8)).fit(&mut model, &train, &[]);
        assert!(stats.last().unwrap().train_nll < stats[0].train_nll);
    }
}
