//! LSTM language models over product-acquisition sequences, from scratch.
//!
//! The paper's sequential model (Sections 3.4, 5): an embedding layer feeds
//! 1–3 stacked LSTM layers with dropout on the non-recurrent connections
//! (Zaremba et al. regularization), followed by a softmax over the token
//! alphabet. The number of nodes per layer equals the embedding size, as in
//! the paper's Figure 1 sweep (`{10, 100, 200, 300}` nodes × `{1, 2, 3}`
//! layers).
//!
//! Everything is implemented here: forward pass, full backpropagation
//! through time, Adam with global-norm gradient clipping, mini-batch
//! training with early stopping on validation perplexity, and next-product
//! predictive distributions for the recommender of Section 4.3.
//!
//! # Example
//!
//! ```
//! use hlm_lstm::{LstmConfig, LstmLm, TrainOptions, Trainer};
//!
//! // Sequences over a 4-product alphabet; the model sees BOS/EOS markers.
//! let seqs = vec![vec![0usize, 1, 2], vec![0, 1, 3], vec![0, 1, 2]];
//! let cfg = LstmConfig { vocab_size: 4, hidden_size: 8, n_layers: 1, ..Default::default() };
//! let mut model = LstmLm::new(cfg, 7);
//! let opts = TrainOptions { epochs: 3, ..Default::default() };
//! Trainer::new(opts).fit(&mut model, &seqs, &[]);
//! let dist = model.predict_next(&[0, 1]);
//! assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

pub mod cell;
pub mod gru;
pub mod model;
pub mod param;
pub mod trainer;

pub use cell::LstmCell;
pub use gru::GruCell;
pub use model::{CellKind, LstmConfig, LstmLm, RnnLayer};
pub use param::{AdamOptions, Param};
pub use trainer::{TrainOptions, Trainer, LSTM_CHECKPOINT_KIND};
