//! Conditional Heavy Hitters (CHH).
//!
//! The paper's time-dependent association-rule recommender (Sections 3.2,
//! 5.1) follows Mirylenka et al., *"Conditional heavy hitters: detecting
//! interesting correlations in data streams"* (VLDB Journal 2015): a
//! conditional heavy hitter is a `(context, item)` pair whose conditional
//! probability `P(item | context)` is large. The paper uses **exact** CHH
//! with context depth 2 (dependencies on the previous products up to second
//! order).
//!
//! This crate provides
//!
//! * [`ExactChh`] — exact conditional count tables for every context depth
//!   `0 ..= depth`, with longest-context-first backoff for prediction, the
//!   CHH recommender of Figure 3/4, and heavy-hitter enumeration; and
//! * [`StreamingChh`] — a budgeted streaming approximation (SpaceSaving
//!   counters per context, context eviction by support) for the
//!   memory-bounded regime the CHH literature targets; and
//! * [`AprioriModel`] — classic time-agnostic association-rule mining
//!   (support / confidence / lift over install-base itemsets), the other
//!   member of the Section-3.2 pattern-mining family.

pub mod apriori;
pub mod exact;
pub mod streaming;

pub use apriori::{AprioriConfig, AprioriModel, AssociationRule};
pub use exact::{ConditionalHeavyHitter, ExactChh};
pub use streaming::{SpaceSaving, StreamingChh};
