//! Classic (time-agnostic) association-rule mining with Apriori.
//!
//! Section 3.2 of the paper positions Association Rule mining as the
//! "partially time agnostic" member of the pattern-mining family, next to
//! the time-aware Conditional Heavy Hitters. This module mines frequent
//! product itemsets from install bases with the Apriori level-wise algorithm
//! and derives `antecedent ⇒ consequent` rules with support, confidence and
//! lift — plus a rule-based recommender for the same interface shape the
//! other models expose.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A mined association rule `antecedent ⇒ consequent` (consequent is a
/// single product, the recommendation use case).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociationRule {
    /// Sorted antecedent itemset.
    pub antecedent: Vec<usize>,
    /// Recommended product.
    pub consequent: usize,
    /// Fraction of baskets containing antecedent ∪ {consequent}.
    pub support: f64,
    /// `support(antecedent ∪ consequent) / support(antecedent)`.
    pub confidence: f64,
    /// `confidence / support(consequent)` — how much more likely the
    /// consequent is given the antecedent than overall.
    pub lift: f64,
}

/// Mining parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AprioriConfig {
    /// Minimum itemset support (fraction of baskets).
    pub min_support: f64,
    /// Minimum rule confidence.
    pub min_confidence: f64,
    /// Largest itemset size explored (antecedents have up to `max_len − 1`
    /// items).
    pub max_len: usize,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        AprioriConfig {
            min_support: 0.05,
            min_confidence: 0.3,
            max_len: 3,
        }
    }
}

impl AprioriConfig {
    fn validate(&self) {
        assert!(
            self.min_support > 0.0 && self.min_support <= 1.0,
            "min_support must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.min_confidence),
            "min_confidence must be in [0, 1]"
        );
        assert!(self.max_len >= 2, "rules need itemsets of at least 2");
    }
}

/// Frequent itemsets and the rules derived from them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AprioriModel {
    vocab_size: usize,
    n_baskets: usize,
    /// Support per frequent itemset (sorted item vectors).
    itemset_support: Vec<(Vec<usize>, f64)>,
    /// All rules meeting the thresholds, sorted by confidence descending
    /// (ties: higher support, then lexicographic antecedent).
    rules: Vec<AssociationRule>,
    /// Rules indexed by antecedent for the recommender.
    #[serde(skip)]
    by_antecedent: HashMap<Vec<usize>, Vec<usize>>,
}

impl AprioriModel {
    /// Mines frequent itemsets and rules from product baskets (install-base
    /// sets as index vectors; duplicates within a basket are ignored).
    ///
    /// # Panics
    /// Panics on invalid configuration, an empty basket list, or items
    /// outside the vocabulary.
    pub fn mine(vocab_size: usize, baskets: &[Vec<usize>], cfg: &AprioriConfig) -> Self {
        cfg.validate();
        assert!(!baskets.is_empty(), "need at least one basket");
        let n = baskets.len() as f64;
        let sets: Vec<HashSet<usize>> = baskets
            .iter()
            .map(|b| {
                b.iter()
                    .map(|&i| {
                        assert!(
                            i < vocab_size,
                            "item {i} outside vocabulary of {vocab_size}"
                        );
                        i
                    })
                    .collect()
            })
            .collect();

        // Level 1: frequent single items.
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for s in &sets {
            for &i in s {
                *counts.entry(vec![i]).or_insert(0) += 1;
            }
        }
        let min_count = (cfg.min_support * n).ceil() as usize;
        let mut frequent: Vec<Vec<Vec<usize>>> = Vec::new();
        let mut support: HashMap<Vec<usize>, f64> = HashMap::new();
        let level1: Vec<Vec<usize>> = {
            let mut v: Vec<Vec<usize>> = counts
                .iter()
                .filter(|(_, &c)| c >= min_count.max(1))
                .map(|(k, _)| k.clone())
                .collect();
            v.sort();
            v
        };
        for is in &level1 {
            support.insert(is.clone(), counts[is] as f64 / n);
        }
        frequent.push(level1);

        // Level k: join + prune + count.
        for k in 2..=cfg.max_len {
            let prev = &frequent[k - 2];
            if prev.is_empty() {
                break;
            }
            let prev_set: HashSet<&Vec<usize>> = prev.iter().collect();
            let mut candidates: HashSet<Vec<usize>> = HashSet::new();
            for (ai, a) in prev.iter().enumerate() {
                for b in prev.iter().skip(ai + 1) {
                    // Classic join: first k-2 items equal.
                    if a[..k - 2] == b[..k - 2] {
                        let mut cand = a.clone();
                        cand.push(b[k - 2]);
                        cand.sort_unstable();
                        // Prune: every (k-1)-subset must be frequent.
                        let all_frequent = (0..cand.len()).all(|drop| {
                            let mut sub = cand.clone();
                            sub.remove(drop);
                            prev_set.contains(&sub)
                        });
                        if all_frequent {
                            candidates.insert(cand);
                        }
                    }
                }
            }
            let mut level: Vec<Vec<usize>> = Vec::new();
            for cand in candidates {
                let c = sets
                    .iter()
                    .filter(|s| cand.iter().all(|i| s.contains(i)))
                    .count();
                if c >= min_count.max(1) {
                    support.insert(cand.clone(), c as f64 / n);
                    level.push(cand);
                }
            }
            level.sort();
            frequent.push(level);
        }

        // Rules: for each frequent itemset of size >= 2, each item as the
        // consequent with the rest as the antecedent.
        let mut rules: Vec<AssociationRule> = Vec::new();
        for level in frequent.iter().skip(1) {
            for itemset in level {
                let s_full = support[itemset];
                for (pos, &consequent) in itemset.iter().enumerate() {
                    let mut antecedent = itemset.clone();
                    antecedent.remove(pos);
                    let s_ant = support[&antecedent];
                    let confidence = s_full / s_ant;
                    if confidence < cfg.min_confidence {
                        continue;
                    }
                    let s_cons = support[&vec![consequent]];
                    rules.push(AssociationRule {
                        antecedent,
                        consequent,
                        support: s_full,
                        confidence,
                        lift: confidence / s_cons,
                    });
                }
            }
        }
        rules.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .expect("finite confidences")
                .then(b.support.partial_cmp(&a.support).expect("finite supports"))
                .then(a.antecedent.cmp(&b.antecedent))
                .then(a.consequent.cmp(&b.consequent))
        });

        let mut itemset_support: Vec<(Vec<usize>, f64)> = support.into_iter().collect();
        itemset_support.sort_by(|a, b| a.0.cmp(&b.0));
        let mut model = AprioriModel {
            vocab_size,
            n_baskets: baskets.len(),
            itemset_support,
            rules,
            by_antecedent: HashMap::new(),
        };
        model.rebuild_index();
        model
    }

    /// Rebuilds the antecedent index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.by_antecedent.clear();
        for (i, r) in self.rules.iter().enumerate() {
            self.by_antecedent
                .entry(r.antecedent.clone())
                .or_default()
                .push(i);
        }
    }

    /// All mined rules, best first.
    pub fn rules(&self) -> &[AssociationRule] {
        &self.rules
    }

    /// Number of frequent itemsets (all sizes).
    pub fn frequent_itemset_count(&self) -> usize {
        self.itemset_support.len()
    }

    /// Support of an itemset, if frequent.
    pub fn support_of(&self, itemset: &[usize]) -> Option<f64> {
        let mut key = itemset.to_vec();
        key.sort_unstable();
        self.itemset_support
            .binary_search_by(|(k, _)| k.as_slice().cmp(key.as_slice()))
            .ok()
            .map(|i| self.itemset_support[i].1)
    }

    /// Rule-based recommendation scores: for every product, the maximum
    /// confidence among rules whose antecedent is contained in the owned
    /// set (0 when no rule fires). Owned products score 0.
    pub fn predict(&self, owned: &[usize]) -> Vec<f64> {
        let owned_set: HashSet<usize> = owned.iter().copied().collect();
        let mut scores = vec![0.0f64; self.vocab_size];
        for r in &self.rules {
            if owned_set.contains(&r.consequent) {
                continue;
            }
            if r.antecedent.iter().all(|i| owned_set.contains(i)) {
                let s = &mut scores[r.consequent];
                if r.confidence > *s {
                    *s = r.confidence;
                }
            }
        }
        scores
    }

    /// Baskets the model was mined from.
    pub fn n_baskets(&self) -> usize {
        self.n_baskets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Baskets with a planted rule {0,1} => 2 and independent item 3.
    fn baskets() -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for i in 0..40 {
            match i % 4 {
                0 | 1 => out.push(vec![0, 1, 2]), // rule holds
                2 => out.push(vec![0, 1, 2, 3]),  // rule holds + noise
                _ => out.push(vec![0, 3]),        // antecedent incomplete
            }
        }
        out
    }

    #[test]
    fn mines_the_planted_rule_with_exact_statistics() {
        let model = AprioriModel::mine(4, &baskets(), &AprioriConfig::default());
        let rule = model
            .rules()
            .iter()
            .find(|r| r.antecedent == vec![0, 1] && r.consequent == 2)
            .expect("planted rule mined");
        // {0,1,2} appears in 30/40 baskets; {0,1} in 30/40 -> confidence 1.
        assert!((rule.support - 0.75).abs() < 1e-12);
        assert!((rule.confidence - 1.0).abs() < 1e-12);
        // support(2) = 0.75 -> lift = 1/0.75.
        assert!((rule.lift - 1.0 / 0.75).abs() < 1e-12);
    }

    #[test]
    fn support_threshold_prunes() {
        let strict = AprioriModel::mine(
            4,
            &baskets(),
            &AprioriConfig {
                min_support: 0.9,
                ..Default::default()
            },
        );
        // Only item 0 appears in >= 90% of baskets.
        assert_eq!(strict.frequent_itemset_count(), 1);
        assert!(strict.rules().is_empty());
        let loose = AprioriModel::mine(
            4,
            &baskets(),
            &AprioriConfig {
                min_support: 0.05,
                ..Default::default()
            },
        );
        assert!(loose.frequent_itemset_count() > strict.frequent_itemset_count());
    }

    #[test]
    fn apriori_monotonicity_holds() {
        // Every subset of a frequent itemset is frequent.
        let model = AprioriModel::mine(4, &baskets(), &AprioriConfig::default());
        for (itemset, s) in &model.itemset_support {
            assert!(*s > 0.0);
            if itemset.len() >= 2 {
                for drop in 0..itemset.len() {
                    let mut sub = itemset.clone();
                    sub.remove(drop);
                    let sub_support = model.support_of(&sub).expect("subset must be frequent");
                    assert!(sub_support >= *s - 1e-12, "{sub:?} < {itemset:?}");
                }
            }
        }
    }

    #[test]
    fn recommender_fires_only_on_satisfied_antecedents() {
        let model = AprioriModel::mine(4, &baskets(), &AprioriConfig::default());
        let scores = model.predict(&[0, 1]);
        assert!(
            (scores[2] - 1.0).abs() < 1e-12,
            "rule {{0,1}} => 2 fires: {scores:?}"
        );
        assert_eq!(scores[0], 0.0, "owned products never recommended");
        // With only item 3 owned, the {0,1} rule must not fire.
        let scores = model.predict(&[3]);
        assert!(scores[2] < 1.0);
    }

    #[test]
    fn rules_sorted_by_confidence() {
        let model = AprioriModel::mine(
            4,
            &baskets(),
            &AprioriConfig {
                min_confidence: 0.0,
                ..Default::default()
            },
        );
        for pair in model.rules().windows(2) {
            assert!(pair[0].confidence >= pair[1].confidence - 1e-12);
        }
    }

    #[test]
    fn max_len_bounds_itemset_size() {
        let model = AprioriModel::mine(
            4,
            &baskets(),
            &AprioriConfig {
                max_len: 2,
                min_support: 0.05,
                min_confidence: 0.0,
            },
        );
        assert!(model.itemset_support.iter().all(|(k, _)| k.len() <= 2));
        assert!(model.rules().iter().all(|r| r.antecedent.len() == 1));
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn rejects_out_of_vocab_items() {
        AprioriModel::mine(2, &[vec![5]], &AprioriConfig::default());
    }

    #[test]
    fn deterministic_output() {
        let a = AprioriModel::mine(4, &baskets(), &AprioriConfig::default());
        let b = AprioriModel::mine(4, &baskets(), &AprioriConfig::default());
        assert_eq!(a.rules(), b.rules());
    }
}
