//! Exact conditional heavy hitters.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A `(context, item)` pair with its empirical conditional probability and
/// support.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionalHeavyHitter {
    /// The conditioning context (most recent product last).
    pub context: Vec<usize>,
    /// The predicted next product.
    pub item: usize,
    /// `P(item | context)` estimated from counts.
    pub probability: f64,
    /// Number of observations of the context.
    pub support: u64,
}

/// Serde representation for the context tables: JSON object keys must be
/// strings, so `Vec<usize>`-keyed maps are (de)serialized as sorted pair
/// lists.
mod tables_serde {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;

    type Tables = Vec<HashMap<Vec<usize>, HashMap<usize, u64>>>;
    type TableEntries<'a> = Vec<Vec<(&'a Vec<usize>, &'a HashMap<usize, u64>)>>;
    type OwnedTableEntries = Vec<Vec<(Vec<usize>, HashMap<usize, u64>)>>;

    pub fn serialize<S: Serializer>(tables: &Tables, s: S) -> Result<S::Ok, S::Error> {
        let as_pairs: TableEntries<'_> = tables
            .iter()
            .map(|t| {
                let mut entries: Vec<_> = t.iter().collect();
                entries.sort_by(|a, b| a.0.cmp(b.0));
                entries
            })
            .collect();
        as_pairs.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Tables, D::Error> {
        let as_pairs: OwnedTableEntries = Vec::deserialize(d)?;
        Ok(as_pairs
            .into_iter()
            .map(|t| t.into_iter().collect())
            .collect())
    }
}

/// Exact conditional count tables up to a fixed context depth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExactChh {
    depth: usize,
    vocab_size: usize,
    /// `tables[d]` maps a length-`d` context to its next-product counts.
    #[serde(with = "tables_serde")]
    tables: Vec<HashMap<Vec<usize>, HashMap<usize, u64>>>,
}

impl ExactChh {
    /// Fits exact conditional counts on product sequences for all context
    /// depths `0 ..= depth`. The paper's setting is `depth = 2`.
    ///
    /// # Panics
    /// Panics if `depth == 0` is fine but `vocab_size == 0`, or a product is
    /// out of range.
    pub fn fit(depth: usize, vocab_size: usize, sequences: &[Vec<usize>]) -> Self {
        assert!(vocab_size >= 1, "empty vocabulary");
        let mut tables: Vec<HashMap<Vec<usize>, HashMap<usize, u64>>> =
            vec![HashMap::new(); depth + 1];
        for seq in sequences {
            for &w in seq {
                assert!(
                    w < vocab_size,
                    "product {w} outside vocabulary of {vocab_size}"
                );
            }
            for (pos, &w) in seq.iter().enumerate() {
                for d in 0..=depth.min(pos) {
                    let ctx = seq[pos - d..pos].to_vec();
                    *tables[d].entry(ctx).or_default().entry(w).or_insert(0) += 1;
                }
            }
        }
        ExactChh {
            depth,
            vocab_size,
            tables,
        }
    }

    /// Maximum context depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Product vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Number of observations of a context (its support).
    pub fn context_support(&self, context: &[usize]) -> u64 {
        if context.len() > self.depth {
            return 0;
        }
        self.tables[context.len()]
            .get(context)
            .map(|nexts| nexts.values().sum())
            .unwrap_or(0)
    }

    /// Exact `P(item | context)` from counts; 0 when the context was never
    /// observed.
    pub fn conditional_probability(&self, context: &[usize], item: usize) -> f64 {
        if context.len() > self.depth {
            return 0.0;
        }
        match self.tables[context.len()].get(context) {
            Some(nexts) => {
                let total: u64 = nexts.values().sum();
                if total == 0 {
                    0.0
                } else {
                    nexts.get(&item).copied().unwrap_or(0) as f64 / total as f64
                }
            }
            None => 0.0,
        }
    }

    /// Next-product scores for a history, using the longest observed suffix
    /// of the history (up to `depth`) as context — the CHH recommender. The
    /// scores are the exact conditional probabilities of that context (they
    /// sum to 1 when the context was observed, to 0 for a cold start with an
    /// empty training table).
    pub fn predict_next(&self, history: &[usize]) -> Vec<f64> {
        let mut out = vec![0.0; self.vocab_size];
        for d in (0..=self.depth.min(history.len())).rev() {
            let ctx = &history[history.len() - d..];
            if let Some(nexts) = self.tables[d].get(ctx) {
                let total: u64 = nexts.values().sum();
                if total > 0 {
                    for (&item, &c) in nexts {
                        out[item] = c as f64 / total as f64;
                    }
                    return out;
                }
            }
        }
        out
    }

    /// Enumerates every conditional heavy hitter at exactly depth `d`:
    /// pairs with `P(item | context) ≥ min_probability` and context support
    /// `≥ min_support`, sorted by probability descending (ties: larger
    /// support first, then lexicographic context for determinism).
    ///
    /// # Panics
    /// Panics if `d > depth`.
    pub fn heavy_hitters(
        &self,
        d: usize,
        min_probability: f64,
        min_support: u64,
    ) -> Vec<ConditionalHeavyHitter> {
        assert!(
            d <= self.depth,
            "depth {d} exceeds fitted depth {}",
            self.depth
        );
        let mut out = Vec::new();
        for (ctx, nexts) in &self.tables[d] {
            let total: u64 = nexts.values().sum();
            if total < min_support || total == 0 {
                continue;
            }
            for (&item, &c) in nexts {
                let p = c as f64 / total as f64;
                if p >= min_probability {
                    out.push(ConditionalHeavyHitter {
                        context: ctx.clone(),
                        item,
                        probability: p,
                        support: total,
                    });
                }
            }
        }
        out.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .expect("finite probabilities")
                .then(b.support.cmp(&a.support))
                .then(a.context.cmp(&b.context))
                .then(a.item.cmp(&b.item))
        });
        out
    }

    /// Total number of distinct contexts stored across all depths
    /// (memory diagnostic, compared against [`StreamingChh`]).
    pub fn context_count(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 → 1 always; 1 → 2 (75%) or 3 (25%).
    fn sequences() -> Vec<Vec<usize>> {
        let mut seqs = vec![vec![0, 1, 2]; 3];
        seqs.push(vec![0, 1, 3]);
        seqs
    }

    #[test]
    fn conditional_probabilities_are_exact() {
        let chh = ExactChh::fit(2, 4, &sequences());
        assert_eq!(chh.conditional_probability(&[0], 1), 1.0);
        assert_eq!(chh.conditional_probability(&[1], 2), 0.75);
        assert_eq!(chh.conditional_probability(&[1], 3), 0.25);
        assert_eq!(chh.conditional_probability(&[0, 1], 2), 0.75);
        assert_eq!(chh.conditional_probability(&[3], 0), 0.0);
        assert_eq!(chh.context_support(&[1]), 4);
    }

    #[test]
    fn depth_zero_is_the_marginal() {
        let chh = ExactChh::fit(2, 4, &sequences());
        // 12 tokens: four 0s, four 1s, three 2s, one 3.
        assert_eq!(chh.conditional_probability(&[], 0), 4.0 / 12.0);
        assert_eq!(chh.conditional_probability(&[], 3), 1.0 / 12.0);
    }

    #[test]
    fn predict_uses_longest_observed_context() {
        let chh = ExactChh::fit(2, 4, &sequences());
        let d = chh.predict_next(&[0, 1]);
        assert_eq!(d[2], 0.75);
        assert_eq!(d[3], 0.25);
        // Unseen context [3, 3] backs off to [3] (also unseen as context
        // except terminal) then to the marginal.
        let d2 = chh.predict_next(&[3, 3]);
        assert!(
            (d2.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "marginal backoff: {d2:?}"
        );
    }

    #[test]
    fn predict_with_empty_model_is_zero() {
        let chh = ExactChh::fit(2, 4, &[]);
        assert_eq!(chh.predict_next(&[0]), vec![0.0; 4]);
    }

    #[test]
    fn heavy_hitters_threshold_and_sort() {
        let chh = ExactChh::fit(2, 4, &sequences());
        let hh = chh.heavy_hitters(1, 0.5, 2);
        // Expect (ctx [0] -> 1, p=1.0, support 4) and (ctx [1] -> 2, p=0.75).
        assert_eq!(hh.len(), 2);
        assert_eq!(hh[0].context, vec![0]);
        assert_eq!(hh[0].item, 1);
        assert_eq!(hh[0].probability, 1.0);
        assert_eq!(hh[1].item, 2);
        // Raising the bar filters everything but the deterministic rule.
        let strict = chh.heavy_hitters(1, 0.9, 1);
        assert_eq!(strict.len(), 1);
        // Support filter: depth-2 contexts have support ≤ 4.
        let none = chh.heavy_hitters(2, 0.0, 100);
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds fitted depth")]
    fn heavy_hitters_rejects_too_deep() {
        ExactChh::fit(1, 4, &sequences()).heavy_hitters(2, 0.1, 1);
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn fit_rejects_out_of_vocab() {
        ExactChh::fit(1, 2, &[vec![7]]);
    }

    #[test]
    fn context_count_grows_with_depth() {
        let seqs = sequences();
        let d1 = ExactChh::fit(1, 4, &seqs).context_count();
        let d2 = ExactChh::fit(2, 4, &seqs).context_count();
        assert!(d2 > d1);
    }

    #[test]
    fn probabilities_per_context_sum_to_one() {
        let chh = ExactChh::fit(2, 4, &sequences());
        for ctx in [vec![], vec![0], vec![1], vec![0, 1]] {
            let total: f64 = (0..4).map(|i| chh.conditional_probability(&ctx, i)).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "context {ctx:?} sums to {total}"
            );
        }
    }
}
