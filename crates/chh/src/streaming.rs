//! Budgeted streaming approximation of conditional heavy hitters.
//!
//! Streams cannot afford the exact tables of [`crate::ExactChh`], so the CHH
//! literature bounds memory two ways: a SpaceSaving summary of the next-item
//! counts *within* each context, and a global cap on the number of tracked
//! contexts with eviction of the weakest context when the budget is
//! exhausted (the "sparse" strategy of the VLDB Journal paper).

use crate::exact::ConditionalHeavyHitter;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Classic SpaceSaving counter set (Metwally et al.): tracks up to `k` items
/// with guaranteed overestimation error ≤ `min monitored count`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpaceSaving {
    capacity: usize,
    /// item → (count, error)
    counters: HashMap<usize, (u64, u64)>,
    total: u64,
}

impl SpaceSaving {
    /// Creates a summary tracking at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SpaceSaving needs at least one counter");
        SpaceSaving {
            capacity,
            counters: HashMap::with_capacity(capacity),
            total: 0,
        }
    }

    /// Observes one occurrence of `item`.
    pub fn observe(&mut self, item: usize) {
        self.total += 1;
        if let Some(entry) = self.counters.get_mut(&item) {
            entry.0 += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item, (1, 0));
            return;
        }
        // Replace the minimum-count item; inherit its count as error bound.
        let (&victim, &(min_count, _)) = self
            .counters
            .iter()
            .min_by_key(|(&it, &(c, _))| (c, it))
            .expect("capacity > 0 so counters non-empty");
        self.counters.remove(&victim);
        self.counters.insert(item, (min_count + 1, min_count));
    }

    /// Estimated count of an item (upper bound; 0 if not monitored).
    pub fn estimate(&self, item: usize) -> u64 {
        self.counters.get(&item).map(|&(c, _)| c).unwrap_or(0)
    }

    /// Guaranteed lower bound on an item's true count.
    pub fn lower_bound(&self, item: usize) -> u64 {
        self.counters.get(&item).map(|&(c, e)| c - e).unwrap_or(0)
    }

    /// Total observations fed into this summary.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Monitored `(item, estimated count)` pairs, count-descending
    /// (ties by item id for determinism).
    pub fn items(&self) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self.counters.iter().map(|(&i, &(c, _))| (i, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// Serde representation for the context map: JSON object keys must be
/// strings, so the `Vec<usize>`-keyed map round-trips as a sorted pair list.
mod contexts_serde {
    use super::SpaceSaving;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;

    pub fn serialize<S: Serializer>(
        map: &HashMap<Vec<usize>, SpaceSaving>,
        s: S,
    ) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(&Vec<usize>, &SpaceSaving)> = map.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> Result<HashMap<Vec<usize>, SpaceSaving>, D::Error> {
        let entries: Vec<(Vec<usize>, SpaceSaving)> = Vec::deserialize(d)?;
        Ok(entries.into_iter().collect())
    }
}

/// Streaming conditional-heavy-hitter sketch with bounded memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamingChh {
    depth: usize,
    vocab_size: usize,
    max_contexts: usize,
    counters_per_context: usize,
    /// context → SpaceSaving over next items.
    #[serde(with = "contexts_serde")]
    contexts: HashMap<Vec<usize>, SpaceSaving>,
}

impl StreamingChh {
    /// Creates a sketch conditioning on exactly `depth` previous products,
    /// tracking at most `max_contexts` contexts with
    /// `counters_per_context` SpaceSaving counters each.
    ///
    /// # Panics
    /// Panics on zero budgets or empty vocabulary.
    pub fn new(
        depth: usize,
        vocab_size: usize,
        max_contexts: usize,
        counters_per_context: usize,
    ) -> Self {
        assert!(vocab_size >= 1, "empty vocabulary");
        assert!(max_contexts >= 1, "need at least one context slot");
        assert!(
            counters_per_context >= 1,
            "need at least one counter per context"
        );
        StreamingChh {
            depth,
            vocab_size,
            max_contexts,
            counters_per_context,
            contexts: HashMap::with_capacity(max_contexts),
        }
    }

    /// Feeds a whole sequence through the sketch.
    ///
    /// # Panics
    /// Panics on out-of-vocabulary products.
    pub fn observe_sequence(&mut self, seq: &[usize]) {
        for &w in seq {
            assert!(w < self.vocab_size, "product {w} outside vocabulary");
        }
        for pos in self.depth..seq.len() {
            let ctx = seq[pos - self.depth..pos].to_vec();
            self.observe(ctx, seq[pos]);
        }
    }

    /// Observes one `(context, next)` transition.
    fn observe(&mut self, ctx: Vec<usize>, next: usize) {
        if !self.contexts.contains_key(&ctx) && self.contexts.len() >= self.max_contexts {
            // Evict the context with the smallest support (ties by key for
            // determinism).
            let victim = self
                .contexts
                .iter()
                .min_by(|a, b| a.1.total().cmp(&b.1.total()).then(a.0.cmp(b.0)))
                .map(|(k, _)| k.clone())
                .expect("max_contexts >= 1");
            self.contexts.remove(&victim);
        }
        self.contexts
            .entry(ctx)
            .or_insert_with(|| SpaceSaving::new(self.counters_per_context))
            .observe(next);
    }

    /// Number of contexts currently tracked.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// Estimated `P(item | context)`; 0 for untracked contexts.
    pub fn conditional_probability(&self, context: &[usize], item: usize) -> f64 {
        match self.contexts.get(context) {
            Some(ss) if ss.total() > 0 => ss.estimate(item) as f64 / ss.total() as f64,
            _ => 0.0,
        }
    }

    /// Next-product scores from the last `depth` products of the history
    /// (zeros when the context is untracked or the history is too short).
    pub fn predict_next(&self, history: &[usize]) -> Vec<f64> {
        let mut out = vec![0.0; self.vocab_size];
        if history.len() < self.depth {
            return out;
        }
        let ctx = &history[history.len() - self.depth..];
        if let Some(ss) = self.contexts.get(ctx) {
            if ss.total() > 0 {
                for (item, count) in ss.items() {
                    out[item] = count as f64 / ss.total() as f64;
                }
            }
        }
        out
    }

    /// Approximate conditional heavy hitters: tracked pairs with estimated
    /// conditional probability `≥ min_probability` and context support
    /// `≥ min_support`, sorted like the exact enumeration.
    pub fn heavy_hitters(
        &self,
        min_probability: f64,
        min_support: u64,
    ) -> Vec<ConditionalHeavyHitter> {
        let mut out = Vec::new();
        for (ctx, ss) in &self.contexts {
            if ss.total() < min_support || ss.total() == 0 {
                continue;
            }
            for (item, count) in ss.items() {
                let p = count as f64 / ss.total() as f64;
                if p >= min_probability {
                    out.push(ConditionalHeavyHitter {
                        context: ctx.clone(),
                        item,
                        probability: p,
                        support: ss.total(),
                    });
                }
            }
        }
        out.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .expect("finite probabilities")
                .then(b.support.cmp(&a.support))
                .then(a.context.cmp(&b.context))
                .then(a.item.cmp(&b.item))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactChh;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn spacesaving_exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(10);
        for _ in 0..5 {
            ss.observe(1);
        }
        ss.observe(2);
        assert_eq!(ss.estimate(1), 5);
        assert_eq!(ss.estimate(2), 1);
        assert_eq!(ss.lower_bound(1), 5);
        assert_eq!(ss.total(), 6);
    }

    #[test]
    fn spacesaving_overestimates_but_never_underestimates_heavy_items() {
        let mut ss = SpaceSaving::new(3);
        // Heavy item 0 (60 times), then noise items cycling.
        for i in 0..200 {
            if i % 2 == 0 {
                ss.observe(0);
            } else {
                ss.observe(1 + (i % 7));
            }
        }
        assert!(
            ss.estimate(0) >= 100,
            "heavy item estimate {}",
            ss.estimate(0)
        );
        // SpaceSaving invariant: estimate >= true count for monitored items.
        let items = ss.items();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].0, 0, "heaviest item survives");
    }

    #[test]
    fn spacesaving_eviction_keeps_capacity() {
        let mut ss = SpaceSaving::new(2);
        for item in 0..10 {
            ss.observe(item);
        }
        assert_eq!(ss.items().len(), 2);
        assert_eq!(ss.total(), 10);
    }

    fn markov_stream(n: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut cur = rng.gen_range(0..6usize);
                (0..12)
                    .map(|_| {
                        let out = cur;
                        cur = if rng.gen::<f64>() < 0.8 {
                            (cur + 1) % 6
                        } else {
                            rng.gen_range(0..6)
                        };
                        out
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn streaming_tracks_strong_rules() {
        let seqs = markov_stream(200, 1);
        let mut s = StreamingChh::new(1, 6, 100, 6);
        for seq in &seqs {
            s.observe_sequence(seq);
        }
        // P(1 | 0) ≈ 0.8 + noise share.
        let p = s.conditional_probability(&[0], 1);
        assert!((0.7..0.95).contains(&p), "p(1|0) = {p}");
    }

    #[test]
    fn streaming_approximates_exact_with_ample_budget() {
        let seqs = markov_stream(100, 2);
        let exact = ExactChh::fit(2, 6, &seqs);
        let mut stream = StreamingChh::new(2, 6, 10_000, 6);
        for seq in &seqs {
            stream.observe_sequence(seq);
        }
        // With budget >> distinct contexts the estimates are exact.
        for a in 0..6 {
            for b in 0..6 {
                for item in 0..6 {
                    let pe = exact.conditional_probability(&[a, b], item);
                    let ps = stream.conditional_probability(&[a, b], item);
                    assert!(
                        (pe - ps).abs() < 1e-12,
                        "ctx [{a},{b}] item {item}: exact {pe} stream {ps}"
                    );
                }
            }
        }
    }

    #[test]
    fn context_budget_is_enforced() {
        let seqs = markov_stream(300, 3);
        let mut s = StreamingChh::new(2, 6, 8, 4);
        for seq in &seqs {
            s.observe_sequence(seq);
        }
        assert!(s.context_count() <= 8);
        // Strong transitions should still surface as heavy hitters.
        let hh = s.heavy_hitters(0.5, 10);
        assert!(!hh.is_empty(), "expected surviving heavy hitters");
    }

    #[test]
    fn short_history_yields_no_prediction() {
        let mut s = StreamingChh::new(2, 6, 10, 4);
        s.observe_sequence(&[0, 1, 2, 3]);
        assert_eq!(s.predict_next(&[0]), vec![0.0; 6]);
        let d = s.predict_next(&[0, 1]);
        assert!(d[2] > 0.99, "observed transition must be predicted: {d:?}");
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn observe_rejects_out_of_vocab() {
        StreamingChh::new(1, 2, 4, 2).observe_sequence(&[5]);
    }

    #[test]
    fn heavy_hitters_sorted_desc() {
        let seqs = markov_stream(150, 4);
        let mut s = StreamingChh::new(1, 6, 50, 6);
        for seq in &seqs {
            s.observe_sequence(seq);
        }
        let hh = s.heavy_hitters(0.1, 5);
        for pair in hh.windows(2) {
            assert!(pair[0].probability >= pair[1].probability);
        }
    }
}
