//! Planted IT profiles, global popularity skew and acquisition stages.
//!
//! A *profile* is a distribution over the 38 product categories — the ground
//! truth analogue of an LDA topic. The three built-in profiles mirror the
//! cluster structure visible in the paper's t-SNE maps (Figures 8–9):
//! hardware categories huddle together, business software huddles together,
//! and communications / virtualization forms a third group.

use hlm_corpus::{ProductId, Vocabulary};
use serde::{Deserialize, Serialize};

/// A named planted profile: relative product weights (not necessarily
/// normalized).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileSpec {
    /// Human-readable label.
    pub name: String,
    /// `(category name, relative weight)` pairs; categories not listed get
    /// weight zero before the popularity background is mixed in.
    pub weights: Vec<(String, f64)>,
}

/// The resolved planted structure: profile-product distributions, the
/// popularity background and the per-product acquisition stage.
#[derive(Debug, Clone)]
pub struct PlantedProfiles {
    /// `K_true x M` row-stochastic profile-product distributions (before
    /// popularity mixing).
    pub profile_dists: Vec<Vec<f64>>,
    /// Global popularity background distribution over products.
    pub popularity: Vec<f64>,
    /// Acquisition stage of each product (0 = foundational, larger = later).
    pub stages: Vec<f64>,
    /// Profile names.
    pub names: Vec<String>,
}

/// Categories that are near-ubiquitous across companies regardless of
/// profile, with their background weights. This is what biases naive
/// company distances toward popular products (Section 3.1 of the paper).
const POPULAR: &[(&str, f64)] = &[
    ("OS", 16.0),
    ("network_HW", 12.0),
    ("printers", 9.0),
    ("electronics_PCs_SW", 5.0),
    ("collaboration", 4.0),
    ("server_HW", 4.0),
    ("security_management", 3.0),
    ("telephony", 2.0),
];

/// Acquisition stages: foundational IT first, virtualization/cloud last.
/// Products omitted default to stage 3.
const STAGES: &[(&str, f64)] = &[
    ("OS", 0.0),
    ("network_HW", 0.0),
    ("printers", 0.0),
    ("electronics_PCs_SW", 0.5),
    ("server_HW", 1.0),
    ("server_SW", 1.0),
    ("DBMS", 1.0),
    ("telephony", 1.0),
    ("collaboration", 1.5),
    ("storage_HW", 2.0),
    ("network_SW", 2.0),
    ("security_management", 2.0),
    ("financial_apps", 2.0),
    ("document_management", 2.5),
    ("communication_tech", 2.5),
    ("midrange", 2.5),
    ("mainframs", 2.5),
    ("media", 3.0),
    ("commerce", 3.0),
    ("retail", 3.0),
    ("HW_other", 3.0),
    ("HR_human_management", 3.0),
    ("search_engine", 3.0),
    ("contact_center", 3.0),
    ("IT_infrastructure", 3.0),
    ("mobile_tech", 3.5),
    ("remote", 3.5),
    ("product_lifecycle", 3.5),
    ("asset_performance", 3.5),
    ("system_security_services", 3.5),
    ("data_archiving", 3.5),
    ("hypervisor", 4.0),
    ("virtualization_server", 4.5),
    ("virtualization_platform", 4.5),
    ("virtualization_apps", 4.5),
    ("cloud_infrastructure", 5.0),
    ("platform_as_a_service", 5.0),
    ("disaster_recovery", 5.0),
];

/// The three built-in profiles.
pub fn standard_profiles() -> Vec<ProfileSpec> {
    let mk = |name: &str, items: &[(&str, f64)]| ProfileSpec {
        name: name.to_string(),
        weights: items.iter().map(|&(n, w)| (n.to_string(), w)).collect(),
    };
    vec![
        mk(
            "datacenter_hardware",
            &[
                ("server_HW", 16.0),
                ("storage_HW", 13.0),
                ("mainframs", 4.0),
                ("midrange", 4.0),
                ("HW_other", 3.0),
                ("data_archiving", 4.0),
                ("disaster_recovery", 3.0),
                ("IT_infrastructure", 4.0),
                ("network_HW", 5.0),
                ("hypervisor", 3.0),
                ("server_SW", 4.0),
                ("printers", 2.0),
                ("OS", 3.0),
            ],
        ),
        mk(
            "enterprise_software",
            &[
                ("DBMS", 14.0),
                ("financial_apps", 11.0),
                ("HR_human_management", 5.0),
                ("document_management", 5.0),
                ("commerce", 4.0),
                ("retail", 4.0),
                ("product_lifecycle", 3.0),
                ("media", 3.0),
                ("collaboration", 5.0),
                ("electronics_PCs_SW", 4.0),
                ("search_engine", 3.0),
                ("asset_performance", 2.0),
                ("OS", 2.0),
            ],
        ),
        mk(
            "comms_cloud_virtualization",
            &[
                ("telephony", 12.0),
                ("contact_center", 7.0),
                ("communication_tech", 9.0),
                ("mobile_tech", 4.0),
                ("remote", 3.0),
                ("cloud_infrastructure", 9.0),
                ("platform_as_a_service", 4.0),
                ("virtualization_server", 4.0),
                ("virtualization_platform", 4.0),
                ("virtualization_apps", 3.0),
                ("network_SW", 4.0),
                ("security_management", 4.0),
                ("system_security_services", 3.0),
                ("network_HW", 3.0),
            ],
        ),
    ]
}

impl PlantedProfiles {
    /// Resolves the built-in profiles against the standard vocabulary.
    pub fn standard(vocab: &Vocabulary) -> Self {
        Self::from_specs(vocab, &standard_profiles())
    }

    /// Resolves arbitrary profile specs against a vocabulary.
    ///
    /// # Panics
    /// Panics if a spec references a category missing from the vocabulary,
    /// if a weight is negative, or if a profile has no positive weight.
    pub fn from_specs(vocab: &Vocabulary, specs: &[ProfileSpec]) -> Self {
        assert!(!specs.is_empty(), "need at least one profile");
        let m = vocab.len();
        let resolve = |items: &[(String, f64)]| -> Vec<f64> {
            let mut dist = vec![0.0; m];
            for (name, w) in items {
                assert!(*w >= 0.0, "negative profile weight for {name}");
                let id = vocab
                    .id(name)
                    .unwrap_or_else(|| panic!("profile references unknown category {name:?}"));
                dist[id.index()] += w;
            }
            let s: f64 = dist.iter().sum();
            assert!(s > 0.0, "profile has no positive weight");
            dist.iter_mut().for_each(|x| *x /= s);
            dist
        };
        let profile_dists: Vec<Vec<f64>> = specs.iter().map(|s| resolve(&s.weights)).collect();

        let mut popularity = vec![0.008; m]; // small floor so every product can appear
        for &(name, w) in POPULAR {
            if let Some(id) = vocab.id(name) {
                popularity[id.index()] += w;
            }
        }
        let s: f64 = popularity.iter().sum();
        popularity.iter_mut().for_each(|x| *x /= s);

        let mut stages = vec![3.0; m];
        for &(name, st) in STAGES {
            if let Some(id) = vocab.id(name) {
                stages[id.index()] = st;
            }
        }

        PlantedProfiles {
            profile_dists,
            popularity,
            stages,
            names: specs.iter().map(|s| s.name.clone()).collect(),
        }
    }

    /// Number of planted profiles (`K_true`).
    pub fn k(&self) -> usize {
        self.profile_dists.len()
    }

    /// The product distribution of profile `k` after mixing in the
    /// popularity background with weight `popularity_weight`.
    ///
    /// # Panics
    /// Panics if `k` is out of range or the weight is outside `[0, 1]`.
    pub fn mixed_distribution(&self, k: usize, popularity_weight: f64) -> Vec<f64> {
        assert!((0.0..=1.0).contains(&popularity_weight));
        self.profile_dists[k]
            .iter()
            .zip(&self.popularity)
            .map(|(&p, &bg)| (1.0 - popularity_weight) * p + popularity_weight * bg)
            .collect()
    }

    /// Acquisition stage of a product.
    pub fn stage(&self, p: ProductId) -> f64 {
        self.stages[p.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_profiles_resolve_against_standard_vocab() {
        let vocab = Vocabulary::standard();
        let planted = PlantedProfiles::standard(&vocab);
        assert_eq!(planted.k(), 3);
        for dist in &planted.profile_dists {
            assert_eq!(dist.len(), 38);
            assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert!((planted.popularity.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn every_standard_category_has_a_stage() {
        let vocab = Vocabulary::standard();
        // All 38 categories are listed explicitly in STAGES.
        assert_eq!(STAGES.len(), 38);
        let planted = PlantedProfiles::standard(&vocab);
        let os = vocab.id("OS").unwrap();
        let cloud = vocab.id("cloud_infrastructure").unwrap();
        assert!(planted.stage(os) < planted.stage(cloud));
    }

    #[test]
    fn mixed_distribution_interpolates() {
        let vocab = Vocabulary::standard();
        let planted = PlantedProfiles::standard(&vocab);
        let pure = planted.mixed_distribution(0, 0.0);
        assert_eq!(pure, planted.profile_dists[0]);
        let bg = planted.mixed_distribution(0, 1.0);
        for (a, b) in bg.iter().zip(&planted.popularity) {
            assert!((a - b).abs() < 1e-12);
        }
        let mixed = planted.mixed_distribution(0, 0.5);
        assert!((mixed.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profiles_are_distinct() {
        let vocab = Vocabulary::standard();
        let planted = PlantedProfiles::standard(&vocab);
        let d01 = hlm_linalg::vector::euclidean_distance(
            &planted.profile_dists[0],
            &planted.profile_dists[1],
        );
        assert!(
            d01 > 0.1,
            "profiles 0 and 1 must be well separated, got {d01}"
        );
    }

    #[test]
    #[should_panic(expected = "unknown category")]
    fn rejects_unknown_category() {
        let vocab = Vocabulary::standard();
        let bad = ProfileSpec {
            name: "bad".into(),
            weights: vec![("no_such_product".into(), 1.0)],
        };
        PlantedProfiles::from_specs(&vocab, &[bad]);
    }

    #[test]
    fn popular_products_dominate_background() {
        let vocab = Vocabulary::standard();
        let planted = PlantedProfiles::standard(&vocab);
        let os = vocab.id("OS").unwrap().index();
        let niche = vocab.id("product_lifecycle").unwrap().index();
        assert!(planted.popularity[os] > 10.0 * planted.popularity[niche]);
    }
}
