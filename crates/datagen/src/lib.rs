//! Synthetic IT install-base simulator.
//!
//! The paper's corpus — 860k companies from the HG Data Company database —
//! is proprietary, so this crate provides the substitute required for the
//! reproduction: a seeded generator whose output has the structural
//! properties every experiment in the paper depends on:
//!
//! 1. **Latent mixture structure.** Each company draws a mixture over a small
//!    number of planted *IT profiles* (hardware-centric datacenter,
//!    enterprise software, communications/cloud) through an industry-specific
//!    Dirichlet prior, then samples its products from the mixture. LDA's
//!    modelling assumptions therefore genuinely hold, which is what makes
//!    LDA the best-fitting model in the paper.
//! 2. **Popularity skew.** A background distribution makes a handful of
//!    categories (OS, network hardware, printers, …) near-ubiquitous. This is
//!    the property that defeats raw-binary company distances, co-clustering
//!    and BPMF in the paper.
//! 3. **Sequential structure.** Products are acquired in dependency order
//!    (foundational categories before virtualization/cloud), with noise.
//!    N-gram frequencies are significantly non-i.i.d. — the paper reports
//!    69% of bigrams and 43% of trigrams significant — yet the order carries
//!    less information than the mixture, so sequence models (LSTM, n-gram,
//!    CHH) fit worse than LDA, as observed.
//! 4. **HG-style plumbing.** Companies have D-U-N-S-like ids, SIC2
//!    industries, countries, several sites whose install bases must be
//!    aggregated, employee/revenue attributes, and monthly first-seen
//!    timestamps spanning 1990-01 … 2016-01.
//!
//! See DESIGN.md §2 for the substitution rationale.

pub mod config;
pub mod events;
pub mod generator;
pub mod profiles;

pub use config::GeneratorConfig;
pub use events::{
    generate_events, EventStream, EventStreamConfig, LaunchSpec, MixShift, StreamEvent, StreamState,
};
pub use generator::{generate, generate_sharded, generate_sites};
pub use profiles::{PlantedProfiles, ProfileSpec};
