//! Live event-stream mode: the corpus as it unfolds in time.
//!
//! [`generate`](crate::generate) materializes the install-base world as of
//! the horizon month. [`generate_events`] decomposes the same world into a
//! totally ordered stream of timestamped events — company arrivals, product
//! acquisitions, and (beyond the base generator) *product launches* that
//! grow the vocabulary past the standard 38 categories — so the replay
//! driver can feed it to the serving stack month by month.
//!
//! Determinism contract: the stream is a pure function of the configuration.
//! Base-corpus events come from [`generate`](crate::generate) (bit-identical
//! at any thread count); launch adoptions and injected-shift acquisitions
//! draw from per-`(salt, stream, company)` RNGs split off the master seed,
//! so no event depends on evaluation order.

use crate::config::GeneratorConfig;
use hlm_corpus::{Company, CompanyId, Corpus, InstallEvent, Month, ProductId, Vocabulary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG stream salts (xored into the master seed) so launch adoption and
/// shift draws never collide with the base generator's company streams.
const LAUNCH_SALT: u64 = 0x4C41_554E_4348; // "LAUNCH"
const SHIFT_SALT: u64 = 0x0053_4849_4654; // "SHIFT"

/// A product launched mid-stream, growing the vocabulary.
#[derive(Debug, Clone)]
pub struct LaunchSpec {
    /// Category name; must not collide with an existing category.
    pub name: String,
    /// Launch month — the vocabulary grows at the start of this month.
    pub month: Month,
    /// Monthly adoption hazard: each month after launch, each company that
    /// has not yet adopted the product acquires it with this probability.
    pub adoption: f64,
}

/// An injected product-mix shift: from `month` on, companies start acquiring
/// the named products at an elevated rate — the planted drift signal the
/// detector must catch.
#[derive(Debug, Clone)]
pub struct MixShift {
    /// First month of the shifted regime.
    pub month: Month,
    /// Products whose acquisition rate jumps (base-vocabulary names).
    pub products: Vec<String>,
    /// Monthly probability that a company acquires one (uniformly chosen)
    /// not-yet-owned product from the set.
    pub monthly_rate: f64,
}

/// Configuration of the event stream.
#[derive(Debug, Clone)]
pub struct EventStreamConfig {
    /// The base world (companies, install bases, seed, horizon).
    pub base: GeneratorConfig,
    /// Mid-stream product launches (vocabulary growth).
    pub launches: Vec<LaunchSpec>,
    /// Optional injected product-mix shift.
    pub shift: Option<MixShift>,
}

impl EventStreamConfig {
    /// A stream over `n` companies with the given seed and no launches or
    /// shift.
    pub fn with_size_and_seed(n_companies: usize, seed: u64) -> Self {
        EventStreamConfig {
            base: GeneratorConfig::with_size_and_seed(n_companies, seed),
            launches: Vec::new(),
            shift: None,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    /// Panics on invalid base config, launch/shift months outside the
    /// stream, duplicate launch names, or rates outside `[0, 1]`.
    pub fn validate(&self) {
        self.base.validate();
        let mut names: Vec<&str> = Vec::new();
        for l in &self.launches {
            assert!(
                l.month < self.base.horizon,
                "launch {:?} at {} is not before the horizon {}",
                l.name,
                l.month,
                self.base.horizon
            );
            assert!(
                (0.0..=1.0).contains(&l.adoption),
                "adoption must be in [0,1]"
            );
            assert!(!names.contains(&l.name.as_str()), "duplicate launch name");
            names.push(&l.name);
        }
        if let Some(s) = &self.shift {
            assert!(
                s.month < self.base.horizon,
                "shift month {} is not before the horizon {}",
                s.month,
                self.base.horizon
            );
            assert!(
                (0.0..=1.0).contains(&s.monthly_rate),
                "shift rate must be in [0,1]"
            );
            assert!(!s.products.is_empty(), "shift needs at least one product");
        }
    }
}

/// One event of the stream.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A new product category launches; the vocabulary grows by one.
    ProductLaunch {
        /// Month the category becomes acquirable.
        month: Month,
        /// The id the grown vocabulary assigns (`base_len + launch_index`).
        product: ProductId,
        /// Category name.
        name: String,
    },
    /// A company enters the market (its profile, with an empty install
    /// base). `id` is the company's stable stream index: arrivals are
    /// numbered 0.. in `(month, base-corpus order)` order, and every later
    /// acquisition refers to this id.
    CompanyArrival {
        /// Month of the company's first confirmed activity.
        month: Month,
        /// Stream index of the company.
        id: CompanyId,
        /// Profile attributes (install base empty; it fills via
        /// acquisitions).
        company: Company,
    },
    /// A company acquires a product.
    Acquisition {
        /// Month of the acquisition (`event.first_seen`).
        month: Month,
        /// Stream index of the acquiring company.
        id: CompanyId,
        /// The install event to merge into the company.
        event: InstallEvent,
    },
}

impl StreamEvent {
    /// The month the event occurs in.
    pub fn month(&self) -> Month {
        match self {
            StreamEvent::ProductLaunch { month, .. }
            | StreamEvent::CompanyArrival { month, .. }
            | StreamEvent::Acquisition { month, .. } => *month,
        }
    }

    /// Total-order sort key: month, then kind (launches grow the vocabulary
    /// before anything else that month, arrivals precede acquisitions), then
    /// company and product.
    fn sort_key(&self) -> (Month, u8, u32, u16) {
        match self {
            StreamEvent::ProductLaunch { month, product, .. } => (*month, 0, 0, product.0),
            StreamEvent::CompanyArrival { month, id, .. } => (*month, 1, id.0, 0),
            StreamEvent::Acquisition { month, id, event } => (*month, 2, id.0, event.product.0),
        }
    }
}

/// The generated stream: the base vocabulary plus events in a deterministic
/// total order.
#[derive(Debug, Clone)]
pub struct EventStream {
    /// The vocabulary before any launch (the standard 38 categories).
    pub base_vocab: Vocabulary,
    /// Events sorted by `(month, kind, company, product)`.
    pub events: Vec<StreamEvent>,
    /// First month with an event.
    pub start: Month,
    /// Exclusive end of the stream (the base config's horizon).
    pub end: Month,
}

/// Generates the event stream for `cfg`.
///
/// The acquisitions of the base world are exactly the install events of
/// [`generate`](crate::generate)`(&cfg.base)`; launches and the injected
/// shift add synthetic acquisitions on top. Replaying the whole stream
/// through [`StreamState`] reconstructs the base corpus plus those
/// additions, bit for bit.
pub fn generate_events(cfg: &EventStreamConfig) -> EventStream {
    cfg.validate();
    let base = crate::generate(&cfg.base);
    let horizon = cfg.base.horizon;

    // Stream ids: arrival month is the company's earliest first_seen;
    // arrivals are numbered in (month, base index) order.
    let mut arrival_order: Vec<(Month, usize)> = base
        .companies()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let m = c
                .events()
                .first()
                .map(|e| e.first_seen)
                .unwrap_or(cfg.base.earliest_founding);
            (m, i)
        })
        .collect();
    arrival_order.sort_unstable_by_key(|&(m, i)| (m, i));
    let mut stream_id = vec![CompanyId(0); base.len()];
    for (sid, &(_, i)) in arrival_order.iter().enumerate() {
        stream_id[i] = CompanyId(sid as u32);
    }

    let mut events: Vec<StreamEvent> = Vec::new();

    // Arrivals and base acquisitions.
    for &(month, i) in &arrival_order {
        let c = &base.companies()[i];
        let mut profile = Company::new(c.duns, c.name.clone(), c.industry, c.country);
        profile.site_count = c.site_count;
        profile.employees = c.employees;
        profile.revenue_musd = c.revenue_musd;
        events.push(StreamEvent::CompanyArrival {
            month,
            id: stream_id[i],
            company: profile,
        });
        for &ev in c.events() {
            events.push(StreamEvent::Acquisition {
                month: ev.first_seen,
                id: stream_id[i],
                event: ev,
            });
        }
    }

    // Product launches and their adoption curves.
    let base_len = base.vocab().len();
    for (li, launch) in cfg.launches.iter().enumerate() {
        let product = ProductId((base_len + li) as u16);
        events.push(StreamEvent::ProductLaunch {
            month: launch.month,
            product,
            name: launch.name.clone(),
        });
        for (i, c) in base.companies().iter().enumerate() {
            let arrival = c
                .events()
                .first()
                .map(|e| e.first_seen)
                .unwrap_or(cfg.base.earliest_founding);
            let mut rng = StdRng::seed_from_u64(hlm_par::split_seed3(
                cfg.base.seed ^ LAUNCH_SALT,
                li as u64,
                i as u64,
            ));
            let mut month = launch.month.max(arrival);
            while month < horizon {
                if rng.gen::<f64>() < launch.adoption {
                    events.push(StreamEvent::Acquisition {
                        month,
                        id: stream_id[i],
                        event: InstallEvent {
                            product,
                            first_seen: month,
                            last_seen: month,
                            confidence: 0.8,
                        },
                    });
                    break;
                }
                month = month.plus_months(1);
            }
        }
    }

    // Injected product-mix shift.
    if let Some(shift) = &cfg.shift {
        let hot: Vec<ProductId> = shift
            .products
            .iter()
            .map(|n| {
                base.vocab()
                    .id(n)
                    .unwrap_or_else(|| panic!("shift product {n:?} not in the base vocabulary"))
            })
            .collect();
        for (i, c) in base.companies().iter().enumerate() {
            let mut owned: Vec<bool> = {
                let mut o = vec![false; base_len];
                for e in c.events() {
                    o[e.product.index()] = true;
                }
                o
            };
            // A company cannot acquire before it arrives (its earliest
            // base event) — without the clamp, late arrivals would get
            // shift acquisitions the stream consumer cannot attribute.
            let arrival = c
                .events()
                .first()
                .map(|e| e.first_seen)
                .unwrap_or(cfg.base.earliest_founding);
            let mut rng = StdRng::seed_from_u64(hlm_par::split_seed3(
                cfg.base.seed ^ SHIFT_SALT,
                0,
                i as u64,
            ));
            let mut month = shift.month.max(arrival);
            while month < horizon {
                if rng.gen::<f64>() < shift.monthly_rate {
                    let unowned: Vec<ProductId> =
                        hot.iter().copied().filter(|p| !owned[p.index()]).collect();
                    if unowned.is_empty() {
                        break;
                    }
                    let p = unowned[rng.gen_range(0..unowned.len())];
                    owned[p.index()] = true;
                    events.push(StreamEvent::Acquisition {
                        month,
                        id: stream_id[i],
                        event: InstallEvent {
                            product: p,
                            first_seen: month,
                            last_seen: month,
                            confidence: 0.8,
                        },
                    });
                }
                month = month.plus_months(1);
            }
        }
    }

    events.sort_by_key(StreamEvent::sort_key);
    let start = events
        .first()
        .map(StreamEvent::month)
        .unwrap_or(cfg.base.earliest_founding);
    EventStream {
        base_vocab: base.vocab().clone(),
        events,
        start,
        end: horizon,
    }
}

/// The consumer-side accumulator: applies stream events in order, growing
/// the vocabulary on launches and the company list on arrivals.
#[derive(Debug, Clone)]
pub struct StreamState {
    vocab: Vocabulary,
    companies: Vec<Company>,
}

impl StreamState {
    /// An empty state over the stream's base vocabulary.
    pub fn new(base_vocab: Vocabulary) -> Self {
        StreamState {
            vocab: base_vocab,
            companies: Vec::new(),
        }
    }

    /// Applies one event.
    ///
    /// # Panics
    /// Panics on an out-of-order stream: an acquisition for a company that
    /// has not arrived, or a launch that does not extend the vocabulary
    /// contiguously.
    pub fn apply(&mut self, ev: &StreamEvent) {
        match ev {
            StreamEvent::ProductLaunch { product, name, .. } => {
                let id = self.vocab.push(name.clone());
                assert_eq!(id, *product, "launch ids must be contiguous");
            }
            StreamEvent::CompanyArrival { id, company, .. } => {
                assert_eq!(
                    id.index(),
                    self.companies.len(),
                    "arrivals must be contiguous"
                );
                self.companies.push(company.clone());
            }
            StreamEvent::Acquisition { id, event, .. } => {
                self.companies[id.index()].add_event(*event);
            }
        }
    }

    /// Number of companies that have arrived.
    pub fn company_count(&self) -> usize {
        self.companies.len()
    }

    /// The companies that have arrived, indexed by stream id.
    pub fn companies(&self) -> &[Company] {
        &self.companies
    }

    /// The current (possibly grown) vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Snapshot the state as a corpus (clones vocabulary and companies).
    pub fn corpus(&self) -> Corpus {
        Corpus::new(self.vocab.clone(), self.companies.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_cfg(n: usize, seed: u64) -> EventStreamConfig {
        EventStreamConfig::with_size_and_seed(n, seed)
    }

    #[test]
    fn stream_is_sorted_and_deterministic() {
        let cfg = stream_cfg(60, 5);
        let a = generate_events(&cfg);
        let b = generate_events(&cfg);
        assert_eq!(a.events, b.events);
        for w in a.events.windows(2) {
            assert!(w[0].sort_key() <= w[1].sort_key(), "stream must be sorted");
        }
        assert!(a.start < a.end);
    }

    #[test]
    fn replaying_base_stream_reconstructs_the_corpus() {
        let cfg = stream_cfg(80, 11);
        let stream = generate_events(&cfg);
        let mut state = StreamState::new(stream.base_vocab.clone());
        for ev in &stream.events {
            state.apply(ev);
        }
        let replayed = state.corpus();
        let direct = crate::generate(&cfg.base);
        assert_eq!(replayed.len(), direct.len());
        // Stream ids permute companies by arrival; compare as sorted multisets
        // of (duns, events).
        let key = |c: &Company| (c.duns, c.events().to_vec());
        let mut a: Vec<_> = replayed.companies().iter().map(key).collect();
        let mut b: Vec<_> = direct.companies().iter().map(key).collect();
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(a, b, "replayed corpus must equal the generated one");
    }

    #[test]
    fn launches_grow_vocabulary_and_get_adopted() {
        let mut cfg = stream_cfg(100, 7);
        cfg.launches.push(LaunchSpec {
            name: "edge_ai_accelerators".into(),
            month: Month::from_ym(2012, 1),
            adoption: 0.05,
        });
        let stream = generate_events(&cfg);
        let mut state = StreamState::new(stream.base_vocab.clone());
        for ev in &stream.events {
            state.apply(ev);
        }
        assert_eq!(state.vocab().len(), 39);
        let corpus = state.corpus();
        let new_id = corpus.vocab().id("edge_ai_accelerators").unwrap();
        assert_eq!(new_id, ProductId(38));
        let adopters = corpus.companies().iter().filter(|c| c.owns(new_id)).count();
        assert!(adopters > 10, "adoption should spread, got {adopters}");
        // No adoption precedes the launch.
        for c in corpus.companies() {
            for e in c.events() {
                if e.product == new_id {
                    assert!(e.first_seen >= Month::from_ym(2012, 1));
                }
            }
        }
    }

    #[test]
    fn injected_shift_concentrates_late_acquisitions() {
        let mut cfg = stream_cfg(100, 3);
        cfg.shift = Some(MixShift {
            month: Month::from_ym(2013, 1),
            products: vec!["retail".into(), "media".into()],
            monthly_rate: 0.2,
        });
        let with_shift = generate_events(&cfg);
        cfg.shift = None;
        let without = generate_events(&cfg);
        assert!(
            with_shift.events.len() > without.events.len(),
            "shift must add acquisitions"
        );
        // Every added acquisition is a hot product at/after the shift month.
        let count_hot = |s: &EventStream| {
            s.events
                .iter()
                .filter(|e| match e {
                    StreamEvent::Acquisition { month, event, .. } => {
                        *month >= Month::from_ym(2013, 1)
                            && (event.product == ProductId(28) || event.product == ProductId(18))
                    }
                    _ => false,
                })
                .count()
        };
        assert!(count_hot(&with_shift) > count_hot(&without) + 20);
    }

    #[test]
    fn shift_acquisitions_never_precede_a_company_arrival() {
        // Regression: a company whose first base event lands after the
        // shift month used to receive shift acquisitions *before* its
        // arrival event, which the stream consumer cannot attribute. The
        // whole stream must replay cleanly through StreamState.
        let mut cfg = stream_cfg(250, 104);
        cfg.shift = Some(MixShift {
            month: cfg.base.horizon.plus_months(-12),
            products: vec!["retail".into(), "media".into()],
            monthly_rate: 0.2,
        });
        let stream = generate_events(&cfg);
        let mut state = StreamState::new(stream.base_vocab.clone());
        let mut arrived = 0usize;
        for ev in &stream.events {
            if let StreamEvent::Acquisition { id, .. } = ev {
                assert!(
                    id.index() < arrived,
                    "acquisition for company {id:?} before its arrival"
                );
            }
            if matches!(ev, StreamEvent::CompanyArrival { .. }) {
                arrived += 1;
            }
            state.apply(ev);
        }
        assert_eq!(state.company_count(), 250);
    }

    #[test]
    #[should_panic(expected = "not before the horizon")]
    fn rejects_launch_after_horizon() {
        let mut cfg = stream_cfg(10, 1);
        cfg.launches.push(LaunchSpec {
            name: "x".into(),
            month: Month::from_ym(2020, 1),
            adoption: 0.1,
        });
        cfg.validate();
    }
}
