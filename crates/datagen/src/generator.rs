//! The generator pipeline: industries → companies → sites → corpus.

use crate::config::GeneratorConfig;
use crate::profiles::PlantedProfiles;
use hlm_corpus::aggregate::{aggregate_sites, SiteRecord};
use hlm_corpus::{
    Corpus, InstallEvent, Month, ProductId, ShardError, ShardStore, ShardWriter, Sic2, Vocabulary,
};
use hlm_linalg::dist::{
    sample_categorical, sample_dirichlet, sample_normal, sample_standard_normal,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-industry prior over the planted profiles: each industry has one
/// dominant profile (assigned round-robin) with concentration
/// `dominant_concentration`, the rest get `background_concentration`.
fn industry_priors(cfg: &GeneratorConfig, k: usize) -> Vec<Vec<f64>> {
    (0..cfg.n_industries)
        .map(|ind| {
            (0..k)
                .map(|p| {
                    if p == ind % k {
                        cfg.dominant_concentration
                    } else {
                        cfg.background_concentration
                    }
                })
                .collect()
        })
        .collect()
}

/// Industry popularity weights: a long-tailed distribution so some SIC2
/// codes hold many companies (like "Health Services" in the paper) and most
/// hold few.
fn industry_weights(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 / (1.0 + i as f64).sqrt()).collect()
}

/// Draws the install-base size: log-normal around `mean_products`, clamped
/// to `[min_products, M]`.
fn sample_base_size(rng: &mut StdRng, cfg: &GeneratorConfig, m: usize) -> usize {
    let mu = cfg.mean_products.ln() - 0.5 * cfg.products_sigma * cfg.products_sigma;
    let raw = (mu + cfg.products_sigma * sample_standard_normal(rng)).exp();
    (raw.round() as usize).clamp(cfg.min_products, m)
}

/// Samples a company's product set from its profile mixture without
/// replacement.
fn sample_products(
    rng: &mut StdRng,
    planted: &PlantedProfiles,
    theta: &[f64],
    popularity_weight: f64,
    n_products: usize,
) -> Vec<ProductId> {
    let m = planted.popularity.len();
    let mixed: Vec<Vec<f64>> = (0..planted.k())
        .map(|k| planted.mixed_distribution(k, popularity_weight))
        .collect();
    let mut owned = vec![false; m];
    let mut out = Vec::with_capacity(n_products);
    let mut weights = vec![0.0; m];
    while out.len() < n_products.min(m) {
        let k = sample_categorical(rng, theta);
        let dist = &mixed[k];
        let mut any = false;
        for (w, (&d, &o)) in weights.iter_mut().zip(dist.iter().zip(owned.iter())) {
            *w = if o { 0.0 } else { d };
            any |= *w > 0.0;
        }
        if !any {
            // This profile has no unowned product left; fall back to the
            // popularity background restricted to unowned products.
            for (w, (&d, &o)) in weights
                .iter_mut()
                .zip(planted.popularity.iter().zip(owned.iter()))
            {
                *w = if o { 0.0 } else { d.max(1e-9) };
            }
        }
        let p = sample_categorical(rng, &weights);
        owned[p] = true;
        out.push(ProductId(p as u16));
    }
    out
}

/// Orders products by noisy acquisition stage and assigns first-seen months:
/// the acquisition times are uniform draws in `[founding, horizon)` sorted
/// ascending, so earlier stages get earlier months.
fn assign_timestamps(
    rng: &mut StdRng,
    cfg: &GeneratorConfig,
    planted: &PlantedProfiles,
    products: &[ProductId],
    founding: Month,
) -> Vec<InstallEvent> {
    let mut keyed: Vec<(f64, ProductId)> = products
        .iter()
        .map(|&p| {
            (
                planted.stage(p) + sample_normal(rng, 0.0, cfg.order_noise),
                p,
            )
        })
        .collect();
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("stage keys are finite"));

    let span = (cfg.horizon - founding).max(1);
    let mut months: Vec<i32> = (0..products.len())
        .map(|_| rng.gen_range(0..span))
        .collect();
    months.sort_unstable();

    keyed
        .into_iter()
        .zip(months)
        .map(|((_, p), off)| {
            let first = founding.plus_months(off);
            // Last confirmation: somewhere between first-seen and horizon.
            let remaining = (cfg.horizon - first).max(1);
            let last = first.plus_months(rng.gen_range(0..remaining));
            let confidence = 0.7 + 0.3 * rng.gen::<f32>();
            InstallEvent {
                product: p,
                first_seen: first,
                last_seen: last,
                confidence,
            }
        })
        .collect()
}

/// Generates one company's site records with a placeholder `site_duns` of 0
/// (globally unique numbers are assigned at the ordered merge). `rng` is the
/// company's own stream, split from the master seed by company index, so
/// companies can be generated in parallel without sharing RNG state.
#[allow(clippy::too_many_arguments)]
fn company_sites(
    cfg: &GeneratorConfig,
    planted: &PlantedProfiles,
    priors: &[Vec<f64>],
    ind_weights: &[f64],
    vocab_len: usize,
    ci: usize,
    rng: &mut StdRng,
) -> Vec<SiteRecord> {
    let industry = sample_categorical(rng, ind_weights);
    let theta = sample_dirichlet(rng, &priors[industry]);
    let n_products = sample_base_size(rng, cfg, vocab_len);
    let products = sample_products(rng, planted, &theta, cfg.popularity_weight, n_products);
    let founding_span = (cfg.latest_founding - cfg.earliest_founding).max(1);
    let founding = cfg
        .earliest_founding
        .plus_months(rng.gen_range(0..founding_span));
    let events = assign_timestamps(rng, cfg, planted, &products, founding);

    let country = rng.gen_range(0..cfg.n_countries) as u16;
    // Company size attributes correlate with install-base size.
    let size_factor = events.len() as f64 / cfg.mean_products;
    let employees_total = (50.0 * size_factor * (1.0 + 9.0 * rng.gen::<f64>())).round() as u32 + 1;
    let revenue_total = employees_total as f64 * (0.1 + 0.4 * rng.gen::<f64>());

    // Scatter events across sites.
    let extra = {
        // Geometric via inversion on p = 1/(1+mean).
        let p = 1.0 / (1.0 + cfg.mean_extra_sites);
        let u: f64 = rng.gen::<f64>().max(1e-12);
        (u.ln() / (1.0 - p).ln()).floor() as usize
    };
    let n_sites = 1 + extra;
    let parent_duns = 10_000 + ci as u64;
    let mut per_site_events: Vec<Vec<InstallEvent>> = vec![Vec::new(); n_sites];
    for ev in events {
        per_site_events[rng.gen_range(0..n_sites)].push(ev);
    }
    per_site_events
        .into_iter()
        .map(|site_events| SiteRecord {
            site_duns: 0, // assigned at the ordered merge
            domestic_parent_duns: parent_duns,
            company_name: format!("company_{parent_duns}"),
            industry: Sic2((industry % 100) as u8),
            country,
            employees: (employees_total / n_sites as u32).max(1),
            revenue_musd: revenue_total / n_sites as f64,
            events: site_events,
        })
        .collect()
}

/// Companies per generation chunk; fixed so the chunk layout is a function
/// of the company range alone.
const COMPANY_CHUNK: usize = 32;

/// Shared derived generator state: the planted profiles and per-industry
/// priors every company draws from.
struct GenModel {
    vocab: Vocabulary,
    planted: PlantedProfiles,
    priors: Vec<Vec<f64>>,
    ind_weights: Vec<f64>,
}

impl GenModel {
    fn new(cfg: &GeneratorConfig) -> Self {
        cfg.validate();
        let vocab = Vocabulary::standard();
        let planted = PlantedProfiles::standard(&vocab);
        let priors = industry_priors(cfg, planted.k());
        let ind_weights = industry_weights(cfg.n_industries);
        GenModel {
            vocab,
            planted,
            priors,
            ind_weights,
        }
    }
}

/// Generates the sites of companies `[lo, hi)`, one `Vec<SiteRecord>` per
/// company in company order. Each company draws from its own RNG stream
/// (`split_seed(cfg.seed, company_index)`), so any range decomposition — and
/// any thread count — produces exactly the companies of the full run.
fn sites_for_range(
    cfg: &GeneratorConfig,
    model: &GenModel,
    lo: usize,
    hi: usize,
) -> Vec<Vec<SiteRecord>> {
    let pool = hlm_par::Pool::global();
    let n_chunks = hlm_par::chunk_count(hi - lo, COMPANY_CHUNK);
    let chunks = pool.run(n_chunks, |c| {
        let (c_lo, c_hi) = hlm_par::chunk_bounds(hi - lo, COMPANY_CHUNK, c);
        let mut out = Vec::with_capacity(c_hi - c_lo);
        for ci in lo + c_lo..lo + c_hi {
            let mut rng = StdRng::seed_from_u64(hlm_par::split_seed(cfg.seed, ci as u64));
            out.push(company_sites(
                cfg,
                &model.planted,
                &model.priors,
                &model.ind_weights,
                model.vocab.len(),
                ci,
                &mut rng,
            ));
        }
        out
    });
    chunks.into_iter().flatten().collect()
}

/// Generates per-site records. Each company's events are scattered over
/// `1 + Geometric(mean_extra_sites)` sites in its country; the domestic
/// aggregation in [`generate`] must union them back together.
///
/// Every company draws from its own RNG stream
/// (`split_seed(cfg.seed, company_index)`), so fixed company chunks generate
/// in parallel and the corpus is bit-identical at any thread count. Site
/// DUNS numbers are assigned sequentially when the chunks are merged back in
/// company order.
pub fn generate_sites(cfg: &GeneratorConfig) -> (Vocabulary, Vec<SiteRecord>) {
    let model = GenModel::new(cfg);
    let per_company = sites_for_range(cfg, &model, 0, cfg.n_companies);

    let mut sites = Vec::with_capacity(cfg.n_companies * 2);
    let mut next_site_duns: u64 = 1_000_000;
    for company in per_company {
        for mut site in company {
            site.site_duns = next_site_duns;
            next_site_duns += 1;
            sites.push(site);
        }
    }
    (model.vocab, sites)
}

/// Generates the aggregated domestic-company corpus: [`generate_sites`]
/// followed by the same domestic aggregation step the paper performs on the
/// HG Data feed.
pub fn generate(cfg: &GeneratorConfig) -> Corpus {
    let (vocab, sites) = generate_sites(cfg);
    aggregate_sites(vocab, sites)
}

/// Streams the corpus for `cfg` to an on-disk [`ShardStore`] in `n_shards`
/// fixed-size shards without materialising more than one shard of companies
/// at a time.
///
/// The store holds exactly the companies of `generate(cfg)`, bit for bit, at
/// any shard count and thread count: every company's RNG stream depends only
/// on `(cfg.seed, company_index)`, each company's `domestic_parent_duns` and
/// country are unique to it, and domestic aggregation orders its output by
/// that key — so aggregating one shard's sites yields precisely the global
/// corpus slice `[lo, hi)`. (Site DUNS numbers, which the full pipeline
/// assigns from a global counter, never survive into the aggregate.)
pub fn generate_sharded(
    cfg: &GeneratorConfig,
    n_shards: usize,
    dir: impl Into<std::path::PathBuf>,
) -> Result<ShardStore, ShardError> {
    let model = GenModel::new(cfg);
    let shard_size = hlm_corpus::shard::aligned_shard_size(cfg.n_companies, n_shards);
    let mut writer = ShardWriter::create(dir, model.vocab.clone(), shard_size)?;
    let mut lo = 0;
    while lo < cfg.n_companies {
        let hi = (lo + shard_size).min(cfg.n_companies);
        let sites: Vec<SiteRecord> = sites_for_range(cfg, &model, lo, hi)
            .into_iter()
            .flatten()
            .collect();
        let (_, companies) = aggregate_sites(model.vocab.clone(), sites).into_parts();
        writer.write_shard(&companies)?;
        lo = hi;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlm_corpus::sequence::count_product_ngrams;

    fn small_corpus() -> Corpus {
        generate(&GeneratorConfig::with_size_and_seed(300, 7))
    }

    #[test]
    fn generates_requested_company_count() {
        let c = small_corpus();
        assert_eq!(c.len(), 300);
        assert_eq!(c.vocab().len(), 38);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&GeneratorConfig::with_size_and_seed(50, 3));
        let b = generate(&GeneratorConfig::with_size_and_seed(50, 3));
        for (ca, cb) in a.companies().iter().zip(b.companies()) {
            assert_eq!(ca.events(), cb.events());
            assert_eq!(ca.employees, cb.employees);
        }
        let c = generate(&GeneratorConfig::with_size_and_seed(50, 4));
        let differs = a
            .companies()
            .iter()
            .zip(c.companies())
            .any(|(x, y)| x.product_set() != y.product_set());
        assert!(differs, "different seeds must differ");
    }

    #[test]
    fn install_bases_respect_size_bounds() {
        let cfg = GeneratorConfig::with_size_and_seed(300, 7);
        let c = generate(&cfg);
        for comp in c.companies() {
            assert!(comp.product_count() >= cfg.min_products);
            assert!(comp.product_count() <= 38);
        }
        let mean = c.mean_products_per_company();
        assert!((4.0..14.0).contains(&mean), "mean products {mean}");
    }

    #[test]
    fn timestamps_lie_in_observation_period() {
        let cfg = GeneratorConfig::with_size_and_seed(200, 9);
        let c = generate(&cfg);
        for comp in c.companies() {
            for e in comp.events() {
                assert!(e.first_seen >= cfg.earliest_founding);
                assert!(e.first_seen < cfg.horizon);
                assert!(e.last_seen >= e.first_seen);
                assert!(e.last_seen < cfg.horizon);
                assert!((0.0..=1.0).contains(&(e.confidence as f64)));
            }
        }
    }

    #[test]
    fn popular_products_are_widespread() {
        let c = small_corpus();
        let df = c.document_frequencies();
        let os = c.vocab().id("OS").unwrap().index();
        let niche = c.vocab().id("product_lifecycle").unwrap().index();
        assert!(
            df[os] > 3 * df[niche].max(1),
            "OS df {} should dwarf niche df {}",
            df[os],
            df[niche]
        );
        // OS should be present in a majority of companies.
        assert!(df[os] * 2 > c.len(), "OS df {} of {}", df[os], c.len());
    }

    #[test]
    fn foundational_products_come_before_cloud() {
        let c = small_corpus();
        let os = c.vocab().id("OS").unwrap();
        let cloud = c.vocab().id("cloud_infrastructure").unwrap();
        let mut os_first = 0;
        let mut cloud_first = 0;
        for comp in c.companies() {
            let seq = comp.product_sequence();
            let pos_os = seq.iter().position(|&p| p == os);
            let pos_cloud = seq.iter().position(|&p| p == cloud);
            if let (Some(a), Some(b)) = (pos_os, pos_cloud) {
                if a < b {
                    os_first += 1;
                } else {
                    cloud_first += 1;
                }
            }
        }
        assert!(
            os_first > 2 * cloud_first.max(1),
            "OS before cloud {os_first} vs after {cloud_first}"
        );
    }

    #[test]
    fn sequences_have_repeated_bigrams() {
        // Sequential structure: the same bigrams recur far more often than
        // the number of distinct bigrams would suggest under shuffling.
        let c = small_corpus();
        let ids: Vec<_> = c.ids().collect();
        let seqs = c.sequences_for(&ids);
        let bigrams = count_product_ngrams(&seqs, 2);
        let total: u64 = bigrams.values().sum();
        let distinct = bigrams.len() as u64;
        // Random order over 38 products would give nearly as many distinct
        // bigrams as total slots (ratio close to 1); the stage ordering and
        // profile structure push repetition well above 2x.
        assert!(
            total > 2 * distinct,
            "bigrams should repeat heavily: total {total}, distinct {distinct}"
        );
    }

    #[test]
    fn industries_and_countries_are_diverse() {
        let c = small_corpus();
        assert!(c.industries().len() > 20);
        let mut countries: Vec<u16> = c.companies().iter().map(|x| x.country).collect();
        countries.sort_unstable();
        countries.dedup();
        assert!(countries.len() >= 5);
    }

    #[test]
    fn multi_site_companies_exist_and_aggregate() {
        let c = small_corpus();
        let multi = c.companies().iter().filter(|x| x.site_count > 1).count();
        assert!(
            multi > 30,
            "expected many multi-site companies, got {multi}"
        );
    }

    #[test]
    fn sharded_generation_is_bit_identical_to_in_memory() {
        let cfg = GeneratorConfig::with_size_and_seed(300, 13);
        let full = generate(&cfg);
        for n_shards in [1, 2, 5] {
            let dir = std::env::temp_dir().join(format!(
                "hlm_datagen_sharded_{n_shards}_{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = generate_sharded(&cfg, n_shards, &dir).unwrap();
            let mut all = Vec::new();
            for item in store.reader() {
                all.extend(item.unwrap().1);
            }
            assert_eq!(all.as_slice(), full.companies(), "n_shards={n_shards}");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn generate_sites_matches_generate() {
        let cfg = GeneratorConfig::with_size_and_seed(40, 11);
        let (vocab, sites) = generate_sites(&cfg);
        let direct = generate(&cfg);
        let via_sites = aggregate_sites(vocab, sites);
        assert_eq!(direct.len(), via_sites.len());
        for (a, b) in direct.companies().iter().zip(via_sites.companies()) {
            assert_eq!(a.product_set(), b.product_set());
        }
    }
}
