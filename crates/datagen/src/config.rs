//! Generator configuration.

use hlm_corpus::Month;
use serde::{Deserialize, Serialize};

/// All knobs of the synthetic install-base generator.
///
/// The defaults are tuned so the paper's qualitative results reproduce at
/// laptop scale (see `EXPERIMENTS.md`); every experiment binary accepts a
/// company count so the corpus can be scaled up.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of aggregated (domestic) companies to generate.
    pub n_companies: usize,
    /// RNG seed; the generator is fully deterministic given the seed.
    pub seed: u64,
    /// Number of SIC2 industries to spread companies over (paper: 83).
    pub n_industries: usize,
    /// Number of countries (domestic aggregation keys on country).
    pub n_countries: usize,
    /// Mean of the install-base size distribution (log-normal, clamped to
    /// `[min_products, M]`).
    pub mean_products: f64,
    /// Log-space standard deviation of the install-base size distribution.
    pub products_sigma: f64,
    /// Minimum products per company.
    pub min_products: usize,
    /// Weight of the global popularity background mixed into every profile's
    /// product distribution (0 = pure profiles, 1 = pure popularity).
    pub popularity_weight: f64,
    /// Concentration of the dominant profile in each industry's Dirichlet
    /// prior; higher = purer companies = easier for LDA.
    pub dominant_concentration: f64,
    /// Concentration of the non-dominant profiles in the industry prior.
    pub background_concentration: f64,
    /// Standard deviation of the noise added to each product's dependency
    /// stage when ordering acquisitions. Small = strong sequential signal.
    pub order_noise: f64,
    /// Earliest possible company founding month.
    pub earliest_founding: Month,
    /// Latest possible company founding month.
    pub latest_founding: Month,
    /// End of the observation period (exclusive upper bound on first-seen).
    pub horizon: Month,
    /// Mean extra sites per company beyond the first (geometric).
    pub mean_extra_sites: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            n_companies: 5_000,
            seed: 20190326, // EDBT 2019 opening day
            n_industries: 83,
            n_countries: 12,
            mean_products: 8.0,
            products_sigma: 0.55,
            min_products: 2,
            popularity_weight: 0.18,
            dominant_concentration: 6.0,
            background_concentration: 0.25,
            order_noise: 1.4,
            earliest_founding: Month::from_ym(1990, 1),
            latest_founding: Month::from_ym(2010, 1),
            horizon: Month::from_ym(2016, 1),
            mean_extra_sites: 1.2,
        }
    }
}

impl GeneratorConfig {
    /// Convenience constructor for the two knobs almost every caller sets.
    pub fn with_size_and_seed(n_companies: usize, seed: u64) -> Self {
        GeneratorConfig {
            n_companies,
            seed,
            ..Default::default()
        }
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    /// Panics on inconsistent settings (zero industries, inverted time
    /// bounds, weights outside `[0, 1]`, …).
    pub fn validate(&self) {
        assert!(self.n_industries > 0, "need at least one industry");
        assert!(self.n_countries > 0, "need at least one country");
        assert!(
            self.min_products >= 1,
            "companies need at least one product"
        );
        assert!(
            self.mean_products >= self.min_products as f64,
            "mean below minimum"
        );
        assert!(
            (0.0..=1.0).contains(&self.popularity_weight),
            "popularity_weight must be in [0,1]"
        );
        assert!(self.dominant_concentration > 0.0 && self.background_concentration > 0.0);
        assert!(self.order_noise >= 0.0, "order noise must be non-negative");
        assert!(
            self.earliest_founding <= self.latest_founding,
            "inverted founding bounds"
        );
        assert!(
            self.latest_founding < self.horizon,
            "founding must precede horizon"
        );
        assert!(self.mean_extra_sites >= 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        GeneratorConfig::default().validate();
    }

    #[test]
    fn with_size_and_seed_overrides() {
        let c = GeneratorConfig::with_size_and_seed(10, 99);
        assert_eq!(c.n_companies, 10);
        assert_eq!(c.seed, 99);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "founding must precede horizon")]
    fn rejects_inverted_time() {
        let mut c = GeneratorConfig::default();
        c.horizon = Month::from_ym(2000, 1);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "popularity_weight")]
    fn rejects_bad_popularity() {
        let mut c = GeneratorConfig::default();
        c.popularity_weight = 1.5;
        c.validate();
    }
}
