//! Bayesian Probabilistic Matrix Factorization (BPMF).
//!
//! The matrix-factorization comparator of Section 5.2, after Salakhutdinov &
//! Mnih, *"Bayesian probabilistic matrix factorization using Markov chain
//! Monte Carlo"* (ICML 2008): company and product factor matrices `U`
//! (`N x D`) and `V` (`M x D`) with Gaussian likelihood
//! `R_ij ~ N(U_i · V_j, 1/α)` and Gaussian–Wishart hyperpriors on the factor
//! means and precisions, sampled by Gibbs.
//!
//! The paper feeds BPMF the binary ranking transform of the install-base
//! data — a company's owned products have rating 1 — and observes the
//! degenerate behaviour of Figures 5–6: essentially every recommendation
//! score lands in `[0.9, 1.0]`, because a dense corpus of positive-only
//! ratings admits a perfect rank-1 explanation ("everything is 1"). The
//! experiment binaries reproduce exactly that setup; the implementation
//! itself is a faithful general BPMF that also handles mixed 0/1 or real
//! ratings (see the recovery tests).

use hlm_linalg::cholesky::Cholesky;
use hlm_linalg::dist::{sample_standard_normal, sample_wishart};
use hlm_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One observed rating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// Row (company) index.
    pub row: usize,
    /// Column (product) index.
    pub col: usize,
    /// Observed value.
    pub value: f64,
}

/// BPMF hyper-parameters and sampler settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpmfConfig {
    /// Latent dimensionality `D`.
    pub n_factors: usize,
    /// Observation precision `α`.
    pub alpha: f64,
    /// Hyperprior strength `β₀` of the factor means.
    pub beta0: f64,
    /// Wishart scale `W₀ = w0_scale · I`.
    pub w0_scale: f64,
    /// Total Gibbs sweeps.
    pub n_iters: usize,
    /// Sweeps discarded before averaging predictions.
    pub burn_in: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BpmfConfig {
    fn default() -> Self {
        BpmfConfig {
            n_factors: 8,
            alpha: 2.0,
            beta0: 2.0,
            w0_scale: 1.0,
            n_iters: 60,
            burn_in: 20,
            seed: 42,
        }
    }
}

impl BpmfConfig {
    /// Checks internal consistency.
    ///
    /// # Panics
    /// Panics on nonsensical settings.
    pub fn validate(&self) {
        assert!(self.n_factors >= 1, "need at least one factor");
        assert!(self.alpha > 0.0 && self.beta0 > 0.0 && self.w0_scale > 0.0);
        assert!(self.n_iters > self.burn_in, "n_iters must exceed burn_in");
    }
}

/// A fitted BPMF model: posterior-mean predictions averaged over the
/// post-burn-in Gibbs samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpmfModel {
    predictions: Matrix,
    clamp: Option<(f64, f64)>,
}

impl BpmfModel {
    /// Posterior-mean prediction for a cell, clamped to the configured
    /// rating range.
    pub fn predict(&self, row: usize, col: usize) -> f64 {
        let raw = self.predictions.get(row, col);
        match self.clamp {
            Some((lo, hi)) => raw.clamp(lo, hi),
            None => raw,
        }
    }

    /// All predictions for a row (a company's recommendation scores over
    /// every product).
    pub fn predict_row(&self, row: usize) -> Vec<f64> {
        (0..self.predictions.cols())
            .map(|c| self.predict(row, c))
            .collect()
    }

    /// Matrix dimensions `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        self.predictions.shape()
    }

    /// Every predicted score, flattened row-major (used for the Figure-5
    /// score-distribution boxplot).
    pub fn all_scores(&self) -> Vec<f64> {
        let (r, c) = self.shape();
        let mut out = Vec::with_capacity(r * c);
        for i in 0..r {
            for j in 0..c {
                out.push(self.predict(i, j));
            }
        }
        out
    }
}

/// Samples `(μ, Λ)` from the Gaussian–Wishart posterior given a factor
/// matrix (rows = entities).
fn sample_hyper(
    rng: &mut StdRng,
    factors: &Matrix,
    beta0: f64,
    w0_scale: f64,
) -> (Vec<f64>, Matrix) {
    let n = factors.rows() as f64;
    let d = factors.cols();
    let nu0 = d as f64;

    // Sample mean and covariance of the factor rows.
    let mut xbar = vec![0.0; d];
    for i in 0..factors.rows() {
        for (x, &f) in xbar.iter_mut().zip(factors.row(i)) {
            *x += f;
        }
    }
    if n > 0.0 {
        xbar.iter_mut().for_each(|x| *x /= n);
    }
    let mut s = Matrix::zeros(d, d);
    for i in 0..factors.rows() {
        let diff: Vec<f64> = factors
            .row(i)
            .iter()
            .zip(&xbar)
            .map(|(&f, &m)| f - m)
            .collect();
        s.add_outer(1.0, &diff, &diff);
    }

    // Posterior Gaussian-Wishart parameters.
    let beta_star = beta0 + n;
    let nu_star = nu0 + n;
    let mu_star: Vec<f64> = xbar.iter().map(|&x| n * x / beta_star).collect(); // μ₀ = 0
    let mut w_inv = Matrix::identity(d).scale(1.0 / w0_scale);
    w_inv.axpy(1.0, &s);
    let coeff = beta0 * n / beta_star;
    w_inv.add_outer(coeff, &xbar, &xbar); // (μ₀ − x̄) = −x̄ with μ₀ = 0
    let w_star = Cholesky::decompose_with_jitter(&w_inv, 1e-8, 10)
        .expect("posterior Wishart scale is SPD")
        .inverse();

    let lambda = sample_wishart(rng, nu_star, &w_star);

    // μ ~ N(μ*, (β* Λ)⁻¹): color white noise with chol((β*Λ)⁻¹).
    let prec = lambda.scale(beta_star);
    let prec_chol = Cholesky::decompose_with_jitter(&prec, 1e-8, 10).expect("precision is SPD");
    let z: Vec<f64> = (0..d).map(|_| sample_standard_normal(rng)).collect();
    // If Λ = L Lᵀ then L⁻ᵀ z has covariance Λ⁻¹.
    let noise = prec_chol.backward_substitute(&z);
    let mu: Vec<f64> = mu_star.iter().zip(&noise).map(|(&m, &e)| m + e).collect();
    (mu, lambda)
}

/// Samples one side's factor rows given the other side and hyperparameters.
#[allow(clippy::too_many_arguments)]
fn sample_factors(
    rng: &mut StdRng,
    factors: &mut Matrix,
    other: &Matrix,
    by_entity: &[Vec<(usize, f64)>],
    mu: &[f64],
    lambda: &Matrix,
    alpha: f64,
) {
    let d = factors.cols();
    let lambda_mu = lambda.matvec(mu);
    for (i, ratings) in by_entity.iter().enumerate().take(factors.rows()) {
        let mut prec = lambda.clone();
        let mut b = lambda_mu.clone();
        for &(j, r) in ratings {
            let vj = other.row(j);
            prec.add_outer(alpha, vj, vj);
            for (bk, &v) in b.iter_mut().zip(vj) {
                *bk += alpha * r * v;
            }
        }
        let chol = Cholesky::decompose_with_jitter(&prec, 1e-8, 10).expect("precision is SPD");
        let mean = chol.solve(&b);
        let z: Vec<f64> = (0..d).map(|_| sample_standard_normal(rng)).collect();
        let noise = chol.backward_substitute(&z);
        for (k, (m, e)) in mean.iter().zip(&noise).enumerate() {
            factors.set(i, k, m + e);
        }
    }
}

/// Fits BPMF by Gibbs sampling.
///
/// `clamp` bounds predictions to a rating range (the paper's binary rankings
/// use `Some((0.0, 1.0))`); `None` leaves raw dot products.
///
/// # Panics
/// Panics on invalid configuration, empty observations, or out-of-range
/// indices.
pub fn fit(
    n_rows: usize,
    n_cols: usize,
    ratings: &[Rating],
    cfg: &BpmfConfig,
    clamp: Option<(f64, f64)>,
) -> BpmfModel {
    cfg.validate();
    assert!(!ratings.is_empty(), "BPMF needs at least one observation");
    let d = cfg.n_factors;
    let mut by_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_rows];
    let mut by_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_cols];
    for r in ratings {
        assert!(
            r.row < n_rows && r.col < n_cols,
            "rating index out of range"
        );
        assert!(r.value.is_finite(), "rating must be finite");
        by_row[r.row].push((r.col, r.value));
        by_col[r.col].push((r.row, r.value));
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Initialize factors with small Gaussian noise.
    let mut u = Matrix::from_fn(n_rows, d, |_, _| 0.1 * sample_standard_normal(&mut rng));
    let mut v = Matrix::from_fn(n_cols, d, |_, _| 0.1 * sample_standard_normal(&mut rng));

    let mut acc = Matrix::zeros(n_rows, n_cols);
    let mut n_samples = 0usize;

    for iter in 0..cfg.n_iters {
        let (mu_u, lambda_u) = sample_hyper(&mut rng, &u, cfg.beta0, cfg.w0_scale);
        let (mu_v, lambda_v) = sample_hyper(&mut rng, &v, cfg.beta0, cfg.w0_scale);
        sample_factors(&mut rng, &mut u, &v, &by_row, &mu_u, &lambda_u, cfg.alpha);
        sample_factors(&mut rng, &mut v, &u, &by_col, &mu_v, &lambda_v, cfg.alpha);

        if iter >= cfg.burn_in {
            let pred = u.matmul(&v.transpose());
            acc.axpy(1.0, &pred);
            n_samples += 1;
        }
    }
    assert!(n_samples > 0, "no samples collected");
    acc.scale_mut(1.0 / n_samples as f64);
    BpmfModel {
        predictions: acc,
        clamp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seed: u64) -> BpmfConfig {
        BpmfConfig {
            n_iters: 40,
            burn_in: 15,
            n_factors: 4,
            seed,
            ..Default::default()
        }
    }

    /// Low-rank planted matrix: R = u vᵀ with u, v in {1, 2}.
    fn planted_ratings(n: usize, m: usize) -> (Vec<Rating>, Vec<Vec<f64>>) {
        let full: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| {
                        let ui = if i % 2 == 0 { 1.0 } else { 2.0 };
                        let vj = if j % 2 == 0 { 1.0 } else { 2.0 };
                        ui * vj
                    })
                    .collect()
            })
            .collect();
        let mut obs = Vec::new();
        for i in 0..n {
            for j in 0..m {
                // Hold out a diagonal stripe for testing.
                if (i + j) % 5 != 0 {
                    obs.push(Rating {
                        row: i,
                        col: j,
                        value: full[i][j],
                    });
                }
            }
        }
        (obs, full)
    }

    #[test]
    fn recovers_low_rank_structure_on_held_out_cells() {
        let (obs, full) = planted_ratings(30, 12);
        let model = fit(30, 12, &obs, &quick_cfg(1), None);
        let mut se = 0.0;
        let mut n = 0.0;
        for i in 0..30 {
            for j in 0..12 {
                if (i + j) % 5 == 0 {
                    let e = model.predict(i, j) - full[i][j];
                    se += e * e;
                    n += 1.0;
                }
            }
        }
        let rmse = (se / n).sqrt();
        assert!(rmse < 0.35, "held-out RMSE {rmse}");
    }

    #[test]
    fn positive_only_binary_data_degenerates_to_all_ones() {
        // Reproduce the paper's Figure 5 pathology in miniature: feed only
        // rating-1 observations (owned products); every prediction —
        // including unobserved cells — collapses toward 1.
        let n = 40;
        let m = 10;
        let mut obs = Vec::new();
        for i in 0..n {
            for j in 0..m {
                if (i * 7 + j * 3) % 4 != 0 {
                    obs.push(Rating {
                        row: i,
                        col: j,
                        value: 1.0,
                    });
                }
            }
        }
        let cfg = BpmfConfig {
            n_iters: 80,
            burn_in: 30,
            ..quick_cfg(2)
        };
        let model = fit(n, m, &obs, &cfg, Some((0.0, 1.0)));
        let mut scores = model.all_scores();
        let high = scores.iter().filter(|&&s| s > 0.9).count();
        assert!(
            high as f64 > 0.85 * scores.len() as f64,
            "{high}/{} scores above 0.9",
            scores.len()
        );
        // Figure 5's boxplot: the whole interquartile box sits in [0.9, 1].
        scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        let q1 = scores[scores.len() / 4];
        assert!(q1 > 0.9, "first quartile {q1} must exceed 0.9");
    }

    #[test]
    fn clamping_bounds_predictions() {
        let (obs, _) = planted_ratings(10, 6);
        let model = fit(10, 6, &obs, &quick_cfg(3), Some((0.0, 1.0)));
        assert!(model.all_scores().iter().all(|&s| (0.0..=1.0).contains(&s)));
        let raw = fit(10, 6, &obs, &quick_cfg(3), None);
        assert!(
            raw.all_scores().iter().any(|&s| s > 1.0),
            "planted values reach 4"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (obs, _) = planted_ratings(12, 6);
        let a = fit(12, 6, &obs, &quick_cfg(7), None);
        let b = fit(12, 6, &obs, &quick_cfg(7), None);
        assert_eq!(a.predict(3, 4), b.predict(3, 4));
        let c = fit(12, 6, &obs, &quick_cfg(8), None);
        assert_ne!(a.predict(3, 4), c.predict(3, 4));
    }

    #[test]
    fn predict_row_matches_cells() {
        let (obs, _) = planted_ratings(8, 5);
        let model = fit(8, 5, &obs, &quick_cfg(9), None);
        let row = model.predict_row(2);
        for (j, &v) in row.iter().enumerate() {
            assert_eq!(v, model.predict(2, j));
        }
        assert_eq!(model.shape(), (8, 5));
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn rejects_empty_observations() {
        fit(3, 3, &[], &quick_cfg(1), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_rating() {
        fit(
            3,
            3,
            &[Rating {
                row: 5,
                col: 0,
                value: 1.0,
            }],
            &quick_cfg(1),
            None,
        );
    }
}
