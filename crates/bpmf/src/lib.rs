//! Bayesian Probabilistic Matrix Factorization (BPMF).
//!
//! The matrix-factorization comparator of Section 5.2, after Salakhutdinov &
//! Mnih, *"Bayesian probabilistic matrix factorization using Markov chain
//! Monte Carlo"* (ICML 2008): company and product factor matrices `U`
//! (`N x D`) and `V` (`M x D`) with Gaussian likelihood
//! `R_ij ~ N(U_i · V_j, 1/α)` and Gaussian–Wishart hyperpriors on the factor
//! means and precisions, sampled by Gibbs.
//!
//! The paper feeds BPMF the binary ranking transform of the install-base
//! data — a company's owned products have rating 1 — and observes the
//! degenerate behaviour of Figures 5–6: essentially every recommendation
//! score lands in `[0.9, 1.0]`, because a dense corpus of positive-only
//! ratings admits a perfect rank-1 explanation ("everything is 1"). The
//! experiment binaries reproduce exactly that setup; the implementation
//! itself is a faithful general BPMF that also handles mixed 0/1 or real
//! ratings (see the recovery tests).

use hlm_linalg::cholesky::Cholesky;
use hlm_linalg::dist::{sample_standard_normal, sample_wishart};
use hlm_linalg::Matrix;
use hlm_resilience::{Checkpoint, ResilienceError, TrainControl};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Checkpoint kind tag for BPMF Gibbs runs.
pub const BPMF_CHECKPOINT_KIND: &str = "bpmf";

/// Sampler state after a completed sweep. The prediction accumulator is
/// serialized (not recomputed) so averaging order — and therefore the final
/// model bits — match an uninterrupted run.
#[derive(Serialize, Deserialize)]
struct BpmfState {
    iters_done: u64,
    u: Matrix,
    v: Matrix,
    acc: Matrix,
    n_samples: u64,
    rng: [u64; 4],
}

/// One observed rating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// Row (company) index.
    pub row: usize,
    /// Column (product) index.
    pub col: usize,
    /// Observed value.
    pub value: f64,
}

/// BPMF hyper-parameters and sampler settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpmfConfig {
    /// Latent dimensionality `D`.
    pub n_factors: usize,
    /// Observation precision `α`.
    pub alpha: f64,
    /// Hyperprior strength `β₀` of the factor means.
    pub beta0: f64,
    /// Wishart scale `W₀ = w0_scale · I`.
    pub w0_scale: f64,
    /// Total Gibbs sweeps.
    pub n_iters: usize,
    /// Sweeps discarded before averaging predictions.
    pub burn_in: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BpmfConfig {
    fn default() -> Self {
        BpmfConfig {
            n_factors: 8,
            alpha: 2.0,
            beta0: 2.0,
            w0_scale: 1.0,
            n_iters: 60,
            burn_in: 20,
            seed: 42,
        }
    }
}

impl BpmfConfig {
    /// Checks internal consistency.
    ///
    /// # Panics
    /// Panics on nonsensical settings.
    pub fn validate(&self) {
        assert!(self.n_factors >= 1, "need at least one factor");
        assert!(self.alpha > 0.0 && self.beta0 > 0.0 && self.w0_scale > 0.0);
        assert!(self.n_iters > self.burn_in, "n_iters must exceed burn_in");
    }
}

/// A fitted BPMF model: posterior-mean predictions averaged over the
/// post-burn-in Gibbs samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpmfModel {
    predictions: Matrix,
    clamp: Option<(f64, f64)>,
}

impl BpmfModel {
    /// Posterior-mean prediction for a cell, clamped to the configured
    /// rating range.
    pub fn predict(&self, row: usize, col: usize) -> f64 {
        let raw = self.predictions.get(row, col);
        match self.clamp {
            Some((lo, hi)) => raw.clamp(lo, hi),
            None => raw,
        }
    }

    /// All predictions for a row (a company's recommendation scores over
    /// every product).
    pub fn predict_row(&self, row: usize) -> Vec<f64> {
        (0..self.predictions.cols())
            .map(|c| self.predict(row, c))
            .collect()
    }

    /// Matrix dimensions `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        self.predictions.shape()
    }

    /// Every predicted score, flattened row-major (used for the Figure-5
    /// score-distribution boxplot).
    pub fn all_scores(&self) -> Vec<f64> {
        let (r, c) = self.shape();
        let mut out = Vec::with_capacity(r * c);
        for i in 0..r {
            for j in 0..c {
                out.push(self.predict(i, j));
            }
        }
        out
    }

    /// Appends prediction rows `U_new · Vᵀ` for companies that arrived after
    /// the fit — the cheap half of the streaming update (see
    /// [`fold_in_rows`]). Existing rows are untouched.
    ///
    /// # Panics
    /// Panics if the factor dimensionalities disagree or `v` does not have
    /// one row per existing prediction column.
    pub fn extend_rows(&mut self, u_new: &Matrix, v: &Matrix) {
        assert_eq!(
            u_new.cols(),
            v.cols(),
            "factor dimensionality mismatch between U_new and V"
        );
        assert_eq!(
            v.rows(),
            self.predictions.cols(),
            "V must have one row per predicted column"
        );
        let extra = u_new.matmul_nt(v);
        let (r0, c) = self.predictions.shape();
        let mut out = Matrix::zeros(r0 + extra.rows(), c);
        for i in 0..r0 {
            out.row_mut(i).copy_from_slice(self.predictions.row(i));
        }
        for i in 0..extra.rows() {
            out.row_mut(r0 + i).copy_from_slice(extra.row(i));
        }
        self.predictions = out;
    }
}

/// Ridge (MAP) factor estimates for new rows given frozen item factors `v`:
/// for each row the posterior mean of `u_i` under the Gaussian likelihood
/// with precision `α` and an isotropic prior with precision `lambda`,
///
/// `u_i = (λI + α Σ v_j v_jᵀ)⁻¹ · α Σ r_ij v_j`.
///
/// This is the standard BPMF cold-start fold-in: item factors stay put, new
/// company factors are solved in closed form — no sampling, deterministic,
/// O(|obs|·d² + d³) per row. Rows with no observations get zero factors
/// (predictions fall back to 0, the clamp floor for binary rankings).
///
/// # Panics
/// Panics if `alpha` or `lambda` is not positive, or a rating addresses an
/// item `>= v.rows()`.
pub fn fold_in_rows(v: &Matrix, rows: &[Vec<(usize, f64)>], alpha: f64, lambda: f64) -> Matrix {
    assert!(alpha > 0.0, "observation precision must be positive");
    assert!(lambda > 0.0, "prior precision must be positive");
    let d = v.cols();
    let prior = Matrix::identity(d).scale(lambda);
    let mut out = Matrix::zeros(rows.len(), d);
    let mut prec = Matrix::zeros(d, d);
    let mut b = vec![0.0; d];
    for (i, obs) in rows.iter().enumerate() {
        if obs.is_empty() {
            continue;
        }
        prec.copy_from(&prior);
        b.iter_mut().for_each(|x| *x = 0.0);
        for &(j, rating) in obs {
            assert!(
                j < v.rows(),
                "rating item {j} outside V's {} rows",
                v.rows()
            );
            let vj = v.row(j);
            prec.add_outer(alpha, vj, vj);
            for (bk, &vk) in b.iter_mut().zip(vj) {
                *bk += alpha * rating * vk;
            }
        }
        let chol = Cholesky::decompose_with_jitter(&prec, 1e-8, 10).expect("precision is SPD");
        out.row_mut(i).copy_from_slice(&chol.solve(&b));
    }
    out
}

/// Extracts the item-factor matrix `V` from a BPMF checkpoint — the frozen
/// side of the streaming fold-in ([`fold_in_rows`]).
pub fn item_factors_from_checkpoint(ckpt: &Checkpoint) -> Result<Matrix, ResilienceError> {
    if ckpt.kind != BPMF_CHECKPOINT_KIND {
        return Err(ResilienceError::Mismatch {
            reason: format!("kind {} != {BPMF_CHECKPOINT_KIND}", ckpt.kind),
        });
    }
    Ok(parse_payload(&ckpt.payload)?.v)
}

/// Samples `(μ, Λ)` from the Gaussian–Wishart posterior given a factor
/// matrix (rows = entities).
fn sample_hyper(
    rng: &mut StdRng,
    factors: &Matrix,
    beta0: f64,
    w0_scale: f64,
) -> (Vec<f64>, Matrix) {
    let n = factors.rows() as f64;
    let d = factors.cols();
    let nu0 = d as f64;

    // Sample mean and covariance of the factor rows.
    let mut xbar = vec![0.0; d];
    for i in 0..factors.rows() {
        for (x, &f) in xbar.iter_mut().zip(factors.row(i)) {
            *x += f;
        }
    }
    if n > 0.0 {
        xbar.iter_mut().for_each(|x| *x /= n);
    }
    let mut s = Matrix::zeros(d, d);
    for i in 0..factors.rows() {
        let diff: Vec<f64> = factors
            .row(i)
            .iter()
            .zip(&xbar)
            .map(|(&f, &m)| f - m)
            .collect();
        s.add_outer(1.0, &diff, &diff);
    }

    // Posterior Gaussian-Wishart parameters.
    let beta_star = beta0 + n;
    let nu_star = nu0 + n;
    let mu_star: Vec<f64> = xbar.iter().map(|&x| n * x / beta_star).collect(); // μ₀ = 0
    let mut w_inv = Matrix::identity(d).scale(1.0 / w0_scale);
    w_inv.axpy(1.0, &s);
    let coeff = beta0 * n / beta_star;
    w_inv.add_outer(coeff, &xbar, &xbar); // (μ₀ − x̄) = −x̄ with μ₀ = 0
    let w_star = Cholesky::decompose_with_jitter(&w_inv, 1e-8, 10)
        .expect("posterior Wishart scale is SPD")
        .inverse();

    let lambda = sample_wishart(rng, nu_star, &w_star);

    // μ ~ N(μ*, (β* Λ)⁻¹): color white noise with chol((β*Λ)⁻¹).
    let prec = lambda.scale(beta_star);
    let prec_chol = Cholesky::decompose_with_jitter(&prec, 1e-8, 10).expect("precision is SPD");
    let z: Vec<f64> = (0..d).map(|_| sample_standard_normal(rng)).collect();
    // If Λ = L Lᵀ then L⁻ᵀ z has covariance Λ⁻¹.
    let noise = prec_chol.backward_substitute(&z);
    let mu: Vec<f64> = mu_star.iter().zip(&noise).map(|(&m, &e)| m + e).collect();
    (mu, lambda)
}

/// Factor rows per parallel chunk (fixed: part of the deterministic
/// sampling schedule).
const FACTOR_ROW_CHUNK: usize = 64;

/// Reusable per-worker temporaries for one factor row's conditional draw,
/// built once per pool slot and overwritten for every row (see
/// [`hlm_par::par_for_each_scratch`]).
struct FactorScratch {
    prec: Matrix,
    b: Vec<f64>,
    z: Vec<f64>,
}

/// Samples one side's factor rows given the other side and hyperparameters.
///
/// Rows are conditionally independent given the other side, so they are
/// drawn over fixed chunks in parallel; each chunk uses its own RNG stream
/// derived from `stream_seed` and the chunk index, making the draw
/// bit-identical at any thread count.
#[allow(clippy::too_many_arguments)]
fn sample_factors(
    stream_seed: u64,
    factors: &mut Matrix,
    other: &Matrix,
    by_entity: &[Vec<(usize, f64)>],
    mu: &[f64],
    lambda: &Matrix,
    alpha: f64,
) {
    let d = factors.cols();
    let n_rows = factors.rows();
    let lambda_mu = lambda.matvec(mu);
    // ~d² multiply-adds per observed rating (rank-1 precision update) plus
    // ~d³ per row for the Cholesky factor-and-solve.
    let n_obs: usize = by_entity.iter().map(Vec::len).sum();
    let budget = hlm_par::Budget::units(((n_obs * d * d + n_rows * d * d * d) as u64) * 2);
    let pool = hlm_par::Pool::global();
    let mut blocks: Vec<&mut [f64]> = factors
        .as_mut_slice()
        .chunks_mut(FACTOR_ROW_CHUNK * d)
        .collect();
    hlm_par::par_for_each_scratch(
        &pool,
        budget,
        &mut blocks,
        || FactorScratch {
            prec: Matrix::zeros(d, d),
            b: vec![0.0; d],
            z: vec![0.0; d],
        },
        |s, c, block| {
            // The stream is keyed by the chunk index alone, so per-chunk
            // draws are identical no matter which slot runs the chunk.
            let mut rng = StdRng::seed_from_u64(hlm_par::split_seed(stream_seed, c as u64));
            let row0 = c * FACTOR_ROW_CHUNK;
            for (r, out_row) in block.chunks_exact_mut(d).enumerate() {
                let i = row0 + r;
                if i >= n_rows {
                    break;
                }
                s.prec.copy_from(lambda);
                s.b.copy_from_slice(&lambda_mu);
                for &(j, rating) in &by_entity[i] {
                    let vj = other.row(j);
                    s.prec.add_outer(alpha, vj, vj);
                    for (bk, &v) in s.b.iter_mut().zip(vj) {
                        *bk += alpha * rating * v;
                    }
                }
                let chol =
                    Cholesky::decompose_with_jitter(&s.prec, 1e-8, 10).expect("precision is SPD");
                let mean = chol.solve(&s.b);
                for zk in s.z.iter_mut() {
                    *zk = sample_standard_normal(&mut rng);
                }
                let noise = chol.backward_substitute(&s.z);
                for (o, (m, e)) in out_row.iter_mut().zip(mean.iter().zip(&noise)) {
                    *o = m + e;
                }
            }
        },
    );
}

/// Fits BPMF by Gibbs sampling.
///
/// `clamp` bounds predictions to a rating range (the paper's binary rankings
/// use `Some((0.0, 1.0))`); `None` leaves raw dot products.
///
/// # Panics
/// Panics on invalid configuration, empty observations, or out-of-range
/// indices.
pub fn fit(
    n_rows: usize,
    n_cols: usize,
    ratings: &[Rating],
    cfg: &BpmfConfig,
    clamp: Option<(f64, f64)>,
) -> BpmfModel {
    fit_resumable(
        n_rows,
        n_cols,
        ratings,
        cfg,
        clamp,
        &mut TrainControl::noop(),
        None,
    )
    .expect("noop control cannot interrupt training")
}

/// Like [`fit`], but consults `ctrl` at every sweep boundary (watchdog,
/// divergence and opt-in score-collapse detection, per-sample checkpointing)
/// and optionally continues from an earlier run's checkpoint. An
/// interrupted-then-resumed run produces a model bit-identical to an
/// uninterrupted one.
///
/// Note that score-collapse detection only fires when the control opts in
/// via [`hlm_resilience::CollapsePolicy::Detect`]: the paper's Figure-5
/// positive-only setup collapses *by design*, so plain [`fit`] must keep
/// reproducing it.
///
/// # Panics
/// Panics on the same malformed-input conditions as [`fit`].
#[allow(clippy::too_many_arguments)]
pub fn fit_resumable(
    n_rows: usize,
    n_cols: usize,
    ratings: &[Rating],
    cfg: &BpmfConfig,
    clamp: Option<(f64, f64)>,
    ctrl: &mut TrainControl,
    resume: Option<&Checkpoint>,
) -> Result<BpmfModel, ResilienceError> {
    cfg.validate();
    assert!(!ratings.is_empty(), "BPMF needs at least one observation");
    let d = cfg.n_factors;
    let mut by_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_rows];
    let mut by_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_cols];
    for r in ratings {
        assert!(
            r.row < n_rows && r.col < n_cols,
            "rating index out of range"
        );
        assert!(r.value.is_finite(), "rating must be finite");
        by_row[r.row].push((r.col, r.value));
        by_col[r.col].push((r.row, r.value));
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Initialize factors with small Gaussian noise.
    let mut u = Matrix::from_fn(n_rows, d, |_, _| 0.1 * sample_standard_normal(&mut rng));
    let mut v = Matrix::from_fn(n_cols, d, |_, _| 0.1 * sample_standard_normal(&mut rng));

    let mut acc = Matrix::zeros(n_rows, n_cols);
    let mut n_samples = 0u64;
    let mut start_iter = 0u64;

    if let Some(ckpt) = resume {
        let state = decode_state(ckpt, n_rows, n_cols, d)?;
        start_iter = state.iters_done;
        u = state.u;
        v = state.v;
        acc = state.acc;
        n_samples = state.n_samples;
        rng = StdRng::from_state(state.rng);
    }

    let rec = hlm_obs::global();
    for iter in start_iter as usize..cfg.n_iters {
        ctrl.begin_iteration(iter as u64)?;
        let sweep_t0 = rec.is_enabled().then(std::time::Instant::now);
        let (mu_u, lambda_u) = sample_hyper(&mut rng, &u, cfg.beta0, cfg.w0_scale);
        let (mu_v, lambda_v) = sample_hyper(&mut rng, &v, cfg.beta0, cfg.w0_scale);
        // Factor streams are keyed by (seed, sweep, side) rather than drawn
        // from the master RNG, so chunked parallel draws stay reproducible
        // (and resume-identical: the key depends only on the sweep number).
        let seed_u = hlm_par::split_seed3(cfg.seed ^ 0xFAC7_0125, iter as u64, 0);
        let seed_v = hlm_par::split_seed3(cfg.seed ^ 0xFAC7_0125, iter as u64, 1);
        sample_factors(seed_u, &mut u, &v, &by_row, &mu_u, &lambda_u, cfg.alpha);
        sample_factors(seed_v, &mut v, &u, &by_col, &mu_v, &lambda_v, cfg.alpha);

        if iter >= cfg.burn_in {
            let pred = u.matmul_nt(&v);
            acc.axpy(1.0, &pred);
            n_samples += 1;

            // Divergence and (opt-in) collapse checks on the running mean of
            // the sampled predictions.
            let mean = acc.clone().scale(1.0 / n_samples as f64);
            ctrl.check_metric(
                iter as u64,
                "mean prediction",
                mean.as_slice().iter().sum::<f64>() / mean.as_slice().len() as f64,
            )?;
            ctrl.check_scores(iter as u64, mean.as_slice())?;
        }

        // Pure observation of the finished sweep (the sample counter only
        // advances past burn-in, mirroring `n_samples`).
        if let Some(t0) = sweep_t0 {
            rec.observe("bpmf.sample_seconds", t0.elapsed().as_secs_f64());
            rec.add("bpmf.sweeps", 1);
            if iter >= cfg.burn_in {
                rec.add("bpmf.samples", 1);
            }
        }

        ctrl.checkpoint(iter as u64 + 1, || {
            encode_state(&BpmfState {
                iters_done: iter as u64 + 1,
                u: u.clone(),
                v: v.clone(),
                acc: acc.clone(),
                n_samples,
                rng: rng.state(),
            })
        });
    }
    assert!(n_samples > 0, "no samples collected");
    acc.scale_mut(1.0 / n_samples as f64);
    Ok(BpmfModel {
        predictions: acc,
        clamp,
    })
}

/// Materializes a model directly from a checkpoint, without further sweeps —
/// the rollback path when a later sweep diverges. Fails with
/// [`ResilienceError::Mismatch`] if the checkpoint predates burn-in.
pub fn model_from_checkpoint(
    ckpt: &Checkpoint,
    clamp: Option<(f64, f64)>,
) -> Result<BpmfModel, ResilienceError> {
    if ckpt.kind != BPMF_CHECKPOINT_KIND {
        return Err(ResilienceError::Mismatch {
            reason: format!("kind {} != {BPMF_CHECKPOINT_KIND}", ckpt.kind),
        });
    }
    let state = parse_payload(&ckpt.payload)?;
    if state.n_samples == 0 {
        return Err(ResilienceError::Mismatch {
            reason: "checkpoint predates burn-in: no prediction samples collected".to_string(),
        });
    }
    let mut acc = state.acc;
    acc.scale_mut(1.0 / state.n_samples as f64);
    Ok(BpmfModel {
        predictions: acc,
        clamp,
    })
}

fn encode_state(state: &BpmfState) -> Vec<u8> {
    serde_json::to_string(state)
        .expect("bpmf state serializes")
        .into_bytes()
}

fn parse_payload(payload: &[u8]) -> Result<BpmfState, ResilienceError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ResilienceError::corrupt("bpmf payload is not UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| ResilienceError::corrupt(format!("bpmf payload does not parse: {e}")))
}

fn decode_state(
    ckpt: &Checkpoint,
    n_rows: usize,
    n_cols: usize,
    d: usize,
) -> Result<BpmfState, ResilienceError> {
    if ckpt.kind != BPMF_CHECKPOINT_KIND {
        return Err(ResilienceError::Mismatch {
            reason: format!("kind {} != {BPMF_CHECKPOINT_KIND}", ckpt.kind),
        });
    }
    let state = parse_payload(&ckpt.payload)?;
    if state.u.rows() != n_rows
        || state.u.cols() != d
        || state.v.rows() != n_cols
        || state.v.cols() != d
        || state.acc.rows() != n_rows
        || state.acc.cols() != n_cols
    {
        return Err(ResilienceError::Mismatch {
            reason: "checkpoint factor shapes do not match the rating matrix".to_string(),
        });
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seed: u64) -> BpmfConfig {
        BpmfConfig {
            n_iters: 40,
            burn_in: 15,
            n_factors: 4,
            seed,
            ..Default::default()
        }
    }

    /// Low-rank planted matrix: R = u vᵀ with u, v in {1, 2}.
    fn planted_ratings(n: usize, m: usize) -> (Vec<Rating>, Vec<Vec<f64>>) {
        let full: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| {
                        let ui = if i % 2 == 0 { 1.0 } else { 2.0 };
                        let vj = if j % 2 == 0 { 1.0 } else { 2.0 };
                        ui * vj
                    })
                    .collect()
            })
            .collect();
        let mut obs = Vec::new();
        for i in 0..n {
            for j in 0..m {
                // Hold out a diagonal stripe for testing.
                if (i + j) % 5 != 0 {
                    obs.push(Rating {
                        row: i,
                        col: j,
                        value: full[i][j],
                    });
                }
            }
        }
        (obs, full)
    }

    #[test]
    fn recovers_low_rank_structure_on_held_out_cells() {
        let (obs, full) = planted_ratings(30, 12);
        let model = fit(30, 12, &obs, &quick_cfg(1), None);
        let mut se = 0.0;
        let mut n = 0.0;
        for i in 0..30 {
            for j in 0..12 {
                if (i + j) % 5 == 0 {
                    let e = model.predict(i, j) - full[i][j];
                    se += e * e;
                    n += 1.0;
                }
            }
        }
        let rmse = (se / n).sqrt();
        assert!(rmse < 0.35, "held-out RMSE {rmse}");
    }

    #[test]
    fn positive_only_binary_data_degenerates_to_all_ones() {
        // Reproduce the paper's Figure 5 pathology in miniature: feed only
        // rating-1 observations (owned products); every prediction —
        // including unobserved cells — collapses toward 1.
        let n = 40;
        let m = 10;
        let mut obs = Vec::new();
        for i in 0..n {
            for j in 0..m {
                if (i * 7 + j * 3) % 4 != 0 {
                    obs.push(Rating {
                        row: i,
                        col: j,
                        value: 1.0,
                    });
                }
            }
        }
        let cfg = BpmfConfig {
            n_iters: 80,
            burn_in: 30,
            ..quick_cfg(2)
        };
        let model = fit(n, m, &obs, &cfg, Some((0.0, 1.0)));
        let mut scores = model.all_scores();
        let high = scores.iter().filter(|&&s| s > 0.9).count();
        assert!(
            high as f64 > 0.85 * scores.len() as f64,
            "{high}/{} scores above 0.9",
            scores.len()
        );
        // Figure 5's boxplot: the whole interquartile box sits in [0.9, 1].
        scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        let q1 = scores[scores.len() / 4];
        assert!(q1 > 0.9, "first quartile {q1} must exceed 0.9");
    }

    #[test]
    fn clamping_bounds_predictions() {
        let (obs, _) = planted_ratings(10, 6);
        let model = fit(10, 6, &obs, &quick_cfg(3), Some((0.0, 1.0)));
        assert!(model.all_scores().iter().all(|&s| (0.0..=1.0).contains(&s)));
        let raw = fit(10, 6, &obs, &quick_cfg(3), None);
        assert!(
            raw.all_scores().iter().any(|&s| s > 1.0),
            "planted values reach 4"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (obs, _) = planted_ratings(12, 6);
        let a = fit(12, 6, &obs, &quick_cfg(7), None);
        let b = fit(12, 6, &obs, &quick_cfg(7), None);
        assert_eq!(a.predict(3, 4), b.predict(3, 4));
        let c = fit(12, 6, &obs, &quick_cfg(8), None);
        assert_ne!(a.predict(3, 4), c.predict(3, 4));
    }

    #[test]
    fn predict_row_matches_cells() {
        let (obs, _) = planted_ratings(8, 5);
        let model = fit(8, 5, &obs, &quick_cfg(9), None);
        let row = model.predict_row(2);
        for (j, &v) in row.iter().enumerate() {
            assert_eq!(v, model.predict(2, j));
        }
        assert_eq!(model.shape(), (8, 5));
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn rejects_empty_observations() {
        fit(3, 3, &[], &quick_cfg(1), None);
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_run() {
        use hlm_resilience::{CheckpointStore, MemIo, RunGuard};

        let (obs, _) = planted_ratings(12, 6);
        let cfg = quick_cfg(7);
        let full = fit(12, 6, &obs, &cfg, None);

        // Kill after burn-in (15) so the prediction accumulator is mid-sum.
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let mut ctrl = TrainControl::new(BPMF_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(25));
        let err = fit_resumable(12, 6, &obs, &cfg, None, &mut ctrl, None).unwrap_err();
        assert!(err.is_interruption());

        let ckpt = store.latest_good(BPMF_CHECKPOINT_KIND).unwrap().unwrap();
        assert_eq!(ckpt.iteration, 25);
        let resumed = fit_resumable(
            12,
            6,
            &obs,
            &cfg,
            None,
            &mut TrainControl::noop(),
            Some(&ckpt),
        )
        .unwrap();
        for i in 0..12 {
            assert_eq!(
                resumed.predict_row(i),
                full.predict_row(i),
                "row {i} must be bit-identical after resume"
            );
        }

        // Rollback from the same checkpoint yields a usable (partial-average)
        // model.
        let rolled = model_from_checkpoint(&ckpt, None).unwrap();
        assert_eq!(rolled.shape(), (12, 6));
        assert!(rolled.all_scores().iter().all(|s| s.is_finite()));
    }

    #[test]
    fn collapse_detection_is_opt_in_and_fires_on_constant_scores() {
        use hlm_resilience::CollapsePolicy;

        // All-identical positive-only ratings with heavy clamping produce a
        // near-constant prediction matrix only under pathological configs;
        // instead, prove the plumbing with an injected NaN, and that the
        // default policy leaves the Figure-5 setup alone.
        let (obs, _) = planted_ratings(10, 6);
        let cfg = quick_cfg(4);

        let mut strict = TrainControl::noop()
            .with_faults(hlm_resilience::FaultPlan::none().with_nan_at_iteration(20));
        let err = fit_resumable(10, 6, &obs, &cfg, None, &mut strict, None).unwrap_err();
        assert!(matches!(
            err,
            ResilienceError::Diverged { iteration: 20, .. }
        ));

        // Opt-in collapse detection does not fire on healthy factorization.
        let mut detect = TrainControl::noop().with_collapse_policy(CollapsePolicy::Detect);
        assert!(fit_resumable(10, 6, &obs, &cfg, None, &mut detect, None).is_ok());
    }

    #[test]
    fn fold_in_rows_recovers_planted_factors() {
        // Planted V with distinct rows; new companies rate every item from a
        // known u; the ridge solution must reproduce u (small prior, exact
        // ratings) and the extended model must predict the products.
        let d = 3;
        let v = Matrix::from_fn(6, d, |i, j| ((i * 3 + j) % 5) as f64 * 0.5 - 1.0);
        let planted: Vec<Vec<f64>> = vec![vec![1.0, -0.5, 2.0], vec![0.0, 1.5, -1.0]];
        let rows: Vec<Vec<(usize, f64)>> = planted
            .iter()
            .map(|u| {
                (0..6)
                    .map(|j| (j, u.iter().zip(v.row(j)).map(|(a, b)| a * b).sum()))
                    .collect()
            })
            .collect();
        let u_new = fold_in_rows(&v, &rows, 100.0, 1e-4);
        for (i, u) in planted.iter().enumerate() {
            for (k, &want) in u.iter().enumerate() {
                let got = u_new.get(i, k);
                assert!((got - want).abs() < 1e-2, "u[{i}][{k}] {got} vs {want}");
            }
        }
    }

    #[test]
    fn fold_in_rows_empty_row_gets_zero_factors() {
        let v = Matrix::identity(4);
        let u = fold_in_rows(&v, &[vec![], vec![(0, 1.0)]], 2.0, 1.0);
        assert!(u.row(0).iter().all(|&x| x == 0.0));
        assert!(u.row(1).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn extend_rows_appends_dot_product_predictions() {
        let (obs, _) = planted_ratings(8, 5);
        let mut model = fit(8, 5, &obs, &quick_cfg(5), Some((0.0, 5.0)));
        let v = Matrix::from_fn(5, 2, |i, j| (i + j) as f64 * 0.1);
        let u_new = Matrix::from_rows(&[&[1.0, 2.0]]);
        let before_row0 = model.predict_row(0);
        model.extend_rows(&u_new, &v);
        assert_eq!(model.shape(), (9, 5));
        assert_eq!(model.predict_row(0), before_row0, "existing rows untouched");
        for j in 0..5 {
            let raw: f64 = [1.0, 2.0].iter().zip(v.row(j)).map(|(a, b)| a * b).sum();
            assert_eq!(model.predict(8, j), raw.clamp(0.0, 5.0));
        }
    }

    #[test]
    fn item_factors_roundtrip_through_checkpoint() {
        use hlm_resilience::{CheckpointStore, MemIo, RunGuard};

        let (obs, _) = planted_ratings(12, 6);
        let cfg = quick_cfg(7);
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let mut ctrl = TrainControl::new(BPMF_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(25));
        fit_resumable(12, 6, &obs, &cfg, None, &mut ctrl, None).unwrap_err();
        let ckpt = store.latest_good(BPMF_CHECKPOINT_KIND).unwrap().unwrap();

        let v = item_factors_from_checkpoint(&ckpt).unwrap();
        assert_eq!(v.shape(), (6, cfg.n_factors));
        assert!(v.as_slice().iter().all(|x| x.is_finite()));

        let bad = Checkpoint {
            kind: "lda".to_string(),
            ..ckpt.clone()
        };
        assert!(item_factors_from_checkpoint(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_rating() {
        fit(
            3,
            3,
            &[Rating {
                row: 5,
                col: 0,
                value: 1.0,
            }],
            &quick_cfg(1),
            None,
        );
    }
}
