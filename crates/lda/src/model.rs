//! The estimated LDA model and fold-in inference.

use hlm_linalg::dist::sample_categorical;
use hlm_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which per-token kernel the collapsed Gibbs sweep uses.
///
/// All three sample from the *same* collapsed conditional — the choice
/// changes the constant factor per token, never the distribution — but each
/// consumes RNG draws differently, so a fixed choice is part of the
/// deterministic sampling schedule: changing it changes the chain, keeping
/// it changes nothing (bit-identical at any thread/shard count, kill/resume
/// included). See DESIGN.md §3.8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum SamplerChoice {
    /// Pick per configuration: a pure function of `K` (see
    /// [`SamplerChoice::resolve`]), so the choice cannot vary with
    /// scheduling or hardware.
    #[default]
    Auto,
    /// Fused dense cumulative pass — O(K) per token, lowest constant.
    Dense,
    /// SparseLDA bucket sampler (Yao–Mimno–McCallum) — O(topics present)
    /// per token.
    Bucket,
    /// LightLDA-style alias-method Metropolis–Hastings — O(1) proposals
    /// from per-word alias tables rebuilt each sweep, accepted against the
    /// exact conditional.
    AliasMh,
}

impl SamplerChoice {
    /// Resolves `Auto` to a concrete kernel for topic count `k`. The
    /// cutoffs come from `bench_samplers`: the dense fused pass wins small
    /// K, the bucket sampler's list scans win mid K, and the O(1) alias-MH
    /// proposals win once K outgrows the per-word topic lists (with M = 38
    /// the lists are near-dense by K = 64, so the bucket scan is O(K)
    /// again).
    pub fn resolve(self, k: usize) -> SamplerChoice {
        match self {
            SamplerChoice::Auto => {
                if k <= 16 {
                    SamplerChoice::Dense
                } else if k <= 64 {
                    SamplerChoice::Bucket
                } else {
                    SamplerChoice::AliasMh
                }
            }
            other => other,
        }
    }

    /// Stable lowercase name, used for metrics and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            SamplerChoice::Auto => "auto",
            SamplerChoice::Dense => "dense",
            SamplerChoice::Bucket => "bucket",
            SamplerChoice::AliasMh => "alias",
        }
    }
}

impl std::str::FromStr for SamplerChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(SamplerChoice::Auto),
            "dense" => Ok(SamplerChoice::Dense),
            "bucket" => Ok(SamplerChoice::Bucket),
            "alias" | "alias-mh" => Ok(SamplerChoice::AliasMh),
            other => Err(format!(
                "unknown sampler {other:?} (use auto|dense|bucket|alias)"
            )),
        }
    }
}

/// Hyper-parameters and sampler settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of latent topics `K` (the user-set parameter swept in Fig. 2).
    pub n_topics: usize,
    /// Vocabulary size `M` (38 in the paper).
    pub vocab_size: usize,
    /// Symmetric document-topic prior. When `None`, uses `1 / K`: install
    /// bases are short documents (a handful of products), so the classic
    /// Griffiths–Steyvers `50 / K` would swamp the per-document counts and
    /// flatten every topic mixture.
    pub alpha: Option<f64>,
    /// Symmetric topic-word prior.
    pub beta: f64,
    /// Total Gibbs sweeps.
    pub n_iters: usize,
    /// Sweeps discarded before collecting `phi` samples.
    pub burn_in: usize,
    /// Collect a `phi` sample every `sample_lag` sweeps after burn-in.
    pub sample_lag: usize,
    /// RNG seed.
    pub seed: u64,
    /// Re-estimate the symmetric `alpha` during burn-in with Minka's
    /// fixed-point update (every 10 sweeps). The estimated value replaces
    /// the configured one for the rest of the chain and in the returned
    /// model.
    #[serde(default)]
    pub optimize_alpha: bool,
    /// Per-token Gibbs kernel. `Auto` (the default, and what every
    /// pre-existing config deserializes to) resolves to a pure function of
    /// `n_topics`; a fixed explicit choice is part of the sampling schedule
    /// and changes the chain.
    #[serde(default)]
    pub sampler: SamplerChoice,
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig {
            n_topics: 3,
            vocab_size: 38,
            alpha: None,
            beta: 0.1,
            n_iters: 200,
            burn_in: 100,
            sample_lag: 10,
            seed: 42,
            optimize_alpha: false,
            sampler: SamplerChoice::Auto,
        }
    }
}

impl LdaConfig {
    /// The effective symmetric alpha.
    pub fn effective_alpha(&self) -> f64 {
        self.alpha.unwrap_or(1.0 / self.n_topics as f64)
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    /// Panics on nonsensical settings.
    pub fn validate(&self) {
        assert!(self.n_topics >= 1, "need at least one topic");
        assert!(self.vocab_size >= 1, "need a vocabulary");
        assert!(self.effective_alpha() > 0.0, "alpha must be positive");
        assert!(self.beta > 0.0, "beta must be positive");
        assert!(self.n_iters > self.burn_in, "n_iters must exceed burn_in");
        assert!(self.sample_lag >= 1, "sample_lag must be at least 1");
    }
}

/// A trained LDA model: the topic-word distributions and priors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaModel {
    /// `K x M` row-stochastic topic-word matrix (posterior mean of `phi`).
    phi: Matrix,
    /// Symmetric document-topic prior.
    alpha: f64,
    /// Symmetric topic-word prior.
    beta: f64,
}

impl LdaModel {
    /// Wraps an estimated `phi` with its priors.
    ///
    /// # Panics
    /// Panics if a row of `phi` does not sum to ~1 or priors are invalid.
    pub fn new(phi: Matrix, alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && beta > 0.0, "priors must be positive");
        for k in 0..phi.rows() {
            let s: f64 = phi.row(k).iter().sum();
            assert!(
                (s - 1.0).abs() < 1e-6,
                "phi row {k} sums to {s}, expected a distribution"
            );
        }
        LdaModel { phi, alpha, beta }
    }

    /// Number of topics `K`.
    pub fn n_topics(&self) -> usize {
        self.phi.rows()
    }

    /// Vocabulary size `M`.
    pub fn vocab_size(&self) -> usize {
        self.phi.cols()
    }

    /// The `K x M` topic-word matrix.
    pub fn phi(&self) -> &Matrix {
        &self.phi
    }

    /// Document-topic prior.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Topic-word prior.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Number of free parameters, `K + K·M`, as counted in the paper's
    /// "lessons learned" comparison with the LSTM.
    pub fn parameter_count(&self) -> usize {
        self.n_topics() + self.n_topics() * self.vocab_size()
    }

    /// Fold-in EM estimate of a document's topic mixture θ (the company
    /// representation `B_i`).
    ///
    /// Runs fixed-φ EM: responsibilities `p(k | w) ∝ θ_k φ_kw`, then
    /// `θ ∝ α + Σ_w weight · p(k | w)`, iterated to convergence. Determinism
    /// makes this the default for representations and recommendations.
    ///
    /// Words with `index >= vocab_size()` — products launched after this
    /// model was trained — are skipped, so a pre-growth model can still score
    /// companies from a corpus whose vocabulary grew mid-stream.
    pub fn infer_theta(&self, doc: &[(usize, f64)]) -> Vec<f64> {
        let k = self.n_topics();
        let mut theta = vec![1.0 / k as f64; k];
        if doc.is_empty() {
            return theta;
        }
        let mut resp = vec![0.0; k];
        for _ in 0..50 {
            let mut new_theta = vec![self.alpha; k];
            for &(w, weight) in doc {
                if w >= self.vocab_size() {
                    continue; // product unknown to this model's vocabulary
                }
                let mut s = 0.0;
                for t in 0..k {
                    resp[t] = theta[t] * self.phi.get(t, w);
                    s += resp[t];
                }
                if s <= 0.0 {
                    continue; // word impossible under every topic; skip it
                }
                for t in 0..k {
                    new_theta[t] += weight * resp[t] / s;
                }
            }
            let total: f64 = new_theta.iter().sum();
            new_theta.iter_mut().for_each(|x| *x /= total);
            let delta: f64 = theta
                .iter()
                .zip(&new_theta)
                .map(|(a, b)| (a - b).abs())
                .sum();
            theta = new_theta;
            if delta < 1e-10 {
                break;
            }
        }
        theta
    }

    /// Fold-in Gibbs estimate of θ: samples topic assignments for the
    /// document with φ fixed and averages `(n_k + α) / (n + Kα)` over the
    /// post-burn-in sweeps. Stochastic but unbiased; used in tests to
    /// validate the EM estimate.
    pub fn infer_theta_gibbs(
        &self,
        doc: &[(usize, f64)],
        n_iters: usize,
        burn_in: usize,
        seed: u64,
    ) -> Vec<f64> {
        assert!(n_iters > burn_in, "n_iters must exceed burn_in");
        let k = self.n_topics();
        if doc.is_empty() {
            return vec![1.0 / k as f64; k];
        }
        let mut rng = StdRng::seed_from_u64(seed);
        // Same unknown-word rule as `infer_theta`: skip products this model
        // has no φ column for.
        let doc: Vec<(usize, f64)> = doc
            .iter()
            .copied()
            .filter(|&(w, _)| w < self.vocab_size())
            .collect();
        if doc.is_empty() {
            return vec![1.0 / k as f64; k];
        }
        let mut z = vec![0usize; doc.len()];
        let mut n_k = vec![0.0f64; k];
        let total_weight: f64 = doc.iter().map(|&(_, w)| w).sum();

        // Initialize assignments proportional to phi alone.
        for (i, &(w, weight)) in doc.iter().enumerate() {
            let weights: Vec<f64> = (0..k).map(|t| self.phi.get(t, w).max(1e-300)).collect();
            z[i] = sample_categorical(&mut rng, &weights);
            n_k[z[i]] += weight;
        }

        let mut acc = vec![0.0f64; k];
        let mut n_samples = 0.0;
        let mut weights = vec![0.0; k];
        for iter in 0..n_iters {
            for (i, &(w, weight)) in doc.iter().enumerate() {
                n_k[z[i]] -= weight;
                for (t, wt) in weights.iter_mut().enumerate() {
                    *wt = (n_k[t] + self.alpha) * self.phi.get(t, w).max(1e-300);
                }
                z[i] = sample_categorical(&mut rng, &weights);
                n_k[z[i]] += weight;
            }
            if iter >= burn_in {
                let denom = total_weight + k as f64 * self.alpha;
                for t in 0..k {
                    acc[t] += (n_k[t] + self.alpha) / denom;
                }
                n_samples += 1.0;
            }
        }
        acc.iter_mut().for_each(|x| *x /= n_samples);
        acc
    }

    /// Predictive word distribution `p(w | θ) = Σ_k θ_k φ_kw`.
    ///
    /// # Panics
    /// Panics if `theta.len() != K`.
    pub fn predictive_distribution(&self, theta: &[f64]) -> Vec<f64> {
        assert_eq!(theta.len(), self.n_topics(), "theta dimension mismatch");
        self.phi.vecmat(theta)
    }

    /// Predictive distribution for a document's future products given its
    /// current install base (fold-in then mixture) — the LDA recommender
    /// score of Section 4.3.
    pub fn predict_products(&self, doc: &[(usize, f64)]) -> Vec<f64> {
        let theta = self.infer_theta(doc);
        self.predictive_distribution(&theta)
    }

    /// Product embeddings: an `M x K` matrix whose row `w` is
    /// `p(topic | product w) ∝ φ_kw · p(k)` under a uniform topic prior.
    /// These are the vectors projected by t-SNE in Figures 8–9.
    pub fn product_embeddings(&self) -> Matrix {
        let k = self.n_topics();
        let m = self.vocab_size();
        let mut out = Matrix::zeros(m, k);
        for w in 0..m {
            let mut col: Vec<f64> = (0..k).map(|t| self.phi.get(t, w)).collect();
            let s: f64 = col.iter().sum();
            if s > 0.0 {
                col.iter_mut().for_each(|x| *x /= s);
            } else {
                col.iter_mut().for_each(|x| *x = 1.0 / k as f64);
            }
            for (t, &v) in col.iter().enumerate() {
                out.set(w, t, v);
            }
        }
        out
    }

    /// The most probable products of topic `k`, best first.
    ///
    /// # Panics
    /// Panics if `k >= K`.
    pub fn top_products(&self, k: usize, n: usize) -> Vec<(usize, f64)> {
        assert!(k < self.n_topics(), "topic out of range");
        let mut pairs: Vec<(usize, f64)> = self.phi.row(k).iter().copied().enumerate().collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("phi is finite"));
        pairs.truncate(n);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> LdaModel {
        // Two sharply separated topics over 4 words.
        let phi = Matrix::from_rows(&[&[0.45, 0.45, 0.05, 0.05], &[0.05, 0.05, 0.45, 0.45]]);
        LdaModel::new(phi, 0.1, 0.01)
    }

    #[test]
    fn config_defaults_validate() {
        LdaConfig::default().validate();
        assert!((LdaConfig::default().effective_alpha() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "expected a distribution")]
    fn model_rejects_unnormalized_phi() {
        let phi = Matrix::from_rows(&[&[0.5, 0.2]]);
        LdaModel::new(phi, 0.1, 0.1);
    }

    #[test]
    fn parameter_count_matches_paper_formula() {
        // Paper: nt + nt * M; for 4 topics over 38 products = 156.
        let phi = {
            let mut p = Matrix::filled(4, 38, 1.0 / 38.0);
            p.normalize_rows();
            p
        };
        let m = LdaModel::new(phi, 0.1, 0.1);
        assert_eq!(m.parameter_count(), 156);
    }

    #[test]
    fn infer_theta_identifies_topic() {
        let m = toy_model();
        let theta = m.infer_theta(&[(0, 1.0), (1, 1.0)]);
        assert!(
            theta[0] > 0.8,
            "doc of topic-0 words must load topic 0: {theta:?}"
        );
        let theta2 = m.infer_theta(&[(2, 1.0), (3, 1.0)]);
        assert!(theta2[1] > 0.8);
    }

    #[test]
    fn infer_theta_empty_doc_is_uniform() {
        let m = toy_model();
        assert_eq!(m.infer_theta(&[]), vec![0.5, 0.5]);
    }

    #[test]
    fn gibbs_and_em_theta_agree() {
        let m = toy_model();
        let doc = vec![(0, 1.0), (1, 1.0), (0, 1.0)];
        let em = m.infer_theta(&doc);
        let gb = m.infer_theta_gibbs(&doc, 600, 100, 5);
        assert!((em[0] - gb[0]).abs() < 0.12, "em {em:?} vs gibbs {gb:?}");
    }

    #[test]
    fn predictive_distribution_is_normalized_mixture() {
        let m = toy_model();
        let p = m.predictive_distribution(&[0.5, 0.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((p[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn predict_products_prefers_in_topic_words() {
        let m = toy_model();
        let p = m.predict_products(&[(0, 1.0)]);
        assert!(p[1] > p[2], "same-topic word must score higher: {p:?}");
    }

    #[test]
    fn product_embeddings_rows_are_distributions() {
        let m = toy_model();
        let e = m.product_embeddings();
        assert_eq!(e.shape(), (4, 2));
        for w in 0..4 {
            assert!((e.row(w).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert!(e.get(0, 0) > 0.8);
        assert!(e.get(3, 1) > 0.8);
    }

    #[test]
    fn top_products_sorted_descending() {
        let m = toy_model();
        let tops = m.top_products(0, 3);
        assert_eq!(tops.len(), 3);
        assert!(tops[0].1 >= tops[1].1 && tops[1].1 >= tops[2].1);
        assert!(tops[0].0 == 0 || tops[0].0 == 1);
    }
}
