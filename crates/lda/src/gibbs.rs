//! Weighted collapsed Gibbs sampler for LDA.
//!
//! Standard Griffiths–Steyvers collapsed Gibbs with one twist: each token
//! carries a real-valued weight, so count tables are `f64`. With unit
//! weights this is exactly classic LDA; with IDF weights it reproduces the
//! gensim behaviour of training on TF-IDF-transformed corpora that the paper
//! evaluates as the alternative input in Figure 2.
//!
//! Sweeps are data-parallel in the AD-LDA style (Newman et al.): documents
//! are sliced into fixed chunks, each chunk samples against a sweep-start
//! snapshot of the topic-word table with its own RNG stream derived from
//! `(seed, sweep, chunk)`, and the per-chunk count deltas are merged in
//! chunk order. Chunk boundaries and streams never depend on the worker
//! count, so results are bit-identical at any `HLM_THREADS` — and the
//! checkpoint/resume bit-identity guarantee carries over unchanged.

use crate::model::{LdaConfig, LdaModel, SamplerChoice};
use crate::WeightedDoc;
use hlm_linalg::dist::AliasTableSet;
use hlm_linalg::{Matrix, SparseDelta};
use hlm_par::{Budget, Pool};
use hlm_resilience::{Checkpoint, ResilienceError, TrainControl};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Documents per parallel Gibbs chunk. Fixed: chunk boundaries are part of
/// the deterministic sampling schedule, not a tuning knob per machine.
/// Shard boundaries (`hlm_corpus::shard::SHARD_ALIGN`) are multiples of this,
/// so a shard's local chunks coincide with global chunks — the key to the
/// sharded sampler's bit-identity (see `sharded`).
pub(crate) const DOC_CHUNK: usize = 64;

/// Metropolis–Hastings cycles per token in the alias sampler: each cycle is
/// one word-proposal step and one doc-proposal step. Two cycles is the
/// operating point where perplexity matches the exact samplers (see
/// `tests/sampler_equivalence.rs`); one cycle is measurably under-mixed on
/// the paper's corpus sizes. Part of the sampling schedule: fixed.
const MH_CYCLES: usize = 2;

/// Tokens between batch re-derivations of the topic-total reciprocals in
/// the alias kernel. The totals themselves are maintained exactly; only
/// their reciprocals go briefly stale, trading two on-critical-path f64
/// divisions per token for `k` vectorizable ones per refresh. Part of the
/// sampling schedule: fixed.
const INV_REFRESH: usize = 128;

/// Cost-model estimate of one sweep: per weighted token, fixed bookkeeping
/// plus roughly one multiply-accumulate per topic for the scanning kernels;
/// the alias-MH kernel is O(1) per token (in [`Budget`] units of ~1 ns of
/// serial work).
pub(crate) fn sweep_budget(n_tokens: usize, k: usize, kind: SamplerChoice) -> Budget {
    match kind {
        SamplerChoice::AliasMh => Budget::items(n_tokens, 150),
        _ => Budget::items(n_tokens, 16 + 8 * k as u64),
    }
}

/// Stride of one chunk's slice of the shared delta buffer. The scanning
/// kernels write a dense `k*m` topic-word delta plus `k` topic totals; the
/// alias kernel writes a sparse `[n, (cell, delta)*n, .., k totals]` record
/// (the pair region is sized for the worst case, the tail `k` totals always
/// sit at the end of the slice).
pub(crate) fn delta_stride(kind: SamplerChoice, k: usize, m: usize) -> usize {
    match kind {
        SamplerChoice::AliasMh => 1 + 2 * k * m + k,
        _ => k * m + k,
    }
}

/// Folds one chunk's delta slice into the global (or accumulator) tables.
/// Both the in-memory and the sharded sweep use this exact routine in global
/// chunk order, so each count cell sees the identical addition sequence —
/// the bit-identity contract between the two trainers.
pub(crate) fn merge_chunk_delta(
    kind: SamplerChoice,
    chunk_delta: &[f64],
    n_kw: &mut [f64],
    n_k: &mut [f64],
    k: usize,
    m: usize,
) {
    match kind {
        SamplerChoice::AliasMh => {
            let n = chunk_delta[0] as usize;
            for pair in chunk_delta[1..1 + 2 * n].chunks_exact(2) {
                n_kw[pair[0] as usize] += pair[1];
            }
            let tail = &chunk_delta[chunk_delta.len() - k..];
            for (g, &d) in n_k.iter_mut().zip(tail) {
                *g += d;
            }
        }
        _ => {
            let (kw_delta, k_delta) = chunk_delta.split_at(k * m);
            for (g, &d) in n_kw.iter_mut().zip(kw_delta) {
                *g += d;
            }
            for (g, &d) in n_k.iter_mut().zip(k_delta) {
                *g += d;
            }
        }
    }
}

/// Per-sweep counter name for the kernel actually taken (`kind` must be
/// resolved), so crossover cutoffs are tunable from `/metrics`.
pub(crate) fn sampler_counter(kind: SamplerChoice) -> &'static str {
    match kind {
        SamplerChoice::Dense => "lda.sampler.dense",
        SamplerChoice::Bucket => "lda.sampler.bucket",
        SamplerChoice::AliasMh => "lda.sampler.alias",
        // Unreachable after `resolve`, kept total for safety.
        SamplerChoice::Auto => "lda.sampler.auto",
    }
}

/// Accumulates one topic's posterior-mean contribution
/// `phi_row += (n_kw_row + β) / (n_k + Mβ)`. With the `fast-math` feature
/// the count part goes through the unrolled f32 `axpy`; the default build
/// keeps the exact historical expression bit-for-bit. Shared by the
/// in-memory and sharded trainers so both flip together.
pub(crate) fn accumulate_phi_row(
    phi_row: &mut [f64],
    kw_row: &[f64],
    nk: f64,
    beta: f64,
    beta_sum: f64,
) {
    let denom = nk + beta_sum;
    if hlm_linalg::fastmath::FAST_MATH_ENABLED {
        let inv = 1.0 / denom;
        hlm_linalg::fastmath::axpy(phi_row, inv, kw_row);
        let smooth = beta * inv;
        phi_row.iter_mut().for_each(|p| *p += smooth);
    } else {
        for (acc, &c) in phi_row.iter_mut().zip(kw_row) {
            *acc += (c + beta) / denom;
        }
    }
}

/// Per-word Walker alias tables over the sweep-start snapshot, shared
/// read-only by every chunk of a sweep. The table for word `w` encodes the
/// word-proposal distribution
///
/// ```text
/// q̃_w(t) = (snap_kw[t,w] + β) / (snap_k[t] + Mβ)
/// ```
///
/// — the true conditional with the document factor dropped and counts frozen
/// at the snapshot. Staleness is bounded at one sweep (the in-memory
/// trainer) or one shard step against the same sweep snapshot (the sharded
/// trainer): both rebuild from the identical `(n_kw, n_k)` tables, and
/// [`AliasTableSet::build_table`] is a pure function of its weights, so the
/// two trainers draw from bit-identical tables.
pub(crate) struct WordAliasTables {
    set: AliasTableSet,
    /// Snapshot reciprocals `1 / (snap_k[t] + Mβ)`, kept so the MH accept
    /// ratio can re-derive `q̃_w(t)` for arbitrary `t` in O(1).
    snap_inv: Vec<f64>,
    /// Reusable weight buffer for rebuilds.
    weights: Vec<f64>,
}

impl WordAliasTables {
    pub(crate) fn new(k: usize, m: usize) -> Self {
        WordAliasTables {
            set: AliasTableSet::new(m, k),
            snap_inv: vec![0.0; k],
            weights: vec![0.0; k],
        }
    }

    /// Rebuilds every word's table from the sweep-start snapshot,
    /// allocation-free after the first call. Counted per rebuild under
    /// `lda.alias.rebuilds`.
    pub(crate) fn rebuild(&mut self, n_kw: &Matrix, n_k: &[f64], beta: f64, beta_sum: f64) {
        let (k, m) = (n_kw.rows(), n_kw.cols());
        debug_assert_eq!(k, self.snap_inv.len());
        for (inv, &tot) in self.snap_inv.iter_mut().zip(n_k) {
            *inv = 1.0 / (tot + beta_sum);
        }
        let mut weights = std::mem::take(&mut self.weights);
        let snap = n_kw.as_slice();
        for w in 0..m {
            for (t, wt) in weights.iter_mut().enumerate() {
                *wt = (snap[t * m + w].max(0.0) + beta) * self.snap_inv[t];
            }
            self.set.build_table(w, &weights);
        }
        self.weights = weights;
        hlm_obs::global().add("lda.alias.rebuilds", 1);
    }
}

/// One chunk's mutable slice of a sweep: its token assignments and
/// document-topic rows (mutated in place — they are disjoint between
/// chunks) and its scratch area for the count-table deltas that must merge
/// in chunk order.
pub(crate) struct ChunkView<'a> {
    pub(crate) z: &'a mut [u16],
    pub(crate) dk: &'a mut [f64],
    /// The chunk's [`delta_stride`]-sized slice of the shared delta buffer;
    /// layout per sampler kind (see [`merge_chunk_delta`]). Every cell the
    /// merge reads is overwritten by the chunk.
    pub(crate) delta: &'a mut [f64],
    pub(crate) d_lo: usize,
    pub(crate) t_lo: usize,
    /// MH proposals / acceptances made by this chunk (alias sampler only).
    /// Counted unconditionally — plain integer adds that never touch the
    /// RNG — and summed in chunk order by the caller, so the recorder
    /// on/off state cannot perturb the chain or the reported totals.
    pub(crate) mh_proposed: u64,
    pub(crate) mh_accepted: u64,
}

/// Immutable per-sweep context shared by every chunk. `chunk_base` is the
/// global index of the context's first chunk: the whole-corpus sweep passes
/// 0, the sharded sweep passes the shard's global chunk offset, so both draw
/// from identical per-chunk RNG streams.
pub(crate) struct SweepCtx<'a> {
    pub(crate) tok_doc: &'a [u32],
    pub(crate) tok_word: &'a [u32],
    pub(crate) tok_weight: &'a [f64],
    pub(crate) n_kw: &'a Matrix,
    pub(crate) n_k: &'a [f64],
    pub(crate) k: usize,
    pub(crate) m: usize,
    pub(crate) alpha: f64,
    pub(crate) beta: f64,
    pub(crate) beta_sum: f64,
    pub(crate) seed: u64,
    pub(crate) sweep: u64,
    pub(crate) chunk_base: usize,
    /// Resolved per-token kernel (never `Auto`).
    pub(crate) kind: SamplerChoice,
    /// Per-word proposal tables, present iff `kind == AliasMh`. Rebuilt
    /// from the same snapshot `n_kw`/`n_k` point to, once per sweep.
    pub(crate) alias: Option<&'a WordAliasTables>,
}

/// Per-slot scratch reused across every chunk a pool slot processes, so
/// the inner sampling loop allocates nothing. Everything read is fully
/// re-initialized per chunk (tables, reciprocals, word lists) or per
/// document (topic list), keeping chunk results a pure function of the
/// chunk — the `par_for_each_scratch` contract.
pub(crate) struct SweepScratch {
    /// Chunk-local topic-word counts (`k*m`), copied from the sweep-start
    /// snapshot at chunk entry. Empty in alias mode, which reads
    /// snapshot + [`SweepScratch::kw_delta`] instead of paying the O(K·M)
    /// copy per chunk.
    kw: Vec<f64>,
    /// Chunk-local sparse topic-word delta against the snapshot (alias mode
    /// only): O(1) current-count reads, O(touched) reset and emission.
    kw_delta: SparseDelta,
    /// Chunk-local topic totals (`k`).
    k_tot: Vec<f64>,
    /// Cached reciprocals `1 / (k_tot[t] + Mβ)` — turns the per-topic
    /// division of the collapsed conditional into a multiply.
    inv: Vec<f64>,
    /// Dense cumulative-weight buffer for the fused sampler (`k`).
    cum: Vec<f64>,
    /// Maintained sparse topic list of the document being sampled
    /// (topics with positive doc-topic count).
    doc_topics: Vec<u16>,
    /// Cumulative weights over `doc_topics`.
    doc_cum: Vec<f64>,
    /// Maintained per-word sparse topic lists (bucket sampler only).
    word_topics: Vec<Vec<u16>>,
    /// Cumulative weights over one word's topic list.
    word_cum: Vec<f64>,
    /// Generation stamps for per-document topic seeding (alias mode only):
    /// lets a document's distinct topics be collected by scanning its own
    /// tokens — O(doc length) — instead of its dense O(K) doc-topic row.
    doc_stamp: Vec<u32>,
    doc_gen: u32,
}

impl SweepScratch {
    pub(crate) fn new(k: usize, m: usize, kind: SamplerChoice) -> Self {
        let alias = kind == SamplerChoice::AliasMh;
        SweepScratch {
            kw: vec![0.0; if alias { 0 } else { k * m }],
            kw_delta: SparseDelta::new(if alias { k * m } else { 0 }),
            k_tot: vec![0.0; k],
            inv: vec![0.0; k],
            cum: vec![0.0; k],
            doc_topics: Vec::with_capacity(k),
            doc_cum: vec![0.0; k],
            word_topics: vec![Vec::new(); if kind == SamplerChoice::Bucket { m } else { 0 }],
            word_cum: vec![0.0; k],
            doc_stamp: vec![0; if alias { k } else { 0 }],
            doc_gen: 0,
        }
    }
}

/// Splits the flat assignment array, the doc-topic table and the delta
/// buffer into per-chunk disjoint views. Chunk boundaries are the same
/// pure function of the corpus the sampler has always used.
pub(crate) fn build_views<'a>(
    tok_z: &'a mut [u16],
    dk: &'a mut [f64],
    delta_buf: &'a mut [f64],
    doc_start: &[usize],
    n_docs: usize,
    k: usize,
    delta_stride: usize,
) -> Vec<ChunkView<'a>> {
    let n_chunks = hlm_par::chunk_count(n_docs, DOC_CHUNK);
    let mut views = Vec::with_capacity(n_chunks);
    let (mut z_rest, mut dk_rest, mut delta_rest) = (tok_z, dk, delta_buf);
    for c in 0..n_chunks {
        let (d_lo, d_hi) = hlm_par::chunk_bounds(n_docs, DOC_CHUNK, c);
        let (t_lo, t_hi) = (doc_start[d_lo], doc_start[d_hi]);
        let (z_c, zr) = z_rest.split_at_mut(t_hi - t_lo);
        z_rest = zr;
        let (dk_c, dr) = dk_rest.split_at_mut((d_hi - d_lo) * k);
        dk_rest = dr;
        let (de_c, der) = delta_rest.split_at_mut(delta_stride);
        delta_rest = der;
        views.push(ChunkView {
            z: z_c,
            dk: dk_c,
            delta: de_c,
            d_lo,
            t_lo,
            mh_proposed: 0,
            mh_accepted: 0,
        });
    }
    views
}

/// Removes topic `t` from a maintained sparse list if present. Lists are
/// chunk-local and every mutation is part of the deterministic sampling
/// schedule, so `swap_remove` order never depends on threads.
fn remove_topic(list: &mut Vec<u16>, t: usize) {
    if let Some(pos) = list.iter().position(|&x| x as usize == t) {
        list.swap_remove(pos);
    }
}

/// Fused dense sampler: one cumulative pass building
/// `(n_dk + α)(n_kw + β)/(n_k + Mβ)` per topic (division replaced by the
/// cached reciprocal), then a single uniform draw scanned against the
/// cumulative weights.
fn sample_dense(
    scratch: &mut SweepScratch,
    dk_row: &[f64],
    w: usize,
    ctx: &SweepCtx,
    rng: &mut StdRng,
) -> usize {
    let m = ctx.m;
    let mut acc = 0.0;
    for (cum, ((&dkv, &invv), &kwv)) in scratch.cum.iter_mut().zip(
        dk_row
            .iter()
            .zip(scratch.inv.iter())
            .zip(scratch.kw[w..].iter().step_by(m)),
    ) {
        acc += (dkv + ctx.alpha) * (kwv + ctx.beta) * invv;
        *cum = acc;
    }
    let u = rng.gen::<f64>() * acc;
    for (t, &c) in scratch.cum[..ctx.k - 1].iter().enumerate() {
        if u < c {
            return t;
        }
    }
    ctx.k - 1
}

/// SparseLDA-style bucket sampler (Yao, Mimno & McCallum): the sampling
/// mass decomposes as
///
/// ```text
/// p(t) ∝ αβ·inv[t]  +  n_dk[t]·β·inv[t]  +  (n_dk[t] + α)·n_kw[t,w]·inv[t]
///        (s: smoothing)  (r: doc-sparse)     (q: word-sparse)
/// ```
///
/// so one uniform draw lands in the word bucket (scanned over the
/// maintained word-topic list), the document bucket (scanned over the
/// maintained per-document topic list) or — rarely — the smoothing bucket
/// (dense scan over the cached reciprocals). `inv_sum` is the maintained
/// `Σ_t inv[t]`; tiny negative count residues from weighted-token
/// cancellation are clamped out of the probability terms only, never out
/// of the count tables.
fn sample_sparse(
    scratch: &mut SweepScratch,
    dk_row: &[f64],
    w: usize,
    inv_sum: f64,
    ctx: &SweepCtx,
    rng: &mut StdRng,
) -> usize {
    let m = ctx.m;
    let mut q = 0.0;
    for (slot, &t) in scratch.word_topics[w].iter().enumerate() {
        let t = t as usize;
        let kwv = scratch.kw[t * m + w].max(0.0);
        q += (dk_row[t] + ctx.alpha) * kwv * scratch.inv[t];
        scratch.word_cum[slot] = q;
    }
    let mut r = 0.0;
    for (slot, &t) in scratch.doc_topics.iter().enumerate() {
        let t = t as usize;
        r += dk_row[t].max(0.0) * ctx.beta * scratch.inv[t];
        scratch.doc_cum[slot] = r;
    }
    let s = ctx.alpha * ctx.beta * inv_sum;
    let u = rng.gen::<f64>() * (q + r + s);
    if u < q {
        let wlist = &scratch.word_topics[w];
        for (slot, &t) in wlist.iter().enumerate() {
            if u < scratch.word_cum[slot] {
                return t as usize;
            }
        }
        if let Some(&t) = wlist.last() {
            return t as usize;
        }
    }
    let u = u - q;
    if u < r {
        for (slot, &t) in scratch.doc_topics.iter().enumerate() {
            if u < scratch.doc_cum[slot] {
                return t as usize;
            }
        }
        if let Some(&t) = scratch.doc_topics.last() {
            return t as usize;
        }
    }
    // Smoothing bucket: u_s ∈ [0, Σ inv) after dividing out αβ. The
    // incremental inv_sum can drift by ulps from the true Σ, so the scan
    // clamps to the last topic.
    let mut u = (u - r).max(0.0) / (ctx.alpha * ctx.beta);
    for (t, &invv) in scratch.inv.iter().enumerate().take(ctx.k - 1) {
        u -= invv;
        if u < 0.0 {
            return t;
        }
    }
    ctx.k - 1
}

/// LightLDA-style alias-MH kernel for one chunk: per token, [`MH_CYCLES`]
/// cycles of an O(1) word proposal (drawn from the per-sweep per-word alias
/// table) and an O(topics-in-doc) doc proposal (`q(t) ∝ dk⁺(t) + α`), each
/// accepted against the collapsed conditional
/// `π(t) ∝ (dk⁺(t) + α)(kw⁺(t,w) + β)·inv[t]` over the chunk's *current*
/// counts — snapshot plus the chunk's sparse delta for the topic-word
/// cell, in-place doc row, and topic-total reciprocals batch-refreshed
/// every [`INV_REFRESH`] tokens. The *proposal* `q̃_w` is sweep-stale
/// (that staleness is what MH corrects, LightLDA §4.2) and π's
/// reciprocals at most a few dozen tokens stale, so the chain tracks the
/// same per-chunk conditional as the dense and bucket samplers closely
/// enough that `tests/sampler_equivalence.rs` can pin its perplexity to
/// theirs. Every per-topic factor of π and q̃ is
/// constant while one token's MH steps run (the token is decremented once
/// before the cycles and reinserted after), so the current state's
/// factors are computed once and carried across proposals instead of
/// re-derived per step. The `⁺` clamps match the bucket sampler's
/// convention: tiny negative residues from weighted-token cancellation
/// are clamped out of probability terms only. The RNG draw pattern is
/// fixed — every proposal consumes its draws and every step draws its
/// acceptance uniform whether or not the proposal moves — so the stream
/// stays aligned across any accept/reject outcome, thread count, or
/// shard layout.
fn sweep_chunk_alias(
    scratch: &mut SweepScratch,
    ctx: &SweepCtx,
    rng: &mut StdRng,
    view: &mut ChunkView,
) {
    let (k, m) = (ctx.k, ctx.m);
    let tables = ctx.alias.expect("alias sampler requires proposal tables");
    let snap_kw = ctx.n_kw.as_slice();
    let sinv = tables.snap_inv.as_slice();
    scratch.k_tot.copy_from_slice(ctx.n_k);
    scratch.kw_delta.begin();
    let (mut proposed, mut accepted) = (0u64, 0u64);
    let mut cur_doc = usize::MAX;
    let mut doc_mass = 0.0;
    let mut until_refresh = 0usize;
    for j in 0..view.z.len() {
        // Topic totals are maintained exactly (`k_tot`, plain adds) but
        // their reciprocals are re-derived in a batch every
        // [`INV_REFRESH`] tokens: the k divisions vectorize off the
        // per-token critical path, and π reads reciprocals at most
        // `INV_REFRESH` tokens stale — an approximation far inside the
        // one-sweep staleness the MH correction already absorbs for the
        // word proposal (`tests/sampler_equivalence.rs` pins the result).
        if until_refresh == 0 {
            for (inv, &tot) in scratch.inv.iter_mut().zip(scratch.k_tot.iter()) {
                *inv = 1.0 / (tot + ctx.beta_sum);
            }
            until_refresh = INV_REFRESH;
        }
        until_refresh -= 1;
        let i = view.t_lo + j;
        let d = ctx.tok_doc[i] as usize;
        let w = ctx.tok_word[i] as usize;
        let weight = ctx.tok_weight[i];
        let row = (d - view.d_lo) * k;
        if d != cur_doc {
            // Seed the document's topic list by scanning its own tokens'
            // assignments (documents are contiguous in the chunk) — O(doc
            // length), not O(K). Generation stamps dedupe without clearing.
            cur_doc = d;
            scratch.doc_gen = scratch.doc_gen.wrapping_add(1);
            if scratch.doc_gen == 0 {
                scratch.doc_stamp.iter_mut().for_each(|s| *s = 0);
                scratch.doc_gen = 1;
            }
            scratch.doc_topics.clear();
            let mut jj = j;
            while jj < view.z.len() && ctx.tok_doc[view.t_lo + jj] as usize == d {
                let t = view.z[jj] as usize;
                if scratch.doc_stamp[t] != scratch.doc_gen {
                    scratch.doc_stamp[t] = scratch.doc_gen;
                    scratch.doc_topics.push(t as u16);
                }
                jj += 1;
            }
            doc_mass = scratch
                .doc_topics
                .iter()
                .map(|&t| view.dk[row + t as usize].max(0.0))
                .sum();
        }
        let old_z = view.z[j] as usize;

        // Decrement the current token out of every table.
        let before = view.dk[row + old_z].max(0.0);
        view.dk[row + old_z] -= weight;
        doc_mass += view.dk[row + old_z].max(0.0) - before;
        if view.dk[row + old_z] <= 0.0 {
            remove_topic(&mut scratch.doc_topics, old_z);
        }
        scratch.kw_delta.add(old_z * m + w, -weight);
        scratch.k_tot[old_z] -= weight;

        // The chain state's factors, computed once and carried: every count
        // (and reciprocal) π reads is frozen while this token's MH steps
        // run — the token is decremented once before the cycles and
        // reinserted after — so an accepted proposal hands its
        // already-computed factors to the next step.
        let mut s = old_z;
        let cell_s = s * m + w;
        let kw_s = (snap_kw[cell_s] + scratch.kw_delta.get(cell_s)).max(0.0) + ctx.beta;
        let mut wpart_s = kw_s * scratch.inv[s];
        let mut pi_s = (view.dk[row + s].max(0.0) + ctx.alpha) * wpart_s;
        let mut q_s = (snap_kw[cell_s].max(0.0) + ctx.beta) * sinv[s];
        for _ in 0..MH_CYCLES {
            // Word proposal: q̃_w(t) = (snap⁺(t,w) + β)·snap_inv[t] from the
            // sweep-start snapshot. The accept ratio π(t)q̃(s) / π(s)q̃(t)
            // needs only unnormalized q̃ — the per-word normalizer cancels.
            let t = tables.set.sample(w, rng);
            let u = rng.gen::<f64>();
            proposed += 1;
            if t == s {
                accepted += 1;
            } else {
                let cell_t = t * m + w;
                let kw_t = (snap_kw[cell_t] + scratch.kw_delta.get(cell_t)).max(0.0) + ctx.beta;
                let wpart_t = kw_t * scratch.inv[t];
                let pi_t = (view.dk[row + t].max(0.0) + ctx.alpha) * wpart_t;
                let q_t = (snap_kw[cell_t].max(0.0) + ctx.beta) * sinv[t];
                if u * (pi_s * q_t) < pi_t * q_s {
                    accepted += 1;
                    s = t;
                    wpart_s = wpart_t;
                    pi_s = pi_t;
                    q_s = q_t;
                }
            }

            // Doc proposal: q(t) ∝ dk⁺(t) + α — one uniform splits between
            // the maintained doc-topic mass and the flat α·K remainder. The
            // doc factor of π matches q exactly (same clamp convention), so
            // the accept ratio reduces to the word part.
            let total = doc_mass + ctx.alpha * k as f64;
            let ud = rng.gen::<f64>() * total;
            let t = if ud < doc_mass {
                let mut acc = 0.0;
                let mut chosen = usize::MAX;
                for &tt in &scratch.doc_topics {
                    acc += view.dk[row + tt as usize].max(0.0);
                    if ud < acc {
                        chosen = tt as usize;
                        break;
                    }
                }
                if chosen != usize::MAX {
                    chosen
                } else if let Some(&tt) = scratch.doc_topics.last() {
                    // Incremental doc_mass can drift above the scan total by
                    // ulps; clamp to the last listed topic.
                    tt as usize
                } else {
                    0
                }
            } else {
                (((ud - doc_mass) / ctx.alpha) as usize).min(k - 1)
            };
            let u = rng.gen::<f64>();
            proposed += 1;
            if t == s {
                accepted += 1;
            } else {
                let cell_t = t * m + w;
                let kw_t = (snap_kw[cell_t] + scratch.kw_delta.get(cell_t)).max(0.0) + ctx.beta;
                let wpart_t = kw_t * scratch.inv[t];
                if u * wpart_s < wpart_t {
                    accepted += 1;
                    s = t;
                    wpart_s = wpart_t;
                    pi_s = (view.dk[row + t].max(0.0) + ctx.alpha) * wpart_t;
                    q_s = (snap_kw[cell_t].max(0.0) + ctx.beta) * sinv[t];
                }
            }
        }

        // Increment the token back at its (possibly new) topic.
        let new_z = s;
        if view.dk[row + new_z] <= 0.0 {
            scratch.doc_topics.push(new_z as u16);
        }
        let before = view.dk[row + new_z].max(0.0);
        view.dk[row + new_z] += weight;
        doc_mass += view.dk[row + new_z].max(0.0) - before;
        scratch.kw_delta.add(new_z * m + w, weight);
        scratch.k_tot[new_z] += weight;
        view.z[j] = new_z as u16;
    }

    // Sparse delta record: [n, (cell, delta)*n, .., k topic totals] in
    // first-touch order (deterministic — part of the sampling schedule).
    let touched = scratch.kw_delta.touched();
    view.delta[0] = touched.len() as f64;
    for (slot, &cell) in touched.iter().enumerate() {
        view.delta[1 + 2 * slot] = cell as f64;
        view.delta[2 + 2 * slot] = scratch.kw_delta.get(cell as usize);
    }
    let tail_at = view.delta.len() - k;
    for (dst, (&local, &global)) in view.delta[tail_at..]
        .iter_mut()
        .zip(scratch.k_tot.iter().zip(ctx.n_k))
    {
        *dst = local - global;
    }
    view.mh_proposed = proposed;
    view.mh_accepted = accepted;
}

/// Samples one chunk of documents against the sweep-start snapshot,
/// mutating the chunk's assignments and doc-topic rows in place and
/// writing its topic-word/topic-total deltas into the chunk's slice of the
/// shared delta buffer. RNG stream: `(seed, sweep, chunk_base + chunk)` —
/// identical at every thread count, and identical whether the chunk is
/// addressed through a whole-corpus sweep or a shard-local one.
pub(crate) fn sweep_chunk(
    scratch: &mut SweepScratch,
    ctx: &SweepCtx,
    chunk: usize,
    view: &mut ChunkView,
) {
    let (k, m) = (ctx.k, ctx.m);
    let mut rng = StdRng::seed_from_u64(hlm_par::split_seed3(
        ctx.seed,
        ctx.sweep,
        (ctx.chunk_base + chunk) as u64,
    ));
    if ctx.kind == SamplerChoice::AliasMh {
        sweep_chunk_alias(scratch, ctx, &mut rng, view);
        return;
    }
    scratch.kw.copy_from_slice(ctx.n_kw.as_slice());
    scratch.k_tot.copy_from_slice(ctx.n_k);
    for (inv, &tot) in scratch.inv.iter_mut().zip(scratch.k_tot.iter()) {
        *inv = 1.0 / (tot + ctx.beta_sum);
    }
    let sparse = ctx.kind == SamplerChoice::Bucket;
    let mut inv_sum = 0.0;
    if sparse {
        inv_sum = scratch.inv.iter().sum();
        for list in &mut scratch.word_topics {
            list.clear();
        }
        for t in 0..k {
            for (w, &c) in scratch.kw[t * m..(t + 1) * m].iter().enumerate() {
                if c > 0.0 {
                    scratch.word_topics[w].push(t as u16);
                }
            }
        }
    }
    let mut cur_doc = usize::MAX;
    for j in 0..view.z.len() {
        let i = view.t_lo + j;
        let d = ctx.tok_doc[i] as usize;
        let w = ctx.tok_word[i] as usize;
        let weight = ctx.tok_weight[i];
        let row = (d - view.d_lo) * k;
        if sparse && d != cur_doc {
            cur_doc = d;
            scratch.doc_topics.clear();
            for (t, &c) in view.dk[row..row + k].iter().enumerate() {
                if c > 0.0 {
                    scratch.doc_topics.push(t as u16);
                }
            }
        }
        let old_z = view.z[j] as usize;

        view.dk[row + old_z] -= weight;
        scratch.kw[old_z * m + w] -= weight;
        scratch.k_tot[old_z] -= weight;
        if sparse {
            inv_sum -= scratch.inv[old_z];
        }
        scratch.inv[old_z] = 1.0 / (scratch.k_tot[old_z] + ctx.beta_sum);
        if sparse {
            inv_sum += scratch.inv[old_z];
            if view.dk[row + old_z] <= 0.0 {
                remove_topic(&mut scratch.doc_topics, old_z);
            }
            if scratch.kw[old_z * m + w] <= 0.0 {
                remove_topic(&mut scratch.word_topics[w], old_z);
            }
        }

        let new_z = if sparse {
            sample_sparse(scratch, &view.dk[row..row + k], w, inv_sum, ctx, &mut rng)
        } else {
            sample_dense(scratch, &view.dk[row..row + k], w, ctx, &mut rng)
        };

        if sparse {
            if view.dk[row + new_z] <= 0.0 {
                scratch.doc_topics.push(new_z as u16);
            }
            if scratch.kw[new_z * m + w] <= 0.0 {
                scratch.word_topics[w].push(new_z as u16);
            }
            inv_sum -= scratch.inv[new_z];
        }
        view.dk[row + new_z] += weight;
        scratch.kw[new_z * m + w] += weight;
        scratch.k_tot[new_z] += weight;
        scratch.inv[new_z] = 1.0 / (scratch.k_tot[new_z] + ctx.beta_sum);
        if sparse {
            inv_sum += scratch.inv[new_z];
        }
        view.z[j] = new_z as u16;
    }
    // Deltas relative to the sweep-start snapshot, fully overwriting the
    // chunk's slice of the shared buffer.
    let (kw_delta, k_delta) = view.delta.split_at_mut(k * m);
    for (d, (&local, &global)) in kw_delta
        .iter_mut()
        .zip(scratch.kw.iter().zip(ctx.n_kw.as_slice()))
    {
        *d = local - global;
    }
    for (d, (&local, &global)) in k_delta
        .iter_mut()
        .zip(scratch.k_tot.iter().zip(ctx.n_k.iter()))
    {
        *d = local - global;
    }
}

/// Checkpoint kind tag for collapsed Gibbs runs.
pub const GIBBS_CHECKPOINT_KIND: &str = "lda-gibbs";

/// Complete sampler state after a finished sweep: everything `fit_resumable`
/// needs to continue bit-for-bit. Count tables are serialized rather than
/// recomputed from `tok_z` because the incremental add/subtract updates
/// accumulate floating-point error in a different order than a fresh
/// summation would.
#[derive(Serialize, Deserialize)]
struct GibbsState {
    iters_done: u64,
    alpha: f64,
    tok_z: Vec<u16>,
    n_dk: Matrix,
    n_kw: Matrix,
    n_k: Vec<f64>,
    phi_acc: Matrix,
    n_samples: u64,
    rng: [u64; 4],
}

/// Collapsed Gibbs trainer.
#[derive(Debug, Clone)]
pub struct GibbsTrainer {
    cfg: LdaConfig,
}

impl GibbsTrainer {
    /// Creates a trainer.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent.
    pub fn new(cfg: LdaConfig) -> Self {
        cfg.validate();
        GibbsTrainer { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &LdaConfig {
        &self.cfg
    }

    /// Runs the sampler and returns the estimated model (posterior-mean
    /// `phi` averaged over post-burn-in samples).
    ///
    /// # Panics
    /// Panics if a document references a word outside the configured
    /// vocabulary or carries a non-positive weight.
    pub fn fit(&self, docs: &[WeightedDoc]) -> LdaModel {
        self.fit_resumable(docs, &mut TrainControl::noop(), None)
            .expect("noop control cannot interrupt training")
    }

    /// Like [`GibbsTrainer::fit`], but consults `ctrl` at every sweep
    /// boundary (watchdog, divergence detection, per-sweep checkpointing)
    /// and optionally continues from a checkpoint written by an earlier run.
    /// An interrupted-then-resumed run produces a model bit-identical to an
    /// uninterrupted one.
    ///
    /// # Panics
    /// Panics on the same malformed-input conditions as `fit`.
    pub fn fit_resumable(
        &self,
        docs: &[WeightedDoc],
        ctrl: &mut TrainControl,
        resume: Option<&Checkpoint>,
    ) -> Result<LdaModel, ResilienceError> {
        let k = self.cfg.n_topics;
        let m = self.cfg.vocab_size;
        let mut alpha = self.cfg.effective_alpha();
        let beta = self.cfg.beta;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        // Count tables (f64: tokens are weighted).
        let mut n_dk = Matrix::zeros(docs.len(), k); // doc-topic
        let mut n_kw = Matrix::zeros(k, m); // topic-word
        let mut n_k = vec![0.0f64; k]; // topic totals

        // Flat token arrays for cache-friendly sweeps, sized up front so
        // the fill loop never reallocates.
        let total_tokens: usize = docs.iter().map(Vec::len).sum();
        let mut tok_doc: Vec<u32> = Vec::with_capacity(total_tokens);
        let mut tok_word: Vec<u32> = Vec::with_capacity(total_tokens);
        let mut tok_weight: Vec<f64> = Vec::with_capacity(total_tokens);
        let mut tok_z: Vec<u16> = Vec::with_capacity(total_tokens);
        for (d, doc) in docs.iter().enumerate() {
            for &(w, weight) in doc {
                assert!(w < m, "word {w} outside vocabulary of {m}");
                assert!(
                    weight.is_finite() && weight > 0.0,
                    "token weight must be positive, got {weight}"
                );
                let z = rng.gen_range(0..k);
                tok_doc.push(d as u32);
                tok_word.push(w as u32);
                tok_weight.push(weight);
                tok_z.push(z as u16);
                n_dk.add_at(d, z, weight);
                n_kw.add_at(z, w, weight);
                n_k[z] += weight;
            }
        }

        // Token range of each document in the flat arrays (documents are
        // contiguous by construction).
        let mut doc_start = Vec::with_capacity(docs.len() + 1);
        doc_start.push(0usize);
        for doc in docs {
            doc_start.push(doc_start.last().unwrap() + doc.len());
        }

        let beta_sum = beta * m as f64;
        let mut phi_acc = Matrix::zeros(k, m);
        let mut n_samples = 0u64;
        let mut start_iter = 0u64;

        if let Some(ckpt) = resume {
            let state = decode_state(ckpt, tok_z.len(), docs.len(), k, m)?;
            start_iter = state.iters_done;
            alpha = state.alpha;
            tok_z = state.tok_z;
            n_dk = state.n_dk;
            n_kw = state.n_kw;
            n_k = state.n_k;
            phi_acc = state.phi_acc;
            n_samples = state.n_samples;
            rng = StdRng::from_state(state.rng);
        }

        let pool = Pool::global();
        let rec = hlm_obs::global();
        let kind = self.cfg.sampler.resolve(k);
        let budget = sweep_budget(tok_z.len(), k, kind);
        let stride = delta_stride(kind, k, m);
        let n_chunks = hlm_par::chunk_count(docs.len(), DOC_CHUNK);
        // Per-chunk delta arena, allocated once for the whole run; every
        // sweep overwrites the cells its merge reads.
        let mut delta_buf = vec![0.0f64; n_chunks * stride];
        let mut alias_tables = (kind == SamplerChoice::AliasMh).then(|| WordAliasTables::new(k, m));
        for iter in start_iter as usize..self.cfg.n_iters {
            ctrl.begin_iteration(iter as u64)?;
            let sweep_t0 = rec.is_enabled().then(std::time::Instant::now);
            rec.add(sampler_counter(kind), 1);
            // Staleness bound: the proposal tables are refreshed from every
            // sweep's start snapshot, the same snapshot the chunks sample
            // against.
            if let Some(tables) = alias_tables.as_mut() {
                tables.rebuild(&n_kw, &n_k, beta, beta_sum);
            }
            // Document-sliced sweep: every chunk samples its documents
            // against the sweep-start snapshot of the shared tables (its own
            // n_dk rows and assignments are mutated in place — they are
            // disjoint between chunks), on an RNG stream keyed by
            // (seed, sweep, chunk). With a single chunk this is exactly the
            // sequential collapsed sampler.
            let ctx = SweepCtx {
                tok_doc: &tok_doc,
                tok_word: &tok_word,
                tok_weight: &tok_weight,
                n_kw: &n_kw,
                n_k: &n_k,
                k,
                m,
                alpha,
                beta,
                beta_sum,
                seed: self.cfg.seed,
                sweep: iter as u64,
                chunk_base: 0,
                kind,
                alias: alias_tables.as_ref(),
            };
            let mut views = build_views(
                &mut tok_z,
                n_dk.as_mut_slice(),
                &mut delta_buf,
                &doc_start,
                docs.len(),
                k,
                stride,
            );
            hlm_par::par_for_each_scratch(
                &pool,
                budget,
                &mut views,
                || SweepScratch::new(k, m, kind),
                |scratch, c, view| sweep_chunk(scratch, &ctx, c, view),
            );
            // MH totals fold in chunk order (u64 adds: order-independent,
            // but keep the convention) before the views are dropped.
            let (mh_proposed, mh_accepted) = views.iter().fold((0u64, 0u64), |(p, a), v| {
                (p + v.mh_proposed, a + v.mh_accepted)
            });
            drop(views);
            // Deterministic merge of the topic-word/topic-total deltas in
            // chunk order (assignments and doc-topic rows were updated in
            // place).
            for chunk_delta in delta_buf.chunks_exact(stride) {
                merge_chunk_delta(kind, chunk_delta, n_kw.as_mut_slice(), &mut n_k, k, m);
            }
            if kind == SamplerChoice::AliasMh {
                rec.add("lda.mh.proposed", mh_proposed);
                rec.add("lda.mh.accepted", mh_accepted);
                if rec.is_enabled() && mh_proposed > 0 {
                    rec.trace(
                        "lda.mh.acceptance_rate",
                        iter as u64,
                        mh_accepted as f64 / mh_proposed as f64,
                    );
                }
            }

            // Minka's fixed-point re-estimation of the symmetric alpha,
            // applied during burn-in so the collected phi samples use the
            // final value.
            if self.cfg.optimize_alpha && iter < self.cfg.burn_in && iter % 10 == 9 {
                alpha = minka_alpha_update(alpha, &n_dk, k);
            }

            let past_burn_in = iter >= self.cfg.burn_in;
            let on_lag = (iter - self.cfg.burn_in.min(iter)) % self.cfg.sample_lag == 0;
            if past_burn_in && on_lag {
                for (t, &nk) in n_k.iter().enumerate().take(k) {
                    let phi_row = &mut phi_acc.as_mut_slice()[t * m..(t + 1) * m];
                    accumulate_phi_row(phi_row, n_kw.row(t), nk, beta, beta_sum);
                }
                n_samples += 1;
            }

            // Observability: read-only — nothing below branches on these
            // values, so enabling the recorder cannot change the chain.
            if let Some(t0) = sweep_t0 {
                rec.observe("lda.gibbs.sweep_seconds", t0.elapsed().as_secs_f64());
                rec.add("lda.gibbs.sweeps", 1);
                rec.trace(
                    "lda.gibbs.log_likelihood",
                    iter as u64,
                    gibbs_log_likelihood(&n_kw, &n_k, beta),
                );
            }

            // Total topic mass is conserved by a correct sweep; a NaN weight
            // or injected fault shows up here and aborts before the broken
            // state can be checkpointed.
            ctrl.check_metric(iter as u64, "topic mass", n_k.iter().sum())?;

            ctrl.checkpoint(iter as u64 + 1, || {
                encode_state(&GibbsState {
                    iters_done: iter as u64 + 1,
                    alpha,
                    tok_z: tok_z.clone(),
                    n_dk: n_dk.clone(),
                    n_kw: n_kw.clone(),
                    n_k: n_k.clone(),
                    phi_acc: phi_acc.clone(),
                    n_samples,
                    rng: rng.state(),
                })
            });
        }

        assert!(
            n_samples > 0,
            "no phi samples collected; check burn_in / n_iters"
        );
        phi_acc.scale_mut(1.0 / n_samples as f64);
        // Guard against accumulated rounding before the model's row check.
        phi_acc.normalize_rows();
        Ok(LdaModel::new(phi_acc, alpha, beta))
    }

    /// Materializes a model directly from a checkpoint, without further
    /// sweeps — the rollback path when a later sweep diverges. Fails with
    /// [`ResilienceError::Mismatch`] if the checkpoint predates burn-in (no
    /// phi samples collected yet).
    pub fn model_from_checkpoint(&self, ckpt: &Checkpoint) -> Result<LdaModel, ResilienceError> {
        if ckpt.kind != GIBBS_CHECKPOINT_KIND {
            return Err(ResilienceError::Mismatch {
                reason: format!("kind {} != {GIBBS_CHECKPOINT_KIND}", ckpt.kind),
            });
        }
        let state: GibbsState = parse_payload(&ckpt.payload)?;
        if state.n_samples == 0 {
            return Err(ResilienceError::Mismatch {
                reason: "checkpoint predates burn-in: no phi samples collected".to_string(),
            });
        }
        let mut phi = state.phi_acc;
        phi.scale_mut(1.0 / state.n_samples as f64);
        phi.normalize_rows();
        Ok(LdaModel::new(phi, state.alpha, self.cfg.beta))
    }
}

fn encode_state(state: &GibbsState) -> Vec<u8> {
    serde_json::to_string(state)
        .expect("gibbs state serializes")
        .into_bytes()
}

fn parse_payload(payload: &[u8]) -> Result<GibbsState, ResilienceError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ResilienceError::corrupt("gibbs payload is not UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| ResilienceError::corrupt(format!("gibbs payload does not parse: {e}")))
}

fn decode_state(
    ckpt: &Checkpoint,
    n_tokens: usize,
    n_docs: usize,
    k: usize,
    m: usize,
) -> Result<GibbsState, ResilienceError> {
    if ckpt.kind != GIBBS_CHECKPOINT_KIND {
        return Err(ResilienceError::Mismatch {
            reason: format!("kind {} != {GIBBS_CHECKPOINT_KIND}", ckpt.kind),
        });
    }
    let state = parse_payload(&ckpt.payload)?;
    if state.tok_z.len() != n_tokens {
        return Err(ResilienceError::Mismatch {
            reason: format!(
                "checkpoint has {} token assignments, corpus has {n_tokens}",
                state.tok_z.len()
            ),
        });
    }
    if state.n_dk.rows() != n_docs
        || state.n_dk.cols() != k
        || state.n_kw.rows() != k
        || state.n_kw.cols() != m
        || state.n_k.len() != k
        || state.phi_acc.rows() != k
        || state.phi_acc.cols() != m
    {
        return Err(ResilienceError::Mismatch {
            reason: "checkpoint count-table shapes do not match the configuration".to_string(),
        });
    }
    Ok(state)
}

/// Griffiths–Steyvers corpus log-likelihood `log P(w|z)` of the current
/// topic assignment, computed read-only from the count tables:
///
/// ```text
/// K·[lnΓ(Mβ) − M·lnΓ(β)] + Σ_k [ Σ_w lnΓ(n_kw + β) − lnΓ(n_k + Mβ) ]
/// ```
///
/// Recorded as a convergence trace when observability is enabled; with
/// weighted tokens the counts are real-valued and this is the natural
/// generalization.
pub(crate) fn gibbs_log_likelihood(n_kw: &Matrix, n_k: &[f64], beta: f64) -> f64 {
    use hlm_linalg::special::ln_gamma;
    let (k, m) = (n_kw.rows(), n_kw.cols());
    let beta_sum = beta * m as f64;
    let mut ll = k as f64 * (ln_gamma(beta_sum) - m as f64 * ln_gamma(beta));
    for (t, &nk) in n_k.iter().enumerate().take(k) {
        for &c in n_kw.row(t) {
            ll += ln_gamma(c + beta);
        }
        ll -= ln_gamma(nk + beta_sum);
    }
    ll
}

/// One step of Minka's fixed-point update for the symmetric Dirichlet
/// concentration:
///
/// ```text
/// α ← α · Σ_d Σ_k [ψ(n_dk + α) − ψ(α)]
///         ───────────────────────────────
///         K · Σ_d [ψ(n_d + Kα) − ψ(Kα)]
/// ```
///
/// Empty documents are skipped; the result is clamped to `[1e-4, 1e2]` to
/// keep a pathological early count table from destabilizing the chain.
///
/// Split into an accumulation over doc-topic rows and a finish step so the
/// sharded sampler — whose `n_dk` lives in per-shard pieces — can stream the
/// rows in global document order and obtain the identical floating-point
/// result.
fn minka_alpha_update(alpha: f64, n_dk: &Matrix, k: usize) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    minka_alpha_accumulate(
        alpha,
        k,
        (0..n_dk.rows()).map(|d| n_dk.row(d)),
        &mut num,
        &mut den,
    );
    minka_alpha_finish(alpha, k, num, den)
}

/// Accumulates the numerator/denominator sums of Minka's update over
/// doc-topic rows. Rows must arrive in global document order for the
/// accumulation order (and hence the floating-point result) to be
/// reproducible.
pub(crate) fn minka_alpha_accumulate<'a>(
    alpha: f64,
    k: usize,
    rows: impl Iterator<Item = &'a [f64]>,
    num: &mut f64,
    den: &mut f64,
) {
    use hlm_linalg::special::digamma;
    for row in rows {
        let n_d: f64 = row.iter().sum();
        if n_d <= 0.0 {
            continue;
        }
        for &c in row {
            *num += digamma(c + alpha) - digamma(alpha);
        }
        *den += digamma(n_d + k as f64 * alpha) - digamma(k as f64 * alpha);
    }
}

/// Applies Minka's fixed-point step from the accumulated sums.
pub(crate) fn minka_alpha_finish(alpha: f64, k: usize, num: f64, den: f64) -> f64 {
    if den <= 0.0 || num <= 0.0 {
        return alpha;
    }
    (alpha * num / (k as f64 * den)).clamp(1e-4, 1e2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit_weights;

    /// Two planted topics: words 0-2 vs words 3-5.
    fn planted_docs(n_docs: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_docs)
            .map(|i| {
                let base = if i % 2 == 0 { 0usize } else { 3 };
                (0..8).map(|_| base + rng.gen_range(0..3)).collect()
            })
            .collect()
    }

    fn quick_cfg(n_topics: usize, vocab: usize, seed: u64) -> LdaConfig {
        LdaConfig {
            n_topics,
            vocab_size: vocab,
            n_iters: 120,
            burn_in: 60,
            sample_lag: 5,
            seed,
            alpha: Some(0.5),
            beta: 0.1,
            ..Default::default()
        }
    }

    #[test]
    fn recovers_planted_topics() {
        let docs = planted_docs(120, 1);
        let model = GibbsTrainer::new(quick_cfg(2, 6, 7)).fit(&unit_weights(&docs));
        // Each topic should concentrate on one 3-word block.
        let phi = model.phi();
        let block0: f64 = (0..3).map(|w| phi.get(0, w)).sum();
        let block1: f64 = (0..3).map(|w| phi.get(1, w)).sum();
        // One topic owns block {0,1,2}, the other {3,4,5}.
        let (hi, lo) = if block0 > block1 {
            (block0, block1)
        } else {
            (block1, block0)
        };
        assert!(hi > 0.9, "dominant topic block mass {hi}");
        assert!(lo < 0.1, "other topic block mass {lo}");
    }

    #[test]
    fn phi_rows_are_distributions() {
        let docs = planted_docs(40, 2);
        let model = GibbsTrainer::new(quick_cfg(3, 6, 3)).fit(&unit_weights(&docs));
        for t in 0..3 {
            let s: f64 = model.phi().row(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(
                model.phi().row(t).iter().all(|&p| p > 0.0),
                "beta smoothing keeps phi positive"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let docs = unit_weights(&planted_docs(30, 3));
        let a = GibbsTrainer::new(quick_cfg(2, 6, 11)).fit(&docs);
        let b = GibbsTrainer::new(quick_cfg(2, 6, 11)).fit(&docs);
        assert_eq!(a.phi(), b.phi());
    }

    #[test]
    fn weighted_tokens_shift_phi() {
        // One doc with a heavily weighted word 5 vs unit weights.
        let docs_unit: Vec<WeightedDoc> = vec![vec![(0, 1.0), (5, 1.0)]; 30];
        let docs_heavy: Vec<WeightedDoc> = vec![vec![(0, 1.0), (5, 10.0)]; 30];
        let cfg = quick_cfg(1, 6, 5);
        let unit = GibbsTrainer::new(cfg.clone()).fit(&docs_unit);
        let heavy = GibbsTrainer::new(cfg).fit(&docs_heavy);
        assert!(heavy.phi().get(0, 5) > unit.phi().get(0, 5) + 0.2);
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn rejects_out_of_vocab_word() {
        let docs: Vec<WeightedDoc> = vec![vec![(9, 1.0)]];
        GibbsTrainer::new(quick_cfg(2, 6, 1)).fit(&docs);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_non_positive_weight() {
        let docs: Vec<WeightedDoc> = vec![vec![(0, 0.0)]];
        GibbsTrainer::new(quick_cfg(2, 6, 1)).fit(&docs);
    }

    #[test]
    fn single_topic_degenerates_to_smoothed_unigram() {
        let docs = unit_weights(&vec![vec![0, 0, 0, 1]; 20]);
        let model = GibbsTrainer::new(quick_cfg(1, 3, 9)).fit(&docs);
        let phi = model.phi();
        // Counts: w0 = 60, w1 = 20, w2 = 0 with beta = 0.1 smoothing.
        assert!((phi.get(0, 0) - 60.1 / 80.3).abs() < 1e-9);
        assert!((phi.get(0, 2) - 0.1 / 80.3).abs() < 1e-9);
    }

    #[test]
    fn minka_update_shrinks_alpha_on_sparse_mixtures() {
        // Documents drawn from single topics: the optimal symmetric alpha is
        // small. Starting from a deliberately bad alpha = 10, optimization
        // must shrink it, and the resulting model must not fit worse.
        let docs = unit_weights(&planted_docs(150, 8));
        let bad = LdaConfig {
            alpha: Some(10.0),
            optimize_alpha: false,
            ..quick_cfg(2, 6, 21)
        };
        let opt = LdaConfig {
            alpha: Some(10.0),
            optimize_alpha: true,
            ..quick_cfg(2, 6, 21)
        };
        let m_bad = GibbsTrainer::new(bad).fit(&docs);
        let m_opt = GibbsTrainer::new(opt).fit(&docs);
        assert!(
            m_opt.alpha() < 5.0,
            "optimized alpha {} should shrink from 10",
            m_opt.alpha()
        );
        assert_eq!(m_bad.alpha(), 10.0);
        // The optimized model separates the planted blocks at least as well.
        let block_mass = |m: &LdaModel| -> f64 {
            let b0: f64 = (0..3).map(|w| m.phi().get(0, w)).sum();
            b0.max(1.0 - b0)
        };
        assert!(block_mass(&m_opt) + 1e-9 >= block_mass(&m_bad) - 0.05);
    }

    #[test]
    fn minka_update_is_stable_on_degenerate_counts() {
        let n_dk = Matrix::zeros(3, 2); // all-empty documents
        let a = minka_alpha_update(0.5, &n_dk, 2);
        assert_eq!(a, 0.5, "no evidence leaves alpha unchanged");
        // Huge counts stay clamped and finite.
        let big = Matrix::filled(4, 2, 1e6);
        let a2 = minka_alpha_update(50.0, &big, 2);
        assert!(a2.is_finite() && (1e-4..=1e2).contains(&a2));
    }

    #[test]
    fn handles_empty_documents() {
        let mut docs = unit_weights(&planted_docs(20, 4));
        docs.push(Vec::new());
        let model = GibbsTrainer::new(quick_cfg(2, 6, 13)).fit(&docs);
        assert!(model.phi().is_finite());
    }

    #[test]
    fn sparse_sampler_is_deterministic_and_well_formed() {
        // At K = 24 `Auto` resolves to the SparseLDA-style bucket sampler;
        // it must keep every contract the dense path has.
        let docs = unit_weights(&planted_docs(60, 5));
        let cfg = quick_cfg(24, 6, 17);
        assert_eq!(cfg.sampler.resolve(cfg.n_topics), SamplerChoice::Bucket);
        let a = GibbsTrainer::new(cfg.clone()).fit(&docs);
        let b = GibbsTrainer::new(cfg).fit(&docs);
        assert_eq!(a.phi(), b.phi(), "sparse path must be seed-deterministic");
        for t in 0..24 {
            let s: f64 = a.phi().row(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {t} sums to {s}");
            assert!(a.phi().row(t).iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn sparse_sampler_handles_weighted_tokens_and_resume() {
        use hlm_resilience::{CheckpointStore, MemIo, RunGuard};

        // Fractional weights exercise the tiny-residue clamps in the
        // bucket sampler; kill/resume must stay bit-identical.
        let mut rng = StdRng::seed_from_u64(91);
        let docs: Vec<WeightedDoc> = (0..50)
            .map(|_| {
                (0..10)
                    .map(|_| (rng.gen_range(0..6), 0.25 + rng.gen::<f64>()))
                    .collect()
            })
            .collect();
        let cfg = quick_cfg(24, 6, 23);
        let full = GibbsTrainer::new(cfg.clone()).fit(&docs);
        assert!(full.phi().is_finite());

        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let trainer = GibbsTrainer::new(cfg);
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(70));
        trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        let ckpt = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
        let resumed = trainer
            .fit_resumable(&docs, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap();
        assert_eq!(
            resumed.phi(),
            full.phi(),
            "sparse resume must be bit-identical"
        );
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_run() {
        use hlm_resilience::{CheckpointStore, MemIo, RunGuard};

        let docs = unit_weights(&planted_docs(30, 3));
        let cfg = quick_cfg(2, 6, 11);
        let full = GibbsTrainer::new(cfg.clone()).fit(&docs);

        // Kill mid-accumulation (after burn-in at 60, before the end at 120).
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let trainer = GibbsTrainer::new(cfg);
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(70));
        let err = trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        assert!(err.is_interruption());

        let ckpt = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
        assert_eq!(ckpt.iteration, 70);
        let resumed = trainer
            .fit_resumable(&docs, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap();
        assert_eq!(resumed.phi(), full.phi(), "resume must be bit-identical");
        assert_eq!(resumed.alpha(), full.alpha());
    }

    #[test]
    fn model_from_checkpoint_requires_phi_samples() {
        use hlm_resilience::{CheckpointStore, MemIo, RunGuard};

        let docs = unit_weights(&planted_docs(30, 3));
        let trainer = GibbsTrainer::new(quick_cfg(2, 6, 11));
        let store = CheckpointStore::new(Box::new(MemIo::new()));

        // Killed during burn-in: no phi samples, rollback must refuse.
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(10));
        trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        let early = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
        assert!(matches!(
            trainer.model_from_checkpoint(&early),
            Err(hlm_resilience::ResilienceError::Mismatch { .. })
        ));

        // Killed after burn-in: rollback produces a valid model.
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(80));
        trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        let late = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
        let model = trainer.model_from_checkpoint(&late).unwrap();
        assert!(model.phi().is_finite());
    }

    #[test]
    fn resume_rejects_mismatched_corpus_or_kind() {
        use hlm_resilience::{Checkpoint, CheckpointStore, MemIo, RunGuard};

        let docs = unit_weights(&planted_docs(30, 3));
        let trainer = GibbsTrainer::new(quick_cfg(2, 6, 11));
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(5));
        trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        let ckpt = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();

        // Different corpus (token count changes).
        let other = unit_weights(&planted_docs(10, 9));
        let err = trainer
            .fit_resumable(&other, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap_err();
        assert!(matches!(
            err,
            hlm_resilience::ResilienceError::Mismatch { .. }
        ));

        // Wrong kind tag.
        let wrong = Checkpoint::new("lstm", ckpt.iteration, ckpt.payload.clone());
        let err = trainer
            .fit_resumable(&docs, &mut TrainControl::noop(), Some(&wrong))
            .unwrap_err();
        assert!(matches!(
            err,
            hlm_resilience::ResilienceError::Mismatch { .. }
        ));
    }

    #[test]
    fn alias_sampler_is_deterministic_and_well_formed() {
        // Above K = 64 `Auto` resolves to the alias-MH sampler; it must keep
        // every contract the scanning paths have.
        let docs = unit_weights(&planted_docs(60, 5));
        let cfg = quick_cfg(80, 6, 17);
        assert_eq!(cfg.sampler.resolve(cfg.n_topics), SamplerChoice::AliasMh);
        let a = GibbsTrainer::new(cfg.clone()).fit(&docs);
        let b = GibbsTrainer::new(cfg).fit(&docs);
        assert_eq!(a.phi(), b.phi(), "alias path must be seed-deterministic");
        for t in 0..80 {
            let s: f64 = a.phi().row(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {t} sums to {s}");
            assert!(a.phi().row(t).iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn alias_sampler_recovers_planted_topics_when_forced() {
        // A fixed sampler choice is part of the schedule: forcing alias-MH at
        // small K must still find the two planted word blocks.
        let docs = planted_docs(120, 1);
        let cfg = LdaConfig {
            sampler: SamplerChoice::AliasMh,
            ..quick_cfg(2, 6, 7)
        };
        let model = GibbsTrainer::new(cfg).fit(&unit_weights(&docs));
        let phi = model.phi();
        let block0: f64 = (0..3).map(|w| phi.get(0, w)).sum();
        let block1: f64 = (0..3).map(|w| phi.get(1, w)).sum();
        let (hi, lo) = if block0 > block1 {
            (block0, block1)
        } else {
            (block1, block0)
        };
        assert!(hi > 0.9, "dominant topic block mass {hi}");
        assert!(lo < 0.1, "other topic block mass {lo}");
    }

    #[test]
    fn alias_sampler_handles_weighted_tokens_and_resume() {
        use hlm_resilience::{CheckpointStore, MemIo, RunGuard};

        // Fractional weights exercise the clamped-count proposal weights;
        // kill/resume must stay bit-identical under MH accept/reject.
        let mut rng = StdRng::seed_from_u64(92);
        let docs: Vec<WeightedDoc> = (0..50)
            .map(|_| {
                (0..10)
                    .map(|_| (rng.gen_range(0..6), 0.25 + rng.gen::<f64>()))
                    .collect()
            })
            .collect();
        let cfg = LdaConfig {
            sampler: SamplerChoice::AliasMh,
            ..quick_cfg(24, 6, 23)
        };
        let full = GibbsTrainer::new(cfg.clone()).fit(&docs);
        assert!(full.phi().is_finite());

        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let trainer = GibbsTrainer::new(cfg);
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(70));
        trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        let ckpt = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
        let resumed = trainer
            .fit_resumable(&docs, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap();
        assert_eq!(
            resumed.phi(),
            full.phi(),
            "alias resume must be bit-identical"
        );
    }

    #[test]
    fn alias_sampler_handles_empty_documents() {
        let mut docs = unit_weights(&planted_docs(20, 4));
        docs.push(Vec::new());
        docs.insert(0, Vec::new());
        let cfg = LdaConfig {
            sampler: SamplerChoice::AliasMh,
            ..quick_cfg(8, 6, 13)
        };
        let model = GibbsTrainer::new(cfg).fit(&docs);
        assert!(model.phi().is_finite());
    }
}
