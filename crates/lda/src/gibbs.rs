//! Weighted collapsed Gibbs sampler for LDA.
//!
//! Standard Griffiths–Steyvers collapsed Gibbs with one twist: each token
//! carries a real-valued weight, so count tables are `f64`. With unit
//! weights this is exactly classic LDA; with IDF weights it reproduces the
//! gensim behaviour of training on TF-IDF-transformed corpora that the paper
//! evaluates as the alternative input in Figure 2.
//!
//! Sweeps are data-parallel in the AD-LDA style (Newman et al.): documents
//! are sliced into fixed chunks, each chunk samples against a sweep-start
//! snapshot of the topic-word table with its own RNG stream derived from
//! `(seed, sweep, chunk)`, and the per-chunk count deltas are merged in
//! chunk order. Chunk boundaries and streams never depend on the worker
//! count, so results are bit-identical at any `HLM_THREADS` — and the
//! checkpoint/resume bit-identity guarantee carries over unchanged.

use crate::model::{LdaConfig, LdaModel};
use crate::WeightedDoc;
use hlm_linalg::Matrix;
use hlm_par::{Budget, Pool};
use hlm_resilience::{Checkpoint, ResilienceError, TrainControl};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Documents per parallel Gibbs chunk. Fixed: chunk boundaries are part of
/// the deterministic sampling schedule, not a tuning knob per machine.
/// Shard boundaries (`hlm_corpus::shard::SHARD_ALIGN`) are multiples of this,
/// so a shard's local chunks coincide with global chunks — the key to the
/// sharded sampler's bit-identity (see `sharded`).
pub(crate) const DOC_CHUNK: usize = 64;

/// Topic-count cutoff between the two samplers: at or below it, the fused
/// dense cumulative pass (one multiply-accumulate per topic) beats any
/// list bookkeeping; above it the SparseLDA-style bucket sampler pays off.
/// A pure function of the configuration, so the choice cannot vary with
/// scheduling.
const DENSE_TOPIC_CUTOFF: usize = 16;

/// Cost-model estimate of one sweep: per weighted token, fixed bookkeeping
/// plus roughly one multiply-accumulate per topic (in [`Budget`] units of
/// ~1 ns of serial work).
pub(crate) fn sweep_budget(n_tokens: usize, k: usize) -> Budget {
    Budget::items(n_tokens, 16 + 8 * k as u64)
}

/// One chunk's mutable slice of a sweep: its token assignments and
/// document-topic rows (mutated in place — they are disjoint between
/// chunks) and its scratch area for the count-table deltas that must merge
/// in chunk order.
pub(crate) struct ChunkView<'a> {
    pub(crate) z: &'a mut [u16],
    pub(crate) dk: &'a mut [f64],
    /// `k*m` topic-word deltas followed by `k` topic-total deltas, always
    /// fully overwritten by the chunk.
    pub(crate) delta: &'a mut [f64],
    pub(crate) d_lo: usize,
    pub(crate) t_lo: usize,
}

/// Immutable per-sweep context shared by every chunk. `chunk_base` is the
/// global index of the context's first chunk: the whole-corpus sweep passes
/// 0, the sharded sweep passes the shard's global chunk offset, so both draw
/// from identical per-chunk RNG streams.
pub(crate) struct SweepCtx<'a> {
    pub(crate) tok_doc: &'a [u32],
    pub(crate) tok_word: &'a [u32],
    pub(crate) tok_weight: &'a [f64],
    pub(crate) n_kw: &'a Matrix,
    pub(crate) n_k: &'a [f64],
    pub(crate) k: usize,
    pub(crate) m: usize,
    pub(crate) alpha: f64,
    pub(crate) beta: f64,
    pub(crate) beta_sum: f64,
    pub(crate) seed: u64,
    pub(crate) sweep: u64,
    pub(crate) chunk_base: usize,
}

/// Per-slot scratch reused across every chunk a pool slot processes, so
/// the inner sampling loop allocates nothing. Everything read is fully
/// re-initialized per chunk (tables, reciprocals, word lists) or per
/// document (topic list), keeping chunk results a pure function of the
/// chunk — the `par_for_each_scratch` contract.
pub(crate) struct SweepScratch {
    /// Chunk-local topic-word counts (`k*m`), copied from the sweep-start
    /// snapshot at chunk entry.
    kw: Vec<f64>,
    /// Chunk-local topic totals (`k`).
    k_tot: Vec<f64>,
    /// Cached reciprocals `1 / (k_tot[t] + Mβ)` — turns the per-topic
    /// division of the collapsed conditional into a multiply.
    inv: Vec<f64>,
    /// Dense cumulative-weight buffer for the fused sampler (`k`).
    cum: Vec<f64>,
    /// Maintained sparse topic list of the document being sampled
    /// (topics with positive doc-topic count).
    doc_topics: Vec<u16>,
    /// Cumulative weights over `doc_topics`.
    doc_cum: Vec<f64>,
    /// Maintained per-word sparse topic lists (sparse sampler only).
    word_topics: Vec<Vec<u16>>,
    /// Cumulative weights over one word's topic list.
    word_cum: Vec<f64>,
}

impl SweepScratch {
    pub(crate) fn new(k: usize, m: usize) -> Self {
        SweepScratch {
            kw: vec![0.0; k * m],
            k_tot: vec![0.0; k],
            inv: vec![0.0; k],
            cum: vec![0.0; k],
            doc_topics: Vec::with_capacity(k),
            doc_cum: vec![0.0; k],
            word_topics: vec![Vec::new(); if k > DENSE_TOPIC_CUTOFF { m } else { 0 }],
            word_cum: vec![0.0; k],
        }
    }
}

/// Splits the flat assignment array, the doc-topic table and the delta
/// buffer into per-chunk disjoint views. Chunk boundaries are the same
/// pure function of the corpus the sampler has always used.
pub(crate) fn build_views<'a>(
    tok_z: &'a mut [u16],
    dk: &'a mut [f64],
    delta_buf: &'a mut [f64],
    doc_start: &[usize],
    n_docs: usize,
    k: usize,
    delta_stride: usize,
) -> Vec<ChunkView<'a>> {
    let n_chunks = hlm_par::chunk_count(n_docs, DOC_CHUNK);
    let mut views = Vec::with_capacity(n_chunks);
    let (mut z_rest, mut dk_rest, mut delta_rest) = (tok_z, dk, delta_buf);
    for c in 0..n_chunks {
        let (d_lo, d_hi) = hlm_par::chunk_bounds(n_docs, DOC_CHUNK, c);
        let (t_lo, t_hi) = (doc_start[d_lo], doc_start[d_hi]);
        let (z_c, zr) = z_rest.split_at_mut(t_hi - t_lo);
        z_rest = zr;
        let (dk_c, dr) = dk_rest.split_at_mut((d_hi - d_lo) * k);
        dk_rest = dr;
        let (de_c, der) = delta_rest.split_at_mut(delta_stride);
        delta_rest = der;
        views.push(ChunkView {
            z: z_c,
            dk: dk_c,
            delta: de_c,
            d_lo,
            t_lo,
        });
    }
    views
}

/// Removes topic `t` from a maintained sparse list if present. Lists are
/// chunk-local and every mutation is part of the deterministic sampling
/// schedule, so `swap_remove` order never depends on threads.
fn remove_topic(list: &mut Vec<u16>, t: usize) {
    if let Some(pos) = list.iter().position(|&x| x as usize == t) {
        list.swap_remove(pos);
    }
}

/// Fused dense sampler: one cumulative pass building
/// `(n_dk + α)(n_kw + β)/(n_k + Mβ)` per topic (division replaced by the
/// cached reciprocal), then a single uniform draw scanned against the
/// cumulative weights.
fn sample_dense(
    scratch: &mut SweepScratch,
    dk_row: &[f64],
    w: usize,
    ctx: &SweepCtx,
    rng: &mut StdRng,
) -> usize {
    let m = ctx.m;
    let mut acc = 0.0;
    for (cum, ((&dkv, &invv), &kwv)) in scratch.cum.iter_mut().zip(
        dk_row
            .iter()
            .zip(scratch.inv.iter())
            .zip(scratch.kw[w..].iter().step_by(m)),
    ) {
        acc += (dkv + ctx.alpha) * (kwv + ctx.beta) * invv;
        *cum = acc;
    }
    let u = rng.gen::<f64>() * acc;
    for (t, &c) in scratch.cum[..ctx.k - 1].iter().enumerate() {
        if u < c {
            return t;
        }
    }
    ctx.k - 1
}

/// SparseLDA-style bucket sampler (Yao, Mimno & McCallum): the sampling
/// mass decomposes as
///
/// ```text
/// p(t) ∝ αβ·inv[t]  +  n_dk[t]·β·inv[t]  +  (n_dk[t] + α)·n_kw[t,w]·inv[t]
///        (s: smoothing)  (r: doc-sparse)     (q: word-sparse)
/// ```
///
/// so one uniform draw lands in the word bucket (scanned over the
/// maintained word-topic list), the document bucket (scanned over the
/// maintained per-document topic list) or — rarely — the smoothing bucket
/// (dense scan over the cached reciprocals). `inv_sum` is the maintained
/// `Σ_t inv[t]`; tiny negative count residues from weighted-token
/// cancellation are clamped out of the probability terms only, never out
/// of the count tables.
fn sample_sparse(
    scratch: &mut SweepScratch,
    dk_row: &[f64],
    w: usize,
    inv_sum: f64,
    ctx: &SweepCtx,
    rng: &mut StdRng,
) -> usize {
    let m = ctx.m;
    let mut q = 0.0;
    for (slot, &t) in scratch.word_topics[w].iter().enumerate() {
        let t = t as usize;
        let kwv = scratch.kw[t * m + w].max(0.0);
        q += (dk_row[t] + ctx.alpha) * kwv * scratch.inv[t];
        scratch.word_cum[slot] = q;
    }
    let mut r = 0.0;
    for (slot, &t) in scratch.doc_topics.iter().enumerate() {
        let t = t as usize;
        r += dk_row[t].max(0.0) * ctx.beta * scratch.inv[t];
        scratch.doc_cum[slot] = r;
    }
    let s = ctx.alpha * ctx.beta * inv_sum;
    let u = rng.gen::<f64>() * (q + r + s);
    if u < q {
        let wlist = &scratch.word_topics[w];
        for (slot, &t) in wlist.iter().enumerate() {
            if u < scratch.word_cum[slot] {
                return t as usize;
            }
        }
        if let Some(&t) = wlist.last() {
            return t as usize;
        }
    }
    let u = u - q;
    if u < r {
        for (slot, &t) in scratch.doc_topics.iter().enumerate() {
            if u < scratch.doc_cum[slot] {
                return t as usize;
            }
        }
        if let Some(&t) = scratch.doc_topics.last() {
            return t as usize;
        }
    }
    // Smoothing bucket: u_s ∈ [0, Σ inv) after dividing out αβ. The
    // incremental inv_sum can drift by ulps from the true Σ, so the scan
    // clamps to the last topic.
    let mut u = (u - r).max(0.0) / (ctx.alpha * ctx.beta);
    for (t, &invv) in scratch.inv.iter().enumerate().take(ctx.k - 1) {
        u -= invv;
        if u < 0.0 {
            return t;
        }
    }
    ctx.k - 1
}

/// Samples one chunk of documents against the sweep-start snapshot,
/// mutating the chunk's assignments and doc-topic rows in place and
/// writing its topic-word/topic-total deltas into the chunk's slice of the
/// shared delta buffer. RNG stream: `(seed, sweep, chunk_base + chunk)` —
/// identical at every thread count, and identical whether the chunk is
/// addressed through a whole-corpus sweep or a shard-local one.
pub(crate) fn sweep_chunk(
    scratch: &mut SweepScratch,
    ctx: &SweepCtx,
    chunk: usize,
    view: &mut ChunkView,
) {
    let (k, m) = (ctx.k, ctx.m);
    let mut rng = StdRng::seed_from_u64(hlm_par::split_seed3(
        ctx.seed,
        ctx.sweep,
        (ctx.chunk_base + chunk) as u64,
    ));
    scratch.kw.copy_from_slice(ctx.n_kw.as_slice());
    scratch.k_tot.copy_from_slice(ctx.n_k);
    for (inv, &tot) in scratch.inv.iter_mut().zip(scratch.k_tot.iter()) {
        *inv = 1.0 / (tot + ctx.beta_sum);
    }
    let sparse = k > DENSE_TOPIC_CUTOFF;
    let mut inv_sum = 0.0;
    if sparse {
        inv_sum = scratch.inv.iter().sum();
        for list in &mut scratch.word_topics {
            list.clear();
        }
        for t in 0..k {
            for (w, &c) in scratch.kw[t * m..(t + 1) * m].iter().enumerate() {
                if c > 0.0 {
                    scratch.word_topics[w].push(t as u16);
                }
            }
        }
    }
    let mut cur_doc = usize::MAX;
    for j in 0..view.z.len() {
        let i = view.t_lo + j;
        let d = ctx.tok_doc[i] as usize;
        let w = ctx.tok_word[i] as usize;
        let weight = ctx.tok_weight[i];
        let row = (d - view.d_lo) * k;
        if sparse && d != cur_doc {
            cur_doc = d;
            scratch.doc_topics.clear();
            for (t, &c) in view.dk[row..row + k].iter().enumerate() {
                if c > 0.0 {
                    scratch.doc_topics.push(t as u16);
                }
            }
        }
        let old_z = view.z[j] as usize;

        view.dk[row + old_z] -= weight;
        scratch.kw[old_z * m + w] -= weight;
        scratch.k_tot[old_z] -= weight;
        if sparse {
            inv_sum -= scratch.inv[old_z];
        }
        scratch.inv[old_z] = 1.0 / (scratch.k_tot[old_z] + ctx.beta_sum);
        if sparse {
            inv_sum += scratch.inv[old_z];
            if view.dk[row + old_z] <= 0.0 {
                remove_topic(&mut scratch.doc_topics, old_z);
            }
            if scratch.kw[old_z * m + w] <= 0.0 {
                remove_topic(&mut scratch.word_topics[w], old_z);
            }
        }

        let new_z = if sparse {
            sample_sparse(scratch, &view.dk[row..row + k], w, inv_sum, ctx, &mut rng)
        } else {
            sample_dense(scratch, &view.dk[row..row + k], w, ctx, &mut rng)
        };

        if sparse {
            if view.dk[row + new_z] <= 0.0 {
                scratch.doc_topics.push(new_z as u16);
            }
            if scratch.kw[new_z * m + w] <= 0.0 {
                scratch.word_topics[w].push(new_z as u16);
            }
            inv_sum -= scratch.inv[new_z];
        }
        view.dk[row + new_z] += weight;
        scratch.kw[new_z * m + w] += weight;
        scratch.k_tot[new_z] += weight;
        scratch.inv[new_z] = 1.0 / (scratch.k_tot[new_z] + ctx.beta_sum);
        if sparse {
            inv_sum += scratch.inv[new_z];
        }
        view.z[j] = new_z as u16;
    }
    // Deltas relative to the sweep-start snapshot, fully overwriting the
    // chunk's slice of the shared buffer.
    let (kw_delta, k_delta) = view.delta.split_at_mut(k * m);
    for (d, (&local, &global)) in kw_delta
        .iter_mut()
        .zip(scratch.kw.iter().zip(ctx.n_kw.as_slice()))
    {
        *d = local - global;
    }
    for (d, (&local, &global)) in k_delta
        .iter_mut()
        .zip(scratch.k_tot.iter().zip(ctx.n_k.iter()))
    {
        *d = local - global;
    }
}

/// Checkpoint kind tag for collapsed Gibbs runs.
pub const GIBBS_CHECKPOINT_KIND: &str = "lda-gibbs";

/// Complete sampler state after a finished sweep: everything `fit_resumable`
/// needs to continue bit-for-bit. Count tables are serialized rather than
/// recomputed from `tok_z` because the incremental add/subtract updates
/// accumulate floating-point error in a different order than a fresh
/// summation would.
#[derive(Serialize, Deserialize)]
struct GibbsState {
    iters_done: u64,
    alpha: f64,
    tok_z: Vec<u16>,
    n_dk: Matrix,
    n_kw: Matrix,
    n_k: Vec<f64>,
    phi_acc: Matrix,
    n_samples: u64,
    rng: [u64; 4],
}

/// Collapsed Gibbs trainer.
#[derive(Debug, Clone)]
pub struct GibbsTrainer {
    cfg: LdaConfig,
}

impl GibbsTrainer {
    /// Creates a trainer.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent.
    pub fn new(cfg: LdaConfig) -> Self {
        cfg.validate();
        GibbsTrainer { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &LdaConfig {
        &self.cfg
    }

    /// Runs the sampler and returns the estimated model (posterior-mean
    /// `phi` averaged over post-burn-in samples).
    ///
    /// # Panics
    /// Panics if a document references a word outside the configured
    /// vocabulary or carries a non-positive weight.
    pub fn fit(&self, docs: &[WeightedDoc]) -> LdaModel {
        self.fit_resumable(docs, &mut TrainControl::noop(), None)
            .expect("noop control cannot interrupt training")
    }

    /// Like [`GibbsTrainer::fit`], but consults `ctrl` at every sweep
    /// boundary (watchdog, divergence detection, per-sweep checkpointing)
    /// and optionally continues from a checkpoint written by an earlier run.
    /// An interrupted-then-resumed run produces a model bit-identical to an
    /// uninterrupted one.
    ///
    /// # Panics
    /// Panics on the same malformed-input conditions as `fit`.
    pub fn fit_resumable(
        &self,
        docs: &[WeightedDoc],
        ctrl: &mut TrainControl,
        resume: Option<&Checkpoint>,
    ) -> Result<LdaModel, ResilienceError> {
        let k = self.cfg.n_topics;
        let m = self.cfg.vocab_size;
        let mut alpha = self.cfg.effective_alpha();
        let beta = self.cfg.beta;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        // Count tables (f64: tokens are weighted).
        let mut n_dk = Matrix::zeros(docs.len(), k); // doc-topic
        let mut n_kw = Matrix::zeros(k, m); // topic-word
        let mut n_k = vec![0.0f64; k]; // topic totals

        // Flat token arrays for cache-friendly sweeps, sized up front so
        // the fill loop never reallocates.
        let total_tokens: usize = docs.iter().map(Vec::len).sum();
        let mut tok_doc: Vec<u32> = Vec::with_capacity(total_tokens);
        let mut tok_word: Vec<u32> = Vec::with_capacity(total_tokens);
        let mut tok_weight: Vec<f64> = Vec::with_capacity(total_tokens);
        let mut tok_z: Vec<u16> = Vec::with_capacity(total_tokens);
        for (d, doc) in docs.iter().enumerate() {
            for &(w, weight) in doc {
                assert!(w < m, "word {w} outside vocabulary of {m}");
                assert!(
                    weight.is_finite() && weight > 0.0,
                    "token weight must be positive, got {weight}"
                );
                let z = rng.gen_range(0..k);
                tok_doc.push(d as u32);
                tok_word.push(w as u32);
                tok_weight.push(weight);
                tok_z.push(z as u16);
                n_dk.add_at(d, z, weight);
                n_kw.add_at(z, w, weight);
                n_k[z] += weight;
            }
        }

        // Token range of each document in the flat arrays (documents are
        // contiguous by construction).
        let mut doc_start = Vec::with_capacity(docs.len() + 1);
        doc_start.push(0usize);
        for doc in docs {
            doc_start.push(doc_start.last().unwrap() + doc.len());
        }

        let beta_sum = beta * m as f64;
        let mut phi_acc = Matrix::zeros(k, m);
        let mut n_samples = 0u64;
        let mut start_iter = 0u64;

        if let Some(ckpt) = resume {
            let state = decode_state(ckpt, tok_z.len(), docs.len(), k, m)?;
            start_iter = state.iters_done;
            alpha = state.alpha;
            tok_z = state.tok_z;
            n_dk = state.n_dk;
            n_kw = state.n_kw;
            n_k = state.n_k;
            phi_acc = state.phi_acc;
            n_samples = state.n_samples;
            rng = StdRng::from_state(state.rng);
        }

        let pool = Pool::global();
        let rec = hlm_obs::global();
        let budget = sweep_budget(tok_z.len(), k);
        let delta_stride = k * m + k;
        let n_chunks = hlm_par::chunk_count(docs.len(), DOC_CHUNK);
        // Per-chunk delta arena, allocated once for the whole run; every
        // sweep fully overwrites it.
        let mut delta_buf = vec![0.0f64; n_chunks * delta_stride];
        for iter in start_iter as usize..self.cfg.n_iters {
            ctrl.begin_iteration(iter as u64)?;
            let sweep_t0 = rec.is_enabled().then(std::time::Instant::now);
            // Document-sliced sweep: every chunk samples its documents
            // against the sweep-start snapshot of the shared tables (its own
            // n_dk rows and assignments are mutated in place — they are
            // disjoint between chunks), on an RNG stream keyed by
            // (seed, sweep, chunk). With a single chunk this is exactly the
            // sequential collapsed sampler.
            let ctx = SweepCtx {
                tok_doc: &tok_doc,
                tok_word: &tok_word,
                tok_weight: &tok_weight,
                n_kw: &n_kw,
                n_k: &n_k,
                k,
                m,
                alpha,
                beta,
                beta_sum,
                seed: self.cfg.seed,
                sweep: iter as u64,
                chunk_base: 0,
            };
            let mut views = build_views(
                &mut tok_z,
                n_dk.as_mut_slice(),
                &mut delta_buf,
                &doc_start,
                docs.len(),
                k,
                delta_stride,
            );
            hlm_par::par_for_each_scratch(
                &pool,
                budget,
                &mut views,
                || SweepScratch::new(k, m),
                |scratch, c, view| sweep_chunk(scratch, &ctx, c, view),
            );
            drop(views);
            // Deterministic merge of the topic-word/topic-total deltas in
            // chunk order (assignments and doc-topic rows were updated in
            // place).
            for chunk_delta in delta_buf.chunks_exact(delta_stride) {
                let (kw_delta, k_delta) = chunk_delta.split_at(k * m);
                for (g, &d) in n_kw.as_mut_slice().iter_mut().zip(kw_delta) {
                    *g += d;
                }
                for (g, &d) in n_k.iter_mut().zip(k_delta) {
                    *g += d;
                }
            }

            // Minka's fixed-point re-estimation of the symmetric alpha,
            // applied during burn-in so the collected phi samples use the
            // final value.
            if self.cfg.optimize_alpha && iter < self.cfg.burn_in && iter % 10 == 9 {
                alpha = minka_alpha_update(alpha, &n_dk, k);
            }

            let past_burn_in = iter >= self.cfg.burn_in;
            let on_lag = (iter - self.cfg.burn_in.min(iter)) % self.cfg.sample_lag == 0;
            if past_burn_in && on_lag {
                for (t, &nk) in n_k.iter().enumerate().take(k) {
                    let denom = nk + beta_sum;
                    let phi_row = &mut phi_acc.as_mut_slice()[t * m..(t + 1) * m];
                    for (acc, &c) in phi_row.iter_mut().zip(n_kw.row(t)) {
                        *acc += (c + beta) / denom;
                    }
                }
                n_samples += 1;
            }

            // Observability: read-only — nothing below branches on these
            // values, so enabling the recorder cannot change the chain.
            if let Some(t0) = sweep_t0 {
                rec.observe("lda.gibbs.sweep_seconds", t0.elapsed().as_secs_f64());
                rec.add("lda.gibbs.sweeps", 1);
                rec.trace(
                    "lda.gibbs.log_likelihood",
                    iter as u64,
                    gibbs_log_likelihood(&n_kw, &n_k, beta),
                );
            }

            // Total topic mass is conserved by a correct sweep; a NaN weight
            // or injected fault shows up here and aborts before the broken
            // state can be checkpointed.
            ctrl.check_metric(iter as u64, "topic mass", n_k.iter().sum())?;

            ctrl.checkpoint(iter as u64 + 1, || {
                encode_state(&GibbsState {
                    iters_done: iter as u64 + 1,
                    alpha,
                    tok_z: tok_z.clone(),
                    n_dk: n_dk.clone(),
                    n_kw: n_kw.clone(),
                    n_k: n_k.clone(),
                    phi_acc: phi_acc.clone(),
                    n_samples,
                    rng: rng.state(),
                })
            });
        }

        assert!(
            n_samples > 0,
            "no phi samples collected; check burn_in / n_iters"
        );
        phi_acc.scale_mut(1.0 / n_samples as f64);
        // Guard against accumulated rounding before the model's row check.
        phi_acc.normalize_rows();
        Ok(LdaModel::new(phi_acc, alpha, beta))
    }

    /// Materializes a model directly from a checkpoint, without further
    /// sweeps — the rollback path when a later sweep diverges. Fails with
    /// [`ResilienceError::Mismatch`] if the checkpoint predates burn-in (no
    /// phi samples collected yet).
    pub fn model_from_checkpoint(&self, ckpt: &Checkpoint) -> Result<LdaModel, ResilienceError> {
        if ckpt.kind != GIBBS_CHECKPOINT_KIND {
            return Err(ResilienceError::Mismatch {
                reason: format!("kind {} != {GIBBS_CHECKPOINT_KIND}", ckpt.kind),
            });
        }
        let state: GibbsState = parse_payload(&ckpt.payload)?;
        if state.n_samples == 0 {
            return Err(ResilienceError::Mismatch {
                reason: "checkpoint predates burn-in: no phi samples collected".to_string(),
            });
        }
        let mut phi = state.phi_acc;
        phi.scale_mut(1.0 / state.n_samples as f64);
        phi.normalize_rows();
        Ok(LdaModel::new(phi, state.alpha, self.cfg.beta))
    }
}

fn encode_state(state: &GibbsState) -> Vec<u8> {
    serde_json::to_string(state)
        .expect("gibbs state serializes")
        .into_bytes()
}

fn parse_payload(payload: &[u8]) -> Result<GibbsState, ResilienceError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ResilienceError::corrupt("gibbs payload is not UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| ResilienceError::corrupt(format!("gibbs payload does not parse: {e}")))
}

fn decode_state(
    ckpt: &Checkpoint,
    n_tokens: usize,
    n_docs: usize,
    k: usize,
    m: usize,
) -> Result<GibbsState, ResilienceError> {
    if ckpt.kind != GIBBS_CHECKPOINT_KIND {
        return Err(ResilienceError::Mismatch {
            reason: format!("kind {} != {GIBBS_CHECKPOINT_KIND}", ckpt.kind),
        });
    }
    let state = parse_payload(&ckpt.payload)?;
    if state.tok_z.len() != n_tokens {
        return Err(ResilienceError::Mismatch {
            reason: format!(
                "checkpoint has {} token assignments, corpus has {n_tokens}",
                state.tok_z.len()
            ),
        });
    }
    if state.n_dk.rows() != n_docs
        || state.n_dk.cols() != k
        || state.n_kw.rows() != k
        || state.n_kw.cols() != m
        || state.n_k.len() != k
        || state.phi_acc.rows() != k
        || state.phi_acc.cols() != m
    {
        return Err(ResilienceError::Mismatch {
            reason: "checkpoint count-table shapes do not match the configuration".to_string(),
        });
    }
    Ok(state)
}

/// Griffiths–Steyvers corpus log-likelihood `log P(w|z)` of the current
/// topic assignment, computed read-only from the count tables:
///
/// ```text
/// K·[lnΓ(Mβ) − M·lnΓ(β)] + Σ_k [ Σ_w lnΓ(n_kw + β) − lnΓ(n_k + Mβ) ]
/// ```
///
/// Recorded as a convergence trace when observability is enabled; with
/// weighted tokens the counts are real-valued and this is the natural
/// generalization.
pub(crate) fn gibbs_log_likelihood(n_kw: &Matrix, n_k: &[f64], beta: f64) -> f64 {
    use hlm_linalg::special::ln_gamma;
    let (k, m) = (n_kw.rows(), n_kw.cols());
    let beta_sum = beta * m as f64;
    let mut ll = k as f64 * (ln_gamma(beta_sum) - m as f64 * ln_gamma(beta));
    for (t, &nk) in n_k.iter().enumerate().take(k) {
        for &c in n_kw.row(t) {
            ll += ln_gamma(c + beta);
        }
        ll -= ln_gamma(nk + beta_sum);
    }
    ll
}

/// One step of Minka's fixed-point update for the symmetric Dirichlet
/// concentration:
///
/// ```text
/// α ← α · Σ_d Σ_k [ψ(n_dk + α) − ψ(α)]
///         ───────────────────────────────
///         K · Σ_d [ψ(n_d + Kα) − ψ(Kα)]
/// ```
///
/// Empty documents are skipped; the result is clamped to `[1e-4, 1e2]` to
/// keep a pathological early count table from destabilizing the chain.
///
/// Split into an accumulation over doc-topic rows and a finish step so the
/// sharded sampler — whose `n_dk` lives in per-shard pieces — can stream the
/// rows in global document order and obtain the identical floating-point
/// result.
fn minka_alpha_update(alpha: f64, n_dk: &Matrix, k: usize) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    minka_alpha_accumulate(
        alpha,
        k,
        (0..n_dk.rows()).map(|d| n_dk.row(d)),
        &mut num,
        &mut den,
    );
    minka_alpha_finish(alpha, k, num, den)
}

/// Accumulates the numerator/denominator sums of Minka's update over
/// doc-topic rows. Rows must arrive in global document order for the
/// accumulation order (and hence the floating-point result) to be
/// reproducible.
pub(crate) fn minka_alpha_accumulate<'a>(
    alpha: f64,
    k: usize,
    rows: impl Iterator<Item = &'a [f64]>,
    num: &mut f64,
    den: &mut f64,
) {
    use hlm_linalg::special::digamma;
    for row in rows {
        let n_d: f64 = row.iter().sum();
        if n_d <= 0.0 {
            continue;
        }
        for &c in row {
            *num += digamma(c + alpha) - digamma(alpha);
        }
        *den += digamma(n_d + k as f64 * alpha) - digamma(k as f64 * alpha);
    }
}

/// Applies Minka's fixed-point step from the accumulated sums.
pub(crate) fn minka_alpha_finish(alpha: f64, k: usize, num: f64, den: f64) -> f64 {
    if den <= 0.0 || num <= 0.0 {
        return alpha;
    }
    (alpha * num / (k as f64 * den)).clamp(1e-4, 1e2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit_weights;

    /// Two planted topics: words 0-2 vs words 3-5.
    fn planted_docs(n_docs: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_docs)
            .map(|i| {
                let base = if i % 2 == 0 { 0usize } else { 3 };
                (0..8).map(|_| base + rng.gen_range(0..3)).collect()
            })
            .collect()
    }

    fn quick_cfg(n_topics: usize, vocab: usize, seed: u64) -> LdaConfig {
        LdaConfig {
            n_topics,
            vocab_size: vocab,
            n_iters: 120,
            burn_in: 60,
            sample_lag: 5,
            seed,
            alpha: Some(0.5),
            beta: 0.1,
            ..Default::default()
        }
    }

    #[test]
    fn recovers_planted_topics() {
        let docs = planted_docs(120, 1);
        let model = GibbsTrainer::new(quick_cfg(2, 6, 7)).fit(&unit_weights(&docs));
        // Each topic should concentrate on one 3-word block.
        let phi = model.phi();
        let block0: f64 = (0..3).map(|w| phi.get(0, w)).sum();
        let block1: f64 = (0..3).map(|w| phi.get(1, w)).sum();
        // One topic owns block {0,1,2}, the other {3,4,5}.
        let (hi, lo) = if block0 > block1 {
            (block0, block1)
        } else {
            (block1, block0)
        };
        assert!(hi > 0.9, "dominant topic block mass {hi}");
        assert!(lo < 0.1, "other topic block mass {lo}");
    }

    #[test]
    fn phi_rows_are_distributions() {
        let docs = planted_docs(40, 2);
        let model = GibbsTrainer::new(quick_cfg(3, 6, 3)).fit(&unit_weights(&docs));
        for t in 0..3 {
            let s: f64 = model.phi().row(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(
                model.phi().row(t).iter().all(|&p| p > 0.0),
                "beta smoothing keeps phi positive"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let docs = unit_weights(&planted_docs(30, 3));
        let a = GibbsTrainer::new(quick_cfg(2, 6, 11)).fit(&docs);
        let b = GibbsTrainer::new(quick_cfg(2, 6, 11)).fit(&docs);
        assert_eq!(a.phi(), b.phi());
    }

    #[test]
    fn weighted_tokens_shift_phi() {
        // One doc with a heavily weighted word 5 vs unit weights.
        let docs_unit: Vec<WeightedDoc> = vec![vec![(0, 1.0), (5, 1.0)]; 30];
        let docs_heavy: Vec<WeightedDoc> = vec![vec![(0, 1.0), (5, 10.0)]; 30];
        let cfg = quick_cfg(1, 6, 5);
        let unit = GibbsTrainer::new(cfg.clone()).fit(&docs_unit);
        let heavy = GibbsTrainer::new(cfg).fit(&docs_heavy);
        assert!(heavy.phi().get(0, 5) > unit.phi().get(0, 5) + 0.2);
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn rejects_out_of_vocab_word() {
        let docs: Vec<WeightedDoc> = vec![vec![(9, 1.0)]];
        GibbsTrainer::new(quick_cfg(2, 6, 1)).fit(&docs);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_non_positive_weight() {
        let docs: Vec<WeightedDoc> = vec![vec![(0, 0.0)]];
        GibbsTrainer::new(quick_cfg(2, 6, 1)).fit(&docs);
    }

    #[test]
    fn single_topic_degenerates_to_smoothed_unigram() {
        let docs = unit_weights(&vec![vec![0, 0, 0, 1]; 20]);
        let model = GibbsTrainer::new(quick_cfg(1, 3, 9)).fit(&docs);
        let phi = model.phi();
        // Counts: w0 = 60, w1 = 20, w2 = 0 with beta = 0.1 smoothing.
        assert!((phi.get(0, 0) - 60.1 / 80.3).abs() < 1e-9);
        assert!((phi.get(0, 2) - 0.1 / 80.3).abs() < 1e-9);
    }

    #[test]
    fn minka_update_shrinks_alpha_on_sparse_mixtures() {
        // Documents drawn from single topics: the optimal symmetric alpha is
        // small. Starting from a deliberately bad alpha = 10, optimization
        // must shrink it, and the resulting model must not fit worse.
        let docs = unit_weights(&planted_docs(150, 8));
        let bad = LdaConfig {
            alpha: Some(10.0),
            optimize_alpha: false,
            ..quick_cfg(2, 6, 21)
        };
        let opt = LdaConfig {
            alpha: Some(10.0),
            optimize_alpha: true,
            ..quick_cfg(2, 6, 21)
        };
        let m_bad = GibbsTrainer::new(bad).fit(&docs);
        let m_opt = GibbsTrainer::new(opt).fit(&docs);
        assert!(
            m_opt.alpha() < 5.0,
            "optimized alpha {} should shrink from 10",
            m_opt.alpha()
        );
        assert_eq!(m_bad.alpha(), 10.0);
        // The optimized model separates the planted blocks at least as well.
        let block_mass = |m: &LdaModel| -> f64 {
            let b0: f64 = (0..3).map(|w| m.phi().get(0, w)).sum();
            b0.max(1.0 - b0)
        };
        assert!(block_mass(&m_opt) + 1e-9 >= block_mass(&m_bad) - 0.05);
    }

    #[test]
    fn minka_update_is_stable_on_degenerate_counts() {
        let n_dk = Matrix::zeros(3, 2); // all-empty documents
        let a = minka_alpha_update(0.5, &n_dk, 2);
        assert_eq!(a, 0.5, "no evidence leaves alpha unchanged");
        // Huge counts stay clamped and finite.
        let big = Matrix::filled(4, 2, 1e6);
        let a2 = minka_alpha_update(50.0, &big, 2);
        assert!(a2.is_finite() && (1e-4..=1e2).contains(&a2));
    }

    #[test]
    fn handles_empty_documents() {
        let mut docs = unit_weights(&planted_docs(20, 4));
        docs.push(Vec::new());
        let model = GibbsTrainer::new(quick_cfg(2, 6, 13)).fit(&docs);
        assert!(model.phi().is_finite());
    }

    #[test]
    fn sparse_sampler_is_deterministic_and_well_formed() {
        // Above DENSE_TOPIC_CUTOFF the SparseLDA-style bucket sampler runs;
        // it must keep every contract the dense path has.
        let docs = unit_weights(&planted_docs(60, 5));
        let cfg = quick_cfg(24, 6, 17);
        assert!(cfg.n_topics > DENSE_TOPIC_CUTOFF);
        let a = GibbsTrainer::new(cfg.clone()).fit(&docs);
        let b = GibbsTrainer::new(cfg).fit(&docs);
        assert_eq!(a.phi(), b.phi(), "sparse path must be seed-deterministic");
        for t in 0..24 {
            let s: f64 = a.phi().row(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {t} sums to {s}");
            assert!(a.phi().row(t).iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn sparse_sampler_handles_weighted_tokens_and_resume() {
        use hlm_resilience::{CheckpointStore, MemIo, RunGuard};

        // Fractional weights exercise the tiny-residue clamps in the
        // bucket sampler; kill/resume must stay bit-identical.
        let mut rng = StdRng::seed_from_u64(91);
        let docs: Vec<WeightedDoc> = (0..50)
            .map(|_| {
                (0..10)
                    .map(|_| (rng.gen_range(0..6), 0.25 + rng.gen::<f64>()))
                    .collect()
            })
            .collect();
        let cfg = quick_cfg(24, 6, 23);
        let full = GibbsTrainer::new(cfg.clone()).fit(&docs);
        assert!(full.phi().is_finite());

        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let trainer = GibbsTrainer::new(cfg);
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(70));
        trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        let ckpt = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
        let resumed = trainer
            .fit_resumable(&docs, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap();
        assert_eq!(
            resumed.phi(),
            full.phi(),
            "sparse resume must be bit-identical"
        );
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_run() {
        use hlm_resilience::{CheckpointStore, MemIo, RunGuard};

        let docs = unit_weights(&planted_docs(30, 3));
        let cfg = quick_cfg(2, 6, 11);
        let full = GibbsTrainer::new(cfg.clone()).fit(&docs);

        // Kill mid-accumulation (after burn-in at 60, before the end at 120).
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let trainer = GibbsTrainer::new(cfg);
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(70));
        let err = trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        assert!(err.is_interruption());

        let ckpt = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
        assert_eq!(ckpt.iteration, 70);
        let resumed = trainer
            .fit_resumable(&docs, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap();
        assert_eq!(resumed.phi(), full.phi(), "resume must be bit-identical");
        assert_eq!(resumed.alpha(), full.alpha());
    }

    #[test]
    fn model_from_checkpoint_requires_phi_samples() {
        use hlm_resilience::{CheckpointStore, MemIo, RunGuard};

        let docs = unit_weights(&planted_docs(30, 3));
        let trainer = GibbsTrainer::new(quick_cfg(2, 6, 11));
        let store = CheckpointStore::new(Box::new(MemIo::new()));

        // Killed during burn-in: no phi samples, rollback must refuse.
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(10));
        trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        let early = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
        assert!(matches!(
            trainer.model_from_checkpoint(&early),
            Err(hlm_resilience::ResilienceError::Mismatch { .. })
        ));

        // Killed after burn-in: rollback produces a valid model.
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(80));
        trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        let late = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
        let model = trainer.model_from_checkpoint(&late).unwrap();
        assert!(model.phi().is_finite());
    }

    #[test]
    fn resume_rejects_mismatched_corpus_or_kind() {
        use hlm_resilience::{Checkpoint, CheckpointStore, MemIo, RunGuard};

        let docs = unit_weights(&planted_docs(30, 3));
        let trainer = GibbsTrainer::new(quick_cfg(2, 6, 11));
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(5));
        trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        let ckpt = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();

        // Different corpus (token count changes).
        let other = unit_weights(&planted_docs(10, 9));
        let err = trainer
            .fit_resumable(&other, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap_err();
        assert!(matches!(
            err,
            hlm_resilience::ResilienceError::Mismatch { .. }
        ));

        // Wrong kind tag.
        let wrong = Checkpoint::new("lstm", ckpt.iteration, ckpt.payload.clone());
        let err = trainer
            .fit_resumable(&docs, &mut TrainControl::noop(), Some(&wrong))
            .unwrap_err();
        assert!(matches!(
            err,
            hlm_resilience::ResilienceError::Mismatch { .. }
        ));
    }
}
