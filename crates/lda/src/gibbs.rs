//! Weighted collapsed Gibbs sampler for LDA.
//!
//! Standard Griffiths–Steyvers collapsed Gibbs with one twist: each token
//! carries a real-valued weight, so count tables are `f64`. With unit
//! weights this is exactly classic LDA; with IDF weights it reproduces the
//! gensim behaviour of training on TF-IDF-transformed corpora that the paper
//! evaluates as the alternative input in Figure 2.
//!
//! Sweeps are data-parallel in the AD-LDA style (Newman et al.): documents
//! are sliced into fixed chunks, each chunk samples against a sweep-start
//! snapshot of the topic-word table with its own RNG stream derived from
//! `(seed, sweep, chunk)`, and the per-chunk count deltas are merged in
//! chunk order. Chunk boundaries and streams never depend on the worker
//! count, so results are bit-identical at any `HLM_THREADS` — and the
//! checkpoint/resume bit-identity guarantee carries over unchanged.

use crate::model::{LdaConfig, LdaModel};
use crate::WeightedDoc;
use hlm_linalg::dist::sample_categorical;
use hlm_linalg::Matrix;
use hlm_par::Pool;
use hlm_resilience::{Checkpoint, ResilienceError, TrainControl};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Documents per parallel Gibbs chunk. Fixed: chunk boundaries are part of
/// the deterministic sampling schedule, not a tuning knob per machine.
const DOC_CHUNK: usize = 64;

/// One chunk's sweep result: new topic assignments and document-topic rows
/// for its token/document range, plus count-table deltas relative to the
/// sweep-start snapshot.
struct SweepDelta {
    z: Vec<u16>,
    dk_rows: Vec<f64>,
    kw_delta: Matrix,
    k_delta: Vec<f64>,
}

/// Checkpoint kind tag for collapsed Gibbs runs.
pub const GIBBS_CHECKPOINT_KIND: &str = "lda-gibbs";

/// Complete sampler state after a finished sweep: everything `fit_resumable`
/// needs to continue bit-for-bit. Count tables are serialized rather than
/// recomputed from `tok_z` because the incremental add/subtract updates
/// accumulate floating-point error in a different order than a fresh
/// summation would.
#[derive(Serialize, Deserialize)]
struct GibbsState {
    iters_done: u64,
    alpha: f64,
    tok_z: Vec<u16>,
    n_dk: Matrix,
    n_kw: Matrix,
    n_k: Vec<f64>,
    phi_acc: Matrix,
    n_samples: u64,
    rng: [u64; 4],
}

/// Collapsed Gibbs trainer.
#[derive(Debug, Clone)]
pub struct GibbsTrainer {
    cfg: LdaConfig,
}

impl GibbsTrainer {
    /// Creates a trainer.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent.
    pub fn new(cfg: LdaConfig) -> Self {
        cfg.validate();
        GibbsTrainer { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &LdaConfig {
        &self.cfg
    }

    /// Runs the sampler and returns the estimated model (posterior-mean
    /// `phi` averaged over post-burn-in samples).
    ///
    /// # Panics
    /// Panics if a document references a word outside the configured
    /// vocabulary or carries a non-positive weight.
    pub fn fit(&self, docs: &[WeightedDoc]) -> LdaModel {
        self.fit_resumable(docs, &mut TrainControl::noop(), None)
            .expect("noop control cannot interrupt training")
    }

    /// Like [`GibbsTrainer::fit`], but consults `ctrl` at every sweep
    /// boundary (watchdog, divergence detection, per-sweep checkpointing)
    /// and optionally continues from a checkpoint written by an earlier run.
    /// An interrupted-then-resumed run produces a model bit-identical to an
    /// uninterrupted one.
    ///
    /// # Panics
    /// Panics on the same malformed-input conditions as `fit`.
    pub fn fit_resumable(
        &self,
        docs: &[WeightedDoc],
        ctrl: &mut TrainControl,
        resume: Option<&Checkpoint>,
    ) -> Result<LdaModel, ResilienceError> {
        let k = self.cfg.n_topics;
        let m = self.cfg.vocab_size;
        let mut alpha = self.cfg.effective_alpha();
        let beta = self.cfg.beta;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        // Count tables (f64: tokens are weighted).
        let mut n_dk = Matrix::zeros(docs.len(), k); // doc-topic
        let mut n_kw = Matrix::zeros(k, m); // topic-word
        let mut n_k = vec![0.0f64; k]; // topic totals

        // Flat token arrays for cache-friendly sweeps.
        let mut tok_doc: Vec<u32> = Vec::new();
        let mut tok_word: Vec<u32> = Vec::new();
        let mut tok_weight: Vec<f64> = Vec::new();
        let mut tok_z: Vec<u16> = Vec::new();
        for (d, doc) in docs.iter().enumerate() {
            for &(w, weight) in doc {
                assert!(w < m, "word {w} outside vocabulary of {m}");
                assert!(
                    weight.is_finite() && weight > 0.0,
                    "token weight must be positive, got {weight}"
                );
                let z = rng.gen_range(0..k);
                tok_doc.push(d as u32);
                tok_word.push(w as u32);
                tok_weight.push(weight);
                tok_z.push(z as u16);
                n_dk.add_at(d, z, weight);
                n_kw.add_at(z, w, weight);
                n_k[z] += weight;
            }
        }

        // Token range of each document in the flat arrays (documents are
        // contiguous by construction).
        let mut doc_start = Vec::with_capacity(docs.len() + 1);
        doc_start.push(0usize);
        for doc in docs {
            doc_start.push(doc_start.last().unwrap() + doc.len());
        }

        let beta_sum = beta * m as f64;
        let mut phi_acc = Matrix::zeros(k, m);
        let mut n_samples = 0u64;
        let mut start_iter = 0u64;

        if let Some(ckpt) = resume {
            let state = decode_state(ckpt, tok_z.len(), docs.len(), k, m)?;
            start_iter = state.iters_done;
            alpha = state.alpha;
            tok_z = state.tok_z;
            n_dk = state.n_dk;
            n_kw = state.n_kw;
            n_k = state.n_k;
            phi_acc = state.phi_acc;
            n_samples = state.n_samples;
            rng = StdRng::from_state(state.rng);
        }

        let pool = Pool::global();
        let rec = hlm_obs::global();
        let n_chunks = hlm_par::chunk_count(docs.len(), DOC_CHUNK);
        for iter in start_iter as usize..self.cfg.n_iters {
            ctrl.begin_iteration(iter as u64)?;
            let sweep_t0 = rec.is_enabled().then(std::time::Instant::now);
            // Document-sliced sweep: every chunk samples its documents
            // against the sweep-start snapshot of the shared tables (its own
            // n_dk rows stay exact), on an RNG stream keyed by
            // (seed, sweep, chunk). With a single chunk this is exactly the
            // sequential collapsed sampler.
            let alpha_now = alpha;
            let deltas = pool.run(n_chunks, |c| {
                let (d_lo, d_hi) = hlm_par::chunk_bounds(docs.len(), DOC_CHUNK, c);
                let (t_lo, t_hi) = (doc_start[d_lo], doc_start[d_hi]);
                let mut chunk_rng = StdRng::seed_from_u64(hlm_par::split_seed3(
                    self.cfg.seed,
                    iter as u64,
                    c as u64,
                ));
                let mut local_kw = n_kw.clone();
                let mut local_k = n_k.clone();
                let mut dk_rows = n_dk.as_slice()[d_lo * k..d_hi * k].to_vec();
                let mut z = tok_z[t_lo..t_hi].to_vec();
                let mut probs = vec![0.0f64; k];
                for i in t_lo..t_hi {
                    let d = tok_doc[i] as usize;
                    let w = tok_word[i] as usize;
                    let weight = tok_weight[i];
                    let old_z = z[i - t_lo] as usize;
                    let dk_row = &mut dk_rows[(d - d_lo) * k..(d - d_lo + 1) * k];

                    dk_row[old_z] -= weight;
                    local_kw.add_at(old_z, w, -weight);
                    local_k[old_z] -= weight;

                    for (t, p) in probs.iter_mut().enumerate() {
                        // Collapsed conditional:
                        // (n_dk + α)(n_kw + β)/(n_k + Mβ).
                        *p = (dk_row[t] + alpha_now) * (local_kw.get(t, w) + beta)
                            / (local_k[t] + beta_sum);
                    }
                    let new_z = sample_categorical(&mut chunk_rng, &probs);

                    z[i - t_lo] = new_z as u16;
                    dk_row[new_z] += weight;
                    local_kw.add_at(new_z, w, weight);
                    local_k[new_z] += weight;
                }
                local_kw.axpy(-1.0, &n_kw);
                for (l, &g) in local_k.iter_mut().zip(n_k.iter()) {
                    *l -= g;
                }
                SweepDelta {
                    z,
                    dk_rows,
                    kw_delta: local_kw,
                    k_delta: local_k,
                }
            });
            // Deterministic merge in chunk order.
            for (c, delta) in deltas.into_iter().enumerate() {
                let (d_lo, d_hi) = hlm_par::chunk_bounds(docs.len(), DOC_CHUNK, c);
                let (t_lo, t_hi) = (doc_start[d_lo], doc_start[d_hi]);
                tok_z[t_lo..t_hi].copy_from_slice(&delta.z);
                n_dk.as_mut_slice()[d_lo * k..d_hi * k].copy_from_slice(&delta.dk_rows);
                n_kw.axpy(1.0, &delta.kw_delta);
                for (g, &dl) in n_k.iter_mut().zip(&delta.k_delta) {
                    *g += dl;
                }
            }

            // Minka's fixed-point re-estimation of the symmetric alpha,
            // applied during burn-in so the collected phi samples use the
            // final value.
            if self.cfg.optimize_alpha && iter < self.cfg.burn_in && iter % 10 == 9 {
                alpha = minka_alpha_update(alpha, &n_dk, k);
            }

            let past_burn_in = iter >= self.cfg.burn_in;
            let on_lag = (iter - self.cfg.burn_in.min(iter)) % self.cfg.sample_lag == 0;
            if past_burn_in && on_lag {
                for (t, &nk) in n_k.iter().enumerate().take(k) {
                    let denom = nk + beta_sum;
                    for w in 0..m {
                        phi_acc.add_at(t, w, (n_kw.get(t, w) + beta) / denom);
                    }
                }
                n_samples += 1;
            }

            // Observability: read-only — nothing below branches on these
            // values, so enabling the recorder cannot change the chain.
            if let Some(t0) = sweep_t0 {
                rec.observe("lda.gibbs.sweep_seconds", t0.elapsed().as_secs_f64());
                rec.add("lda.gibbs.sweeps", 1);
                rec.trace(
                    "lda.gibbs.log_likelihood",
                    iter as u64,
                    gibbs_log_likelihood(&n_kw, &n_k, beta),
                );
            }

            // Total topic mass is conserved by a correct sweep; a NaN weight
            // or injected fault shows up here and aborts before the broken
            // state can be checkpointed.
            ctrl.check_metric(iter as u64, "topic mass", n_k.iter().sum())?;

            ctrl.checkpoint(iter as u64 + 1, || {
                encode_state(&GibbsState {
                    iters_done: iter as u64 + 1,
                    alpha,
                    tok_z: tok_z.clone(),
                    n_dk: n_dk.clone(),
                    n_kw: n_kw.clone(),
                    n_k: n_k.clone(),
                    phi_acc: phi_acc.clone(),
                    n_samples,
                    rng: rng.state(),
                })
            });
        }

        assert!(
            n_samples > 0,
            "no phi samples collected; check burn_in / n_iters"
        );
        phi_acc.scale_mut(1.0 / n_samples as f64);
        // Guard against accumulated rounding before the model's row check.
        phi_acc.normalize_rows();
        Ok(LdaModel::new(phi_acc, alpha, beta))
    }

    /// Materializes a model directly from a checkpoint, without further
    /// sweeps — the rollback path when a later sweep diverges. Fails with
    /// [`ResilienceError::Mismatch`] if the checkpoint predates burn-in (no
    /// phi samples collected yet).
    pub fn model_from_checkpoint(&self, ckpt: &Checkpoint) -> Result<LdaModel, ResilienceError> {
        if ckpt.kind != GIBBS_CHECKPOINT_KIND {
            return Err(ResilienceError::Mismatch {
                reason: format!("kind {} != {GIBBS_CHECKPOINT_KIND}", ckpt.kind),
            });
        }
        let state: GibbsState = parse_payload(&ckpt.payload)?;
        if state.n_samples == 0 {
            return Err(ResilienceError::Mismatch {
                reason: "checkpoint predates burn-in: no phi samples collected".to_string(),
            });
        }
        let mut phi = state.phi_acc;
        phi.scale_mut(1.0 / state.n_samples as f64);
        phi.normalize_rows();
        Ok(LdaModel::new(phi, state.alpha, self.cfg.beta))
    }
}

fn encode_state(state: &GibbsState) -> Vec<u8> {
    serde_json::to_string(state)
        .expect("gibbs state serializes")
        .into_bytes()
}

fn parse_payload(payload: &[u8]) -> Result<GibbsState, ResilienceError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ResilienceError::corrupt("gibbs payload is not UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| ResilienceError::corrupt(format!("gibbs payload does not parse: {e}")))
}

fn decode_state(
    ckpt: &Checkpoint,
    n_tokens: usize,
    n_docs: usize,
    k: usize,
    m: usize,
) -> Result<GibbsState, ResilienceError> {
    if ckpt.kind != GIBBS_CHECKPOINT_KIND {
        return Err(ResilienceError::Mismatch {
            reason: format!("kind {} != {GIBBS_CHECKPOINT_KIND}", ckpt.kind),
        });
    }
    let state = parse_payload(&ckpt.payload)?;
    if state.tok_z.len() != n_tokens {
        return Err(ResilienceError::Mismatch {
            reason: format!(
                "checkpoint has {} token assignments, corpus has {n_tokens}",
                state.tok_z.len()
            ),
        });
    }
    if state.n_dk.rows() != n_docs
        || state.n_dk.cols() != k
        || state.n_kw.rows() != k
        || state.n_kw.cols() != m
        || state.n_k.len() != k
        || state.phi_acc.rows() != k
        || state.phi_acc.cols() != m
    {
        return Err(ResilienceError::Mismatch {
            reason: "checkpoint count-table shapes do not match the configuration".to_string(),
        });
    }
    Ok(state)
}

/// Griffiths–Steyvers corpus log-likelihood `log P(w|z)` of the current
/// topic assignment, computed read-only from the count tables:
///
/// ```text
/// K·[lnΓ(Mβ) − M·lnΓ(β)] + Σ_k [ Σ_w lnΓ(n_kw + β) − lnΓ(n_k + Mβ) ]
/// ```
///
/// Recorded as a convergence trace when observability is enabled; with
/// weighted tokens the counts are real-valued and this is the natural
/// generalization.
fn gibbs_log_likelihood(n_kw: &Matrix, n_k: &[f64], beta: f64) -> f64 {
    use hlm_linalg::special::ln_gamma;
    let (k, m) = (n_kw.rows(), n_kw.cols());
    let beta_sum = beta * m as f64;
    let mut ll = k as f64 * (ln_gamma(beta_sum) - m as f64 * ln_gamma(beta));
    for (t, &nk) in n_k.iter().enumerate().take(k) {
        for &c in n_kw.row(t) {
            ll += ln_gamma(c + beta);
        }
        ll -= ln_gamma(nk + beta_sum);
    }
    ll
}

/// One step of Minka's fixed-point update for the symmetric Dirichlet
/// concentration:
///
/// ```text
/// α ← α · Σ_d Σ_k [ψ(n_dk + α) − ψ(α)]
///         ───────────────────────────────
///         K · Σ_d [ψ(n_d + Kα) − ψ(Kα)]
/// ```
///
/// Empty documents are skipped; the result is clamped to `[1e-4, 1e2]` to
/// keep a pathological early count table from destabilizing the chain.
fn minka_alpha_update(alpha: f64, n_dk: &Matrix, k: usize) -> f64 {
    use hlm_linalg::special::digamma;
    let mut num = 0.0;
    let mut den = 0.0;
    for d in 0..n_dk.rows() {
        let row = n_dk.row(d);
        let n_d: f64 = row.iter().sum();
        if n_d <= 0.0 {
            continue;
        }
        for &c in row {
            num += digamma(c + alpha) - digamma(alpha);
        }
        den += digamma(n_d + k as f64 * alpha) - digamma(k as f64 * alpha);
    }
    if den <= 0.0 || num <= 0.0 {
        return alpha;
    }
    (alpha * num / (k as f64 * den)).clamp(1e-4, 1e2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit_weights;

    /// Two planted topics: words 0-2 vs words 3-5.
    fn planted_docs(n_docs: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_docs)
            .map(|i| {
                let base = if i % 2 == 0 { 0usize } else { 3 };
                (0..8).map(|_| base + rng.gen_range(0..3)).collect()
            })
            .collect()
    }

    fn quick_cfg(n_topics: usize, vocab: usize, seed: u64) -> LdaConfig {
        LdaConfig {
            n_topics,
            vocab_size: vocab,
            n_iters: 120,
            burn_in: 60,
            sample_lag: 5,
            seed,
            alpha: Some(0.5),
            beta: 0.1,
            ..Default::default()
        }
    }

    #[test]
    fn recovers_planted_topics() {
        let docs = planted_docs(120, 1);
        let model = GibbsTrainer::new(quick_cfg(2, 6, 7)).fit(&unit_weights(&docs));
        // Each topic should concentrate on one 3-word block.
        let phi = model.phi();
        let block0: f64 = (0..3).map(|w| phi.get(0, w)).sum();
        let block1: f64 = (0..3).map(|w| phi.get(1, w)).sum();
        // One topic owns block {0,1,2}, the other {3,4,5}.
        let (hi, lo) = if block0 > block1 {
            (block0, block1)
        } else {
            (block1, block0)
        };
        assert!(hi > 0.9, "dominant topic block mass {hi}");
        assert!(lo < 0.1, "other topic block mass {lo}");
    }

    #[test]
    fn phi_rows_are_distributions() {
        let docs = planted_docs(40, 2);
        let model = GibbsTrainer::new(quick_cfg(3, 6, 3)).fit(&unit_weights(&docs));
        for t in 0..3 {
            let s: f64 = model.phi().row(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(
                model.phi().row(t).iter().all(|&p| p > 0.0),
                "beta smoothing keeps phi positive"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let docs = unit_weights(&planted_docs(30, 3));
        let a = GibbsTrainer::new(quick_cfg(2, 6, 11)).fit(&docs);
        let b = GibbsTrainer::new(quick_cfg(2, 6, 11)).fit(&docs);
        assert_eq!(a.phi(), b.phi());
    }

    #[test]
    fn weighted_tokens_shift_phi() {
        // One doc with a heavily weighted word 5 vs unit weights.
        let docs_unit: Vec<WeightedDoc> = vec![vec![(0, 1.0), (5, 1.0)]; 30];
        let docs_heavy: Vec<WeightedDoc> = vec![vec![(0, 1.0), (5, 10.0)]; 30];
        let cfg = quick_cfg(1, 6, 5);
        let unit = GibbsTrainer::new(cfg.clone()).fit(&docs_unit);
        let heavy = GibbsTrainer::new(cfg).fit(&docs_heavy);
        assert!(heavy.phi().get(0, 5) > unit.phi().get(0, 5) + 0.2);
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn rejects_out_of_vocab_word() {
        let docs: Vec<WeightedDoc> = vec![vec![(9, 1.0)]];
        GibbsTrainer::new(quick_cfg(2, 6, 1)).fit(&docs);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_non_positive_weight() {
        let docs: Vec<WeightedDoc> = vec![vec![(0, 0.0)]];
        GibbsTrainer::new(quick_cfg(2, 6, 1)).fit(&docs);
    }

    #[test]
    fn single_topic_degenerates_to_smoothed_unigram() {
        let docs = unit_weights(&vec![vec![0, 0, 0, 1]; 20]);
        let model = GibbsTrainer::new(quick_cfg(1, 3, 9)).fit(&docs);
        let phi = model.phi();
        // Counts: w0 = 60, w1 = 20, w2 = 0 with beta = 0.1 smoothing.
        assert!((phi.get(0, 0) - 60.1 / 80.3).abs() < 1e-9);
        assert!((phi.get(0, 2) - 0.1 / 80.3).abs() < 1e-9);
    }

    #[test]
    fn minka_update_shrinks_alpha_on_sparse_mixtures() {
        // Documents drawn from single topics: the optimal symmetric alpha is
        // small. Starting from a deliberately bad alpha = 10, optimization
        // must shrink it, and the resulting model must not fit worse.
        let docs = unit_weights(&planted_docs(150, 8));
        let bad = LdaConfig {
            alpha: Some(10.0),
            optimize_alpha: false,
            ..quick_cfg(2, 6, 21)
        };
        let opt = LdaConfig {
            alpha: Some(10.0),
            optimize_alpha: true,
            ..quick_cfg(2, 6, 21)
        };
        let m_bad = GibbsTrainer::new(bad).fit(&docs);
        let m_opt = GibbsTrainer::new(opt).fit(&docs);
        assert!(
            m_opt.alpha() < 5.0,
            "optimized alpha {} should shrink from 10",
            m_opt.alpha()
        );
        assert_eq!(m_bad.alpha(), 10.0);
        // The optimized model separates the planted blocks at least as well.
        let block_mass = |m: &LdaModel| -> f64 {
            let b0: f64 = (0..3).map(|w| m.phi().get(0, w)).sum();
            b0.max(1.0 - b0)
        };
        assert!(block_mass(&m_opt) + 1e-9 >= block_mass(&m_bad) - 0.05);
    }

    #[test]
    fn minka_update_is_stable_on_degenerate_counts() {
        let n_dk = Matrix::zeros(3, 2); // all-empty documents
        let a = minka_alpha_update(0.5, &n_dk, 2);
        assert_eq!(a, 0.5, "no evidence leaves alpha unchanged");
        // Huge counts stay clamped and finite.
        let big = Matrix::filled(4, 2, 1e6);
        let a2 = minka_alpha_update(50.0, &big, 2);
        assert!(a2.is_finite() && (1e-4..=1e2).contains(&a2));
    }

    #[test]
    fn handles_empty_documents() {
        let mut docs = unit_weights(&planted_docs(20, 4));
        docs.push(Vec::new());
        let model = GibbsTrainer::new(quick_cfg(2, 6, 13)).fit(&docs);
        assert!(model.phi().is_finite());
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_run() {
        use hlm_resilience::{CheckpointStore, MemIo, RunGuard};

        let docs = unit_weights(&planted_docs(30, 3));
        let cfg = quick_cfg(2, 6, 11);
        let full = GibbsTrainer::new(cfg.clone()).fit(&docs);

        // Kill mid-accumulation (after burn-in at 60, before the end at 120).
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let trainer = GibbsTrainer::new(cfg);
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(70));
        let err = trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        assert!(err.is_interruption());

        let ckpt = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
        assert_eq!(ckpt.iteration, 70);
        let resumed = trainer
            .fit_resumable(&docs, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap();
        assert_eq!(resumed.phi(), full.phi(), "resume must be bit-identical");
        assert_eq!(resumed.alpha(), full.alpha());
    }

    #[test]
    fn model_from_checkpoint_requires_phi_samples() {
        use hlm_resilience::{CheckpointStore, MemIo, RunGuard};

        let docs = unit_weights(&planted_docs(30, 3));
        let trainer = GibbsTrainer::new(quick_cfg(2, 6, 11));
        let store = CheckpointStore::new(Box::new(MemIo::new()));

        // Killed during burn-in: no phi samples, rollback must refuse.
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(10));
        trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        let early = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
        assert!(matches!(
            trainer.model_from_checkpoint(&early),
            Err(hlm_resilience::ResilienceError::Mismatch { .. })
        ));

        // Killed after burn-in: rollback produces a valid model.
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(80));
        trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        let late = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
        let model = trainer.model_from_checkpoint(&late).unwrap();
        assert!(model.phi().is_finite());
    }

    #[test]
    fn resume_rejects_mismatched_corpus_or_kind() {
        use hlm_resilience::{Checkpoint, CheckpointStore, MemIo, RunGuard};

        let docs = unit_weights(&planted_docs(30, 3));
        let trainer = GibbsTrainer::new(quick_cfg(2, 6, 11));
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(5));
        trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        let ckpt = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();

        // Different corpus (token count changes).
        let other = unit_weights(&planted_docs(10, 9));
        let err = trainer
            .fit_resumable(&other, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap_err();
        assert!(matches!(
            err,
            hlm_resilience::ResilienceError::Mismatch { .. }
        ));

        // Wrong kind tag.
        let wrong = Checkpoint::new("lstm", ckpt.iteration, ckpt.payload.clone());
        let err = trainer
            .fit_resumable(&docs, &mut TrainControl::noop(), Some(&wrong))
            .unwrap_err();
        assert!(matches!(
            err,
            hlm_resilience::ResilienceError::Mismatch { .. }
        ));
    }
}
