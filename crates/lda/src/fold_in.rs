//! Incremental model update: fold new documents into a trained LDA without
//! a full retrain.
//!
//! The streaming scenario appends companies and grows the vocabulary
//! mid-stream; refitting from scratch on every batch would defeat the point
//! of the replay loop's cheap path. `fold_in` instead treats the trained φ
//! as pseudo-count evidence, Gibbs-samples topic assignments for the *new*
//! documents only, and re-normalizes — O(new tokens · sweeps · K) instead
//! of O(corpus · sweeps · K).
//!
//! The approximation: the base model's topic-word mass is reconstructed as
//! `prior_tokens / K` tokens per topic spread as φ prescribes (the per-topic
//! totals are not stored in [`LdaModel`], so topic sizes are taken as
//! uniform). With new batches a fraction of the base corpus, the resulting
//! model's held-out perplexity lands within the bootstrap CI of a full
//! retrain on the merged corpus — `tests/fold_in_equivalence.rs` pins that
//! claim, mirroring the sampler-equivalence harness.
//!
//! Vocabulary growth: pass `new_vocab_size > model.vocab_size()` and φ gains
//! columns for the launched products. New columns start from β smoothing
//! plus whatever the new documents assign — the only evidence there is.
//!
//! Determinism: the sampler is serial and seeded; the result is a pure
//! function of `(model, new_docs, new_vocab_size, options)` at any thread
//! count.

use crate::model::LdaModel;
use crate::WeightedDoc;
use hlm_linalg::dist::sample_categorical;
use hlm_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Knobs of the fold-in update.
#[derive(Debug, Clone)]
pub struct FoldInOptions {
    /// Gibbs sweeps over the new documents' tokens.
    pub n_sweeps: usize,
    /// Effective token mass of the base model — normally the total token
    /// weight of the corpus it was trained on. Larger values make the fold
    /// more conservative (φ moves less toward the new documents).
    pub prior_tokens: f64,
    /// RNG seed for the fold-in sampler.
    pub seed: u64,
}

impl Default for FoldInOptions {
    fn default() -> Self {
        FoldInOptions {
            n_sweeps: 20,
            prior_tokens: 10_000.0,
            seed: 0,
        }
    }
}

/// Folds `new_docs` into `model`, returning the updated model.
///
/// # Panics
/// Panics if `n_sweeps == 0`, `prior_tokens <= 0`, `new_vocab_size` shrinks
/// the vocabulary, or a document addresses a word `>= new_vocab_size`.
pub fn fold_in(
    model: &LdaModel,
    new_docs: &[WeightedDoc],
    new_vocab_size: usize,
    opts: &FoldInOptions,
) -> LdaModel {
    assert!(opts.n_sweeps > 0, "fold-in needs at least one sweep");
    assert!(opts.prior_tokens > 0.0, "prior token mass must be positive");
    let k = model.n_topics();
    let m_old = model.vocab_size();
    assert!(
        new_vocab_size >= m_old,
        "vocabulary cannot shrink: {new_vocab_size} < {m_old}"
    );
    let m = new_vocab_size;
    let alpha = model.alpha();
    let beta = model.beta();

    // φ as pseudo-counts: prior_tokens/K tokens per topic, spread as φ.
    let topic_mass = opts.prior_tokens / k as f64;
    let mut n_kw = Matrix::zeros(k, m);
    for t in 0..k {
        for w in 0..m_old {
            n_kw.set(t, w, model.phi().get(t, w) * topic_mass);
        }
    }
    let mut n_k = vec![topic_mass; k];

    // Flatten the new documents' tokens.
    let mut tok_doc = Vec::new();
    let mut tok_word = Vec::new();
    let mut tok_weight = Vec::new();
    for (d, doc) in new_docs.iter().enumerate() {
        for &(w, weight) in doc {
            assert!(w < m, "word {w} outside the grown vocabulary of {m}");
            tok_doc.push(d);
            tok_word.push(w);
            tok_weight.push(weight);
        }
    }

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut n_dk = vec![vec![0.0f64; k]; new_docs.len()];
    let mut z = vec![0usize; tok_word.len()];
    let beta_sum = beta * m as f64;
    let mut weights = vec![0.0f64; k];

    // Initialize by sampling from the word's topic profile under the prior
    // counts alone.
    for i in 0..tok_word.len() {
        let w = tok_word[i];
        for (t, wt) in weights.iter_mut().enumerate() {
            *wt = (n_kw.get(t, w) + beta) / (n_k[t] + beta_sum);
        }
        let t = sample_categorical(&mut rng, &weights);
        z[i] = t;
        let wgt = tok_weight[i];
        n_dk[tok_doc[i]][t] += wgt;
        n_kw.add_at(t, w, wgt);
        n_k[t] += wgt;
    }

    // Collapsed Gibbs over the new tokens only (φ's pseudo-counts stay put).
    for _sweep in 0..opts.n_sweeps {
        for i in 0..tok_word.len() {
            let (d, w, wgt) = (tok_doc[i], tok_word[i], tok_weight[i]);
            let old = z[i];
            n_dk[d][old] -= wgt;
            n_kw.add_at(old, w, -wgt);
            n_k[old] -= wgt;
            for (t, wt) in weights.iter_mut().enumerate() {
                *wt = (n_dk[d][t] + alpha) * (n_kw.get(t, w) + beta) / (n_k[t] + beta_sum);
            }
            let t = sample_categorical(&mut rng, &weights);
            z[i] = t;
            n_dk[d][t] += wgt;
            n_kw.add_at(t, w, wgt);
            n_k[t] += wgt;
        }
    }

    // New φ: smoothed, normalized counts (pseudo-mass + new assignments).
    let mut phi = Matrix::zeros(k, m);
    for (t, &total) in n_k.iter().enumerate() {
        let denom = total + beta_sum;
        for w in 0..m {
            phi.set(t, w, (n_kw.get(t, w) + beta) / denom);
        }
    }
    phi.normalize_rows();
    LdaModel::new(phi, alpha, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::GibbsTrainer;
    use crate::model::LdaConfig;
    use crate::unit_weights;

    fn two_topic_model() -> LdaModel {
        let phi = Matrix::from_rows(&[&[0.4, 0.4, 0.1, 0.1], &[0.1, 0.1, 0.4, 0.4]]);
        LdaModel::new(phi, 0.1, 0.05)
    }

    #[test]
    fn no_docs_reproduces_phi_up_to_smoothing() {
        let model = two_topic_model();
        let out = fold_in(&model, &[], 4, &FoldInOptions::default());
        for t in 0..2 {
            for w in 0..4 {
                let a = model.phi().get(t, w);
                let b = out.phi().get(t, w);
                assert!((a - b).abs() < 1e-3, "phi[{t}][{w}] {a} vs {b}");
            }
        }
    }

    #[test]
    fn fold_in_is_deterministic() {
        let model = two_topic_model();
        let docs = unit_weights(&[vec![0, 1], vec![2, 3], vec![0, 3]]);
        let opts = FoldInOptions {
            prior_tokens: 100.0,
            ..Default::default()
        };
        let a = fold_in(&model, &docs, 4, &opts);
        let b = fold_in(&model, &docs, 4, &opts);
        assert_eq!(a.phi().as_slice(), b.phi().as_slice());
    }

    #[test]
    fn new_vocab_columns_receive_mass_from_new_docs() {
        let model = two_topic_model();
        // Word 4 (new) co-occurs with topic-0 words.
        let docs = unit_weights(&vec![vec![0, 1, 4]; 30]);
        let out = fold_in(
            &model,
            &docs,
            5,
            &FoldInOptions {
                prior_tokens: 50.0,
                ..Default::default()
            },
        );
        assert_eq!(out.vocab_size(), 5);
        // The new word's mass concentrates in topic 0 (its co-occurrence
        // partner), and every row still sums to 1.
        assert!(
            out.phi().get(0, 4) > 3.0 * out.phi().get(1, 4),
            "topic 0 should own the new word: {} vs {}",
            out.phi().get(0, 4),
            out.phi().get(1, 4)
        );
        for t in 0..2 {
            let s: f64 = (0..5).map(|w| out.phi().get(t, w)).sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn heavier_prior_moves_phi_less() {
        let model = two_topic_model();
        // Documents that contradict the model: word 0 with word 3.
        let docs = unit_weights(&vec![vec![0, 3]; 50]);
        let drift = |prior: f64| {
            let out = fold_in(
                &model,
                &docs,
                4,
                &FoldInOptions {
                    prior_tokens: prior,
                    ..Default::default()
                },
            );
            let mut d = 0.0;
            for t in 0..2 {
                for w in 0..4 {
                    d += (out.phi().get(t, w) - model.phi().get(t, w)).abs();
                }
            }
            d
        };
        assert!(
            drift(10_000.0) < drift(100.0),
            "a heavier prior must damp the update"
        );
    }

    #[test]
    fn fold_in_approximates_full_retrain_on_planted_data() {
        // Train on 80% of planted two-topic documents, fold in the rest;
        // the folded model must classify the new word distributions about
        // as well as a full retrain (coarse check here; the statistical
        // equivalence claim lives in tests/fold_in_equivalence.rs).
        let gen_docs = |lo: usize, hi: usize| -> Vec<Vec<usize>> {
            (lo..hi)
                .map(|i| {
                    if i % 2 == 0 {
                        vec![0, 1, 2, (i / 2) % 3]
                    } else {
                        vec![6, 7, 8, 6 + (i / 2) % 3]
                    }
                })
                .collect()
        };
        let base = unit_weights(&gen_docs(0, 160));
        let extra = unit_weights(&gen_docs(160, 200));
        let cfg = LdaConfig {
            n_topics: 2,
            vocab_size: 9,
            n_iters: 120,
            burn_in: 60,
            sample_lag: 5,
            seed: 11,
            beta: 0.1,
            ..Default::default()
        };
        let model = GibbsTrainer::new(cfg).fit(&base);
        let folded = fold_in(
            &model,
            &extra,
            9,
            &FoldInOptions {
                prior_tokens: base.iter().map(|d| d.len() as f64).sum(),
                ..Default::default()
            },
        );
        let test = unit_weights(&gen_docs(200, 240));
        let ppl_folded = crate::document_completion_perplexity(&folded, &test);
        let ppl_base = crate::document_completion_perplexity(&model, &test);
        assert!(ppl_folded.is_finite());
        // The fold must not damage the model on in-distribution data.
        assert!(
            ppl_folded < ppl_base * 1.1,
            "folded {ppl_folded} vs base {ppl_base}"
        );
    }
}
