//! Out-of-core AD-LDA: collapsed Gibbs over an on-disk sharded corpus.
//!
//! [`ShardedGibbsTrainer`] reproduces [`GibbsTrainer`](crate::GibbsTrainer)
//! **bit for bit** while holding only one shard of documents in memory at a
//! time. The correspondence rests on four invariants:
//!
//! 1. **Init.** Token topics are drawn from one sequential RNG in global
//!    document order; visiting shards in order consumes the identical
//!    stream.
//! 2. **Chunk streams.** Shard spans are multiples of the sweep's document
//!    chunk, so a shard-local chunk plus the shard's global chunk offset
//!    (`SweepCtx::chunk_base`) addresses exactly the documents — and the
//!    `(seed, sweep, chunk)` RNG stream — of the whole-corpus sweep.
//! 3. **Ordered merge.** Every chunk samples against the immutable
//!    sweep-start snapshot; per-chunk count deltas are folded into an
//!    accumulator in global chunk order — the same additions, on the same
//!    values, in the same order as the in-memory merge (hlm-par's
//!    ordered-reduction contract).
//! 4. **Exact spill.** Between visits, a shard's token assignments and
//!    doc-topic rows live in a checksummed binary spill file that stores the
//!    `f64` bits verbatim, so no floating-point value is ever re-derived.
//!
//! Checkpoints are per *shard step* (one shard of one sweep): they carry the
//! small global tables, while the large per-shard state stays in the spill
//! files, versioned by completed sweeps so a kill at any step boundary
//! resumes bit-identically.

use crate::gibbs::{
    accumulate_phi_row, build_views, delta_stride, gibbs_log_likelihood, merge_chunk_delta,
    minka_alpha_accumulate, minka_alpha_finish, sampler_counter, sweep_budget, sweep_chunk,
    SweepCtx, SweepScratch, WordAliasTables, DOC_CHUNK,
};
use crate::model::{LdaConfig, LdaModel, SamplerChoice};
use crate::WeightedDoc;
use hlm_corpus::shard::fnv1a;
use hlm_linalg::Matrix;
use hlm_par::Pool;
use hlm_resilience::{Checkpoint, ResilienceError, TrainControl};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// A corpus of weighted documents arriving in ordered shards.
///
/// Contract: shard spans partition `0..n_docs()` contiguously and in order,
/// and every span except the last is a multiple of the Gibbs document chunk
/// (64; [`hlm_corpus::shard::SHARD_ALIGN`] keeps on-disk stores aligned).
/// `shard_docs(s)` must return the same documents every time it is called —
/// training re-reads each shard once per pass.
pub trait DocShardSource {
    /// Total number of documents.
    fn n_docs(&self) -> usize;
    /// Number of shards.
    fn n_shards(&self) -> usize;
    /// Half-open global document range of shard `s`.
    fn shard_span(&self, s: usize) -> (usize, usize);
    /// The documents of shard `s`, in global order.
    fn shard_docs(&self, s: usize) -> Vec<WeightedDoc>;
}

/// An in-memory document slice exposed as aligned shards — the reference
/// implementation the streaming path is tested against.
pub struct MemDocShards<'a> {
    docs: &'a [WeightedDoc],
    shard_size: usize,
}

impl<'a> MemDocShards<'a> {
    /// Splits `docs` into `n_shards` near-equal aligned shards.
    pub fn new(docs: &'a [WeightedDoc], n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        let raw = docs.len().div_ceil(n_shards).max(1);
        Self::with_shard_size(docs, raw.div_ceil(DOC_CHUNK) * DOC_CHUNK)
    }

    /// Splits `docs` into shards of exactly `shard_size` documents (last one
    /// short). `shard_size` must be a positive multiple of 64.
    pub fn with_shard_size(docs: &'a [WeightedDoc], shard_size: usize) -> Self {
        assert!(
            shard_size > 0 && shard_size.is_multiple_of(DOC_CHUNK),
            "shard_size must be a positive multiple of {DOC_CHUNK}"
        );
        MemDocShards { docs, shard_size }
    }
}

impl DocShardSource for MemDocShards<'_> {
    fn n_docs(&self) -> usize {
        self.docs.len()
    }

    fn n_shards(&self) -> usize {
        self.docs.len().div_ceil(self.shard_size).max(1)
    }

    fn shard_span(&self, s: usize) -> (usize, usize) {
        let lo = s * self.shard_size;
        (
            lo.min(self.docs.len()),
            (lo + self.shard_size).min(self.docs.len()),
        )
    }

    fn shard_docs(&self, s: usize) -> Vec<WeightedDoc> {
        let (lo, hi) = self.shard_span(s);
        self.docs[lo..hi].to_vec()
    }
}

/// Checkpoint kind tag for sharded collapsed-Gibbs runs.
pub const SHARDED_GIBBS_CHECKPOINT_KIND: &str = "lda-gibbs-sharded";

/// Global state at a shard-step boundary. The per-shard token assignments
/// and doc-topic rows are *not* here — they live in versioned spill files
/// under the trainer's work directory; `step` pins which version each shard
/// must hold.
#[derive(Serialize, Deserialize)]
struct ShardedGibbsState {
    /// Shard steps completed: `sweep * n_shards + shards_done_in_sweep`.
    step: u64,
    n_shards: u64,
    n_docs: u64,
    alpha: f64,
    /// Sweep-start snapshot tables (the tables every chunk samples against).
    n_kw: Matrix,
    n_k: Vec<f64>,
    /// Merge accumulator: snapshot plus the deltas of the shards already
    /// processed this sweep.
    acc_kw: Matrix,
    acc_k: Vec<f64>,
    /// Partial Minka-update sums for a mid-sweep kill on an alpha-update
    /// sweep.
    minka_num: f64,
    minka_den: f64,
    phi_acc: Matrix,
    n_samples: u64,
}

/// Magic bytes opening every spill file.
const SPILL_MAGIC: &[u8; 8] = b"HLMGSPL1";

/// Out-of-core collapsed Gibbs trainer. See the module docs for the
/// bit-identity argument; `work_dir` holds the per-shard spill files and
/// must survive (together with the checkpoint store) for kill/resume.
#[derive(Debug, Clone)]
pub struct ShardedGibbsTrainer {
    cfg: LdaConfig,
    work_dir: PathBuf,
}

impl ShardedGibbsTrainer {
    /// Creates a trainer spilling per-shard state under `work_dir`.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent.
    pub fn new(cfg: LdaConfig, work_dir: impl Into<PathBuf>) -> Self {
        cfg.validate();
        ShardedGibbsTrainer {
            cfg,
            work_dir: work_dir.into(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LdaConfig {
        &self.cfg
    }

    /// Trains on a sharded source and returns the estimated model —
    /// bit-identical to `GibbsTrainer::fit` on the concatenated documents.
    ///
    /// # Panics
    /// Panics on malformed documents or an I/O failure in the work
    /// directory.
    pub fn fit<S: DocShardSource + ?Sized>(&self, source: &S) -> LdaModel {
        self.fit_resumable(source, &mut TrainControl::noop(), None)
            .expect("noop control cannot interrupt training")
    }

    /// Like [`fit`](Self::fit), but consults `ctrl` at every shard-step
    /// boundary (one shard of one sweep — so watchdog iterations count shard
    /// steps, not sweeps) and optionally resumes from a checkpoint written
    /// by an earlier run over the same source and work directory.
    pub fn fit_resumable<S: DocShardSource + ?Sized>(
        &self,
        source: &S,
        ctrl: &mut TrainControl,
        resume: Option<&Checkpoint>,
    ) -> Result<LdaModel, ResilienceError> {
        let k = self.cfg.n_topics;
        let m = self.cfg.vocab_size;
        let beta = self.cfg.beta;
        let beta_sum = beta * m as f64;
        let kind = self.cfg.sampler.resolve(k);
        let n_docs = source.n_docs();
        let n_shards = source.n_shards();
        validate_spans(source);

        std::fs::create_dir_all(&self.work_dir)
            .map_err(|e| ResilienceError::io("create work dir", e))?;

        let mut alpha = self.cfg.effective_alpha();
        let mut n_kw = Matrix::zeros(k, m);
        let mut n_k = vec![0.0f64; k];
        let mut acc_kw = Matrix::zeros(k, m);
        let mut acc_k = vec![0.0f64; k];
        let mut phi_acc = Matrix::zeros(k, m);
        let mut n_samples = 0u64;
        let mut minka_num = 0.0;
        let mut minka_den = 0.0;
        let mut start_step = 0u64;

        if let Some(ckpt) = resume {
            let state = decode_state(ckpt, n_docs, n_shards, k, m)?;
            start_step = state.step;
            alpha = state.alpha;
            n_kw = state.n_kw;
            n_k = state.n_k;
            acc_kw = state.acc_kw;
            acc_k = state.acc_k;
            minka_num = state.minka_num;
            minka_den = state.minka_den;
            phi_acc = state.phi_acc;
            n_samples = state.n_samples;
            // Every shard must hold the spill version the checkpoint
            // expects: `sweep + 1` for shards already processed this sweep,
            // `sweep` for the rest.
            for s in 0..n_shards {
                let v = expected_version(start_step, n_shards, s);
                if !self.spill_path(s, v).is_file() {
                    return Err(ResilienceError::Mismatch {
                        reason: format!(
                            "work dir lacks spill version {v} for shard {s}; \
                             cannot resume from step {start_step}"
                        ),
                    });
                }
            }
        } else {
            // Fresh run: discard stale spills, then draw the initial topic
            // assignments from one sequential RNG in global document order —
            // the same stream the in-memory sampler consumes.
            self.clear_spills()?;
            let mut rng = StdRng::seed_from_u64(self.cfg.seed);
            for s in 0..n_shards {
                let docs = source.shard_docs(s);
                validate_docs(&docs, m);
                let mut tok_z: Vec<u16> = Vec::new();
                let mut n_dk = Matrix::zeros(docs.len(), k);
                for (d, doc) in docs.iter().enumerate() {
                    for &(w, weight) in doc {
                        let z = rng.gen_range(0..k);
                        tok_z.push(z as u16);
                        n_dk.add_at(d, z, weight);
                        n_kw.add_at(z, w, weight);
                        n_k[z] += weight;
                    }
                }
                self.write_spill(s, 0, &tok_z, &n_dk)?;
            }
        }

        let pool = Pool::global();
        let rec = hlm_obs::global();
        // The word alias tables are a pure function of the sweep-start
        // snapshot `(n_kw, n_k)`, so rebuilding them at sweep start (or on a
        // mid-sweep resume, from the checkpointed snapshot) reproduces the
        // in-memory trainer's per-sweep tables bit for bit.
        let mut alias_tables = (kind == SamplerChoice::AliasMh).then(|| WordAliasTables::new(k, m));
        let mut sweep_mh_proposed = 0u64;
        let mut sweep_mh_accepted = 0u64;
        let total_steps = self.cfg.n_iters as u64 * n_shards as u64;
        // Spill versions strictly below this are already pruned, per shard.
        let mut retained_lo: Vec<u64> = (0..n_shards)
            .map(|s| expected_version(start_step, n_shards, s))
            .collect();
        let mut last_ckpt_step = start_step;
        let mut saves_seen = ctrl.saves();
        // Until some checkpoint exists there is nothing to resume from, so
        // only the newest spill version matters.
        let mut have_ckpt = resume.is_some();

        for step in start_step..total_steps {
            ctrl.begin_iteration(step)?;
            let sweep = step / n_shards as u64;
            let s = (step % n_shards as u64) as usize;
            if s == 0 {
                // Sweep start: the accumulator begins at the snapshot.
                acc_kw.copy_from(&n_kw);
                acc_k.copy_from_slice(&n_k);
                minka_num = 0.0;
                minka_den = 0.0;
            }
            if s == 0 || step == start_step {
                rec.add(sampler_counter(kind), 1);
                sweep_mh_proposed = 0;
                sweep_mh_accepted = 0;
                if let Some(tables) = alias_tables.as_mut() {
                    tables.rebuild(&n_kw, &n_k, beta, beta_sum);
                }
            }
            let sweep_t0 = rec.is_enabled().then(std::time::Instant::now);

            let docs = source.shard_docs(s);
            validate_docs(&docs, m);
            let (span_lo, span_hi) = source.shard_span(s);
            debug_assert_eq!(span_hi - span_lo, docs.len());
            let (mut tok_z, mut n_dk) = self.read_spill(s, sweep, &docs, k)?;

            // Flat token arrays, local to the shard; chunk_base lifts local
            // chunk ids to global ones.
            let shard_tokens = tok_z.len();
            let mut tok_doc: Vec<u32> = Vec::with_capacity(shard_tokens);
            let mut tok_word: Vec<u32> = Vec::with_capacity(shard_tokens);
            let mut tok_weight: Vec<f64> = Vec::with_capacity(shard_tokens);
            let mut doc_start = Vec::with_capacity(docs.len() + 1);
            doc_start.push(0usize);
            for (d, doc) in docs.iter().enumerate() {
                for &(w, weight) in doc {
                    tok_doc.push(d as u32);
                    tok_word.push(w as u32);
                    tok_weight.push(weight);
                }
                doc_start.push(doc_start.last().unwrap() + doc.len());
            }

            let ctx = SweepCtx {
                tok_doc: &tok_doc,
                tok_word: &tok_word,
                tok_weight: &tok_weight,
                n_kw: &n_kw,
                n_k: &n_k,
                k,
                m,
                alpha,
                beta,
                beta_sum,
                seed: self.cfg.seed,
                sweep,
                chunk_base: span_lo / DOC_CHUNK,
                kind,
                alias: alias_tables.as_ref(),
            };
            let stride = delta_stride(kind, k, m);
            let n_chunks = hlm_par::chunk_count(docs.len(), DOC_CHUNK);
            let mut delta_buf = vec![0.0f64; n_chunks * stride];
            let mut views = build_views(
                &mut tok_z,
                n_dk.as_mut_slice(),
                &mut delta_buf,
                &doc_start,
                docs.len(),
                k,
                stride,
            );
            hlm_par::par_for_each_scratch(
                &pool,
                sweep_budget(shard_tokens, k, kind),
                &mut views,
                || SweepScratch::new(k, m, kind),
                |scratch, c, view| sweep_chunk(scratch, &ctx, c, view),
            );
            for view in &views {
                sweep_mh_proposed += view.mh_proposed;
                sweep_mh_accepted += view.mh_accepted;
            }
            drop(views);
            for chunk_delta in delta_buf.chunks_exact(stride) {
                merge_chunk_delta(kind, chunk_delta, acc_kw.as_mut_slice(), &mut acc_k, k, m);
            }

            let alpha_sweep =
                self.cfg.optimize_alpha && (sweep as usize) < self.cfg.burn_in && sweep % 10 == 9;
            if alpha_sweep {
                // The shard's doc-topic rows are final for this sweep, so
                // the Minka sums accumulate shard by shard in global
                // document order — the order the in-memory update uses.
                minka_alpha_accumulate(
                    alpha,
                    k,
                    (0..n_dk.rows()).map(|d| n_dk.row(d)),
                    &mut minka_num,
                    &mut minka_den,
                );
            }

            self.write_spill(s, sweep + 1, &tok_z, &n_dk)?;
            drop(tok_z);
            drop(n_dk);

            if s == n_shards - 1 {
                // Sweep end: publish the merged tables and run the
                // end-of-sweep bookkeeping exactly as the in-memory sampler
                // does.
                n_kw.copy_from(&acc_kw);
                n_k.copy_from_slice(&acc_k);
                if alpha_sweep {
                    alpha = minka_alpha_finish(alpha, k, minka_num, minka_den);
                }
                let iter = sweep as usize;
                let past_burn_in = iter >= self.cfg.burn_in;
                let on_lag =
                    (iter - self.cfg.burn_in.min(iter)).is_multiple_of(self.cfg.sample_lag);
                if past_burn_in && on_lag {
                    for (t, &nk) in n_k.iter().enumerate().take(k) {
                        let phi_row = &mut phi_acc.as_mut_slice()[t * m..(t + 1) * m];
                        accumulate_phi_row(phi_row, n_kw.row(t), nk, beta, beta_sum);
                    }
                    n_samples += 1;
                }
                if kind == SamplerChoice::AliasMh {
                    rec.add("lda.mh.proposed", sweep_mh_proposed);
                    rec.add("lda.mh.accepted", sweep_mh_accepted);
                    if rec.is_enabled() && sweep_mh_proposed > 0 {
                        rec.trace(
                            "lda.mh.acceptance_rate",
                            sweep,
                            sweep_mh_accepted as f64 / sweep_mh_proposed as f64,
                        );
                    }
                }
                if let Some(t0) = sweep_t0 {
                    rec.observe("lda.gibbs.sweep_seconds", t0.elapsed().as_secs_f64());
                    rec.add("lda.gibbs.sweeps", 1);
                    rec.trace(
                        "lda.gibbs.log_likelihood",
                        sweep,
                        gibbs_log_likelihood(&n_kw, &n_k, beta),
                    );
                }
                ctrl.check_metric(sweep, "topic mass", n_k.iter().sum())?;
            } else if let Some(t0) = sweep_t0 {
                rec.observe("lda.gibbs.shard_seconds", t0.elapsed().as_secs_f64());
            }

            ctrl.checkpoint(step + 1, || {
                encode_state(&ShardedGibbsState {
                    step: step + 1,
                    n_shards: n_shards as u64,
                    n_docs: n_docs as u64,
                    alpha,
                    n_kw: n_kw.clone(),
                    n_k: n_k.clone(),
                    acc_kw: acc_kw.clone(),
                    acc_k: acc_k.clone(),
                    minka_num,
                    minka_den,
                    phi_acc: phi_acc.clone(),
                    n_samples,
                })
            });
            if ctrl.saves() > saves_seen {
                saves_seen = ctrl.saves();
                last_ckpt_step = step + 1;
                have_ckpt = true;
            }
            // Prune spill versions no resume-from-latest-checkpoint can
            // need any more.
            let keep = if have_ckpt {
                expected_version(last_ckpt_step, n_shards, s)
            } else {
                sweep + 1
            };
            for v in retained_lo[s]..keep {
                let _ = std::fs::remove_file(self.spill_path(s, v));
            }
            retained_lo[s] = retained_lo[s].max(keep);
        }

        assert!(
            n_samples > 0,
            "no phi samples collected; check burn_in / n_iters"
        );
        phi_acc.scale_mut(1.0 / n_samples as f64);
        phi_acc.normalize_rows();
        Ok(LdaModel::new(phi_acc, alpha, beta))
    }

    /// Materializes a model directly from a checkpoint — the rollback path.
    /// Fails if the checkpoint predates burn-in (no phi samples yet).
    pub fn model_from_checkpoint(&self, ckpt: &Checkpoint) -> Result<LdaModel, ResilienceError> {
        if ckpt.kind != SHARDED_GIBBS_CHECKPOINT_KIND {
            return Err(ResilienceError::Mismatch {
                reason: format!("kind {} != {SHARDED_GIBBS_CHECKPOINT_KIND}", ckpt.kind),
            });
        }
        let state: ShardedGibbsState = parse_payload(&ckpt.payload)?;
        if state.n_samples == 0 {
            return Err(ResilienceError::Mismatch {
                reason: "checkpoint predates burn-in: no phi samples collected".to_string(),
            });
        }
        let mut phi = state.phi_acc;
        phi.scale_mut(1.0 / state.n_samples as f64);
        phi.normalize_rows();
        Ok(LdaModel::new(phi, state.alpha, self.cfg.beta))
    }

    fn spill_path(&self, shard: usize, version: u64) -> PathBuf {
        self.work_dir
            .join(format!("gibbs_shard_{shard:05}_v{version}.bin"))
    }

    /// Removes every spill file this trainer could have written.
    fn clear_spills(&self) -> Result<(), ResilienceError> {
        let entries = std::fs::read_dir(&self.work_dir)
            .map_err(|e| ResilienceError::io("read work dir", e))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("gibbs_shard_") && name.ends_with(".bin") {
                std::fs::remove_file(entry.path())
                    .map_err(|e| ResilienceError::io("remove stale spill", e))?;
            }
        }
        Ok(())
    }

    /// Writes a shard's spill atomically (temp file + rename): magic, shard,
    /// version, counts, raw `u16` assignments, raw `f64` doc-topic bits, and
    /// an FNV-1a trailer over everything before it.
    fn write_spill(
        &self,
        shard: usize,
        version: u64,
        tok_z: &[u16],
        n_dk: &Matrix,
    ) -> Result<(), ResilienceError> {
        let mut bytes = Vec::with_capacity(48 + tok_z.len() * 2 + n_dk.as_slice().len() * 8 + 8);
        bytes.extend_from_slice(SPILL_MAGIC);
        bytes.extend_from_slice(&(shard as u64).to_le_bytes());
        bytes.extend_from_slice(&version.to_le_bytes());
        bytes.extend_from_slice(&(n_dk.rows() as u64).to_le_bytes());
        bytes.extend_from_slice(&(tok_z.len() as u64).to_le_bytes());
        for &z in tok_z {
            bytes.extend_from_slice(&z.to_le_bytes());
        }
        for &v in n_dk.as_slice() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let sum = fnv1a(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        let path = self.spill_path(shard, version);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| ResilienceError::io("write spill", e))?;
        std::fs::rename(&tmp, &path).map_err(|e| ResilienceError::io("commit spill", e))?;
        Ok(())
    }

    /// Reads a shard's spill at an exact version, verifying the checksum and
    /// that the shapes match the freshly loaded documents.
    fn read_spill(
        &self,
        shard: usize,
        version: u64,
        docs: &[WeightedDoc],
        k: usize,
    ) -> Result<(Vec<u16>, Matrix), ResilienceError> {
        let path = self.spill_path(shard, version);
        let bytes = std::fs::read(&path).map_err(|e| ResilienceError::io("read spill", e))?;
        let fail = |what: &str| {
            Err(ResilienceError::corrupt(format!(
                "spill {}: {what}",
                path.display()
            )))
        };
        if bytes.len() < 48 + 8 {
            return fail("truncated");
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        if fnv1a(body) != u64::from_le_bytes(trailer.try_into().unwrap()) {
            return fail("checksum mismatch");
        }
        if &body[..8] != SPILL_MAGIC {
            return fail("bad magic");
        }
        let u64_at = |o: usize| u64::from_le_bytes(body[o..o + 8].try_into().unwrap());
        let n_tokens_expected: usize = docs.iter().map(Vec::len).sum();
        if u64_at(8) != shard as u64
            || u64_at(16) != version
            || u64_at(24) != docs.len() as u64
            || u64_at(32) != n_tokens_expected as u64
        {
            return fail("header does not match the shard's documents");
        }
        let n_tokens = u64_at(32) as usize;
        let need = 40 + n_tokens * 2 + docs.len() * k * 8;
        if body.len() != need {
            return fail("length does not match header");
        }
        let mut tok_z = Vec::with_capacity(n_tokens);
        let mut o = 40;
        for _ in 0..n_tokens {
            tok_z.push(u16::from_le_bytes(body[o..o + 2].try_into().unwrap()));
            o += 2;
        }
        let mut dk = Vec::with_capacity(docs.len() * k);
        for _ in 0..docs.len() * k {
            dk.push(f64::from_bits(u64::from_le_bytes(
                body[o..o + 8].try_into().unwrap(),
            )));
            o += 8;
        }
        Ok((tok_z, Matrix::from_vec(docs.len(), k, dk)))
    }
}

/// The spill version every shard must hold when `step` shard-steps are done:
/// `sweep + 1` for shards already processed in the current sweep, `sweep`
/// otherwise.
fn expected_version(step: u64, n_shards: usize, shard: usize) -> u64 {
    let sweep = step / n_shards as u64;
    let done = step % n_shards as u64;
    sweep + u64::from((shard as u64) < done)
}

fn validate_spans<S: DocShardSource + ?Sized>(source: &S) {
    let n_shards = source.n_shards();
    assert!(n_shards > 0, "source must expose at least one shard");
    let mut expect_lo = 0;
    for s in 0..n_shards {
        let (lo, hi) = source.shard_span(s);
        assert_eq!(lo, expect_lo, "shard {s} does not continue the span");
        assert!(hi >= lo, "shard {s} has a negative span");
        assert!(
            s == n_shards - 1 || (hi - lo) % DOC_CHUNK == 0,
            "interior shard {s} span of {} is not a multiple of {DOC_CHUNK}",
            hi - lo
        );
        expect_lo = hi;
    }
    assert_eq!(expect_lo, source.n_docs(), "spans must cover all documents");
}

fn validate_docs(docs: &[WeightedDoc], m: usize) {
    for doc in docs {
        for &(w, weight) in doc {
            assert!(w < m, "word {w} outside vocabulary of {m}");
            assert!(
                weight.is_finite() && weight > 0.0,
                "token weight must be positive, got {weight}"
            );
        }
    }
}

fn encode_state(state: &ShardedGibbsState) -> Vec<u8> {
    serde_json::to_string(state)
        .expect("sharded gibbs state serializes")
        .into_bytes()
}

fn parse_payload(payload: &[u8]) -> Result<ShardedGibbsState, ResilienceError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ResilienceError::corrupt("sharded gibbs payload is not UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| ResilienceError::corrupt(format!("sharded gibbs payload does not parse: {e}")))
}

fn decode_state(
    ckpt: &Checkpoint,
    n_docs: usize,
    n_shards: usize,
    k: usize,
    m: usize,
) -> Result<ShardedGibbsState, ResilienceError> {
    if ckpt.kind != SHARDED_GIBBS_CHECKPOINT_KIND {
        return Err(ResilienceError::Mismatch {
            reason: format!("kind {} != {SHARDED_GIBBS_CHECKPOINT_KIND}", ckpt.kind),
        });
    }
    let state = parse_payload(&ckpt.payload)?;
    if state.n_docs != n_docs as u64 || state.n_shards != n_shards as u64 {
        return Err(ResilienceError::Mismatch {
            reason: format!(
                "checkpoint is for {} docs in {} shards, source has {n_docs} in {n_shards}",
                state.n_docs, state.n_shards
            ),
        });
    }
    if state.n_kw.rows() != k
        || state.n_kw.cols() != m
        || state.acc_kw.rows() != k
        || state.acc_kw.cols() != m
        || state.n_k.len() != k
        || state.acc_k.len() != k
        || state.phi_acc.rows() != k
        || state.phi_acc.cols() != m
    {
        return Err(ResilienceError::Mismatch {
            reason: "checkpoint count-table shapes do not match the configuration".to_string(),
        });
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::GibbsTrainer;
    use crate::unit_weights;
    use hlm_resilience::{CheckpointStore, MemIo, RunGuard};

    fn planted_docs(n_docs: usize, seed: u64) -> Vec<WeightedDoc> {
        let mut rng = StdRng::seed_from_u64(seed);
        unit_weights(
            &(0..n_docs)
                .map(|i| {
                    let base = if i % 2 == 0 { 0usize } else { 3 };
                    (0..8).map(|_| base + rng.gen_range(0..3)).collect()
                })
                .collect::<Vec<_>>(),
        )
    }

    fn cfg(n_topics: usize, seed: u64) -> LdaConfig {
        LdaConfig {
            n_topics,
            vocab_size: 6,
            n_iters: 40,
            burn_in: 20,
            sample_lag: 5,
            seed,
            alpha: Some(0.5),
            beta: 0.1,
            optimize_alpha: true,
            ..Default::default()
        }
    }

    fn work_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hlm_sharded_gibbs_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sharded_fit_is_bit_identical_to_in_memory_at_any_shard_count() {
        let docs = planted_docs(200, 1);
        let full = GibbsTrainer::new(cfg(2, 7)).fit(&docs);
        for n_shards in [1, 2, 4] {
            let dir = work_dir(&format!("mem_{n_shards}"));
            let trainer = ShardedGibbsTrainer::new(cfg(2, 7), &dir);
            let model = trainer.fit(&MemDocShards::new(&docs, n_shards));
            assert_eq!(model.phi(), full.phi(), "n_shards={n_shards}");
            assert_eq!(model.alpha(), full.alpha(), "n_shards={n_shards}");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn sharded_sparse_sampler_and_weighted_tokens_match_in_memory() {
        // k > 16 exercises the SparseLDA bucket path; fractional weights
        // exercise the residue clamps.
        let mut rng = StdRng::seed_from_u64(91);
        let docs: Vec<WeightedDoc> = (0..150)
            .map(|_| {
                (0..10)
                    .map(|_| (rng.gen_range(0..6), 0.25 + rng.gen::<f64>()))
                    .collect()
            })
            .collect();
        let c = cfg(24, 23);
        let full = GibbsTrainer::new(c.clone()).fit(&docs);
        let dir = work_dir("sparse");
        let model = ShardedGibbsTrainer::new(c, &dir).fit(&MemDocShards::new(&docs, 3));
        assert_eq!(model.phi(), full.phi());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_mid_pass_and_resume_is_bit_identical() {
        let docs = planted_docs(200, 2);
        let c = cfg(2, 11);
        let full = GibbsTrainer::new(c.clone()).fit(&docs);
        let source = MemDocShards::new(&docs, 4);
        let n_shards = source.n_shards();

        let dir = work_dir("resume");
        let trainer = ShardedGibbsTrainer::new(c, &dir);
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        // Abort mid-sweep: step 90 is sweep 22 (past burn-in), shard 2 of 4.
        let abort_step = 22 * n_shards as u64 + 2;
        let mut ctrl = TrainControl::new(SHARDED_GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(abort_step));
        let err = trainer.fit_resumable(&source, &mut ctrl, None).unwrap_err();
        assert!(err.is_interruption());

        let ckpt = store
            .latest_good(SHARDED_GIBBS_CHECKPOINT_KIND)
            .unwrap()
            .unwrap();
        assert_eq!(ckpt.iteration, abort_step);
        let resumed = trainer
            .fit_resumable(&source, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap();
        assert_eq!(resumed.phi(), full.phi(), "resume must be bit-identical");
        assert_eq!(resumed.alpha(), full.alpha());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_detects_missing_spills_and_wrong_source() {
        let docs = planted_docs(128, 3);
        let c = cfg(2, 5);
        let source = MemDocShards::new(&docs, 2);
        let dir = work_dir("guards");
        let trainer = ShardedGibbsTrainer::new(c, &dir);
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let mut ctrl = TrainControl::new(SHARDED_GIBBS_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(9));
        trainer.fit_resumable(&source, &mut ctrl, None).unwrap_err();
        let ckpt = store
            .latest_good(SHARDED_GIBBS_CHECKPOINT_KIND)
            .unwrap()
            .unwrap();

        // Different shard layout.
        let other = MemDocShards::new(&docs, 1);
        let err = trainer
            .fit_resumable(&other, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap_err();
        assert!(matches!(err, ResilienceError::Mismatch { .. }));

        // Spills gone.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::create_dir_all(&dir).unwrap();
        let err = trainer
            .fit_resumable(&source, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap_err();
        assert!(matches!(err, ResilienceError::Mismatch { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_spill_is_rejected() {
        let docs = planted_docs(64, 4);
        let dir = work_dir("corrupt");
        let trainer = ShardedGibbsTrainer::new(cfg(2, 5), &dir);
        let source = MemDocShards::new(&docs, 1);
        // Run once so a spill exists, then flip a byte and read it back.
        let _ = trainer.fit(&source);
        let path = trainer.spill_path(0, 40);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(&path, bytes).unwrap();
        let err = trainer.read_spill(0, 40, &docs, 2).unwrap_err();
        assert!(matches!(err, ResilienceError::Corrupt { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_versions_are_pruned_without_checkpointing() {
        let docs = planted_docs(128, 6);
        let dir = work_dir("prune");
        let trainer = ShardedGibbsTrainer::new(cfg(2, 9), &dir);
        let _ = trainer.fit(&MemDocShards::new(&docs, 2));
        // Without a checkpoint sink nothing pins old versions, so only the
        // newest spill per shard survives — not one file per sweep.
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert!(files <= 2, "spill files must stay bounded, found {files}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
