//! Online (stochastic) variational Bayes over a sharded corpus.
//!
//! Hoffman-style stochastic variational inference (Hoffman, Blei & Bach,
//! "Online Learning for Latent Dirichlet Allocation", NIPS 2010) adapted to
//! the out-of-core pipeline: **one shard is one minibatch**, and one pass
//! over all shards is one epoch. Each step fits the variational `γ` of the
//! shard's documents against the current `λ` (the same per-document E-step
//! as batch VB, see [`crate::vb`]), forms the minibatch estimate
//! `λ̂ = β + (D/|B_t|)·ss`, and blends `λ ← (1−ρ_t)λ + ρ_t λ̂` with the
//! Robbins–Monro step size `ρ_t = (τ₀ + t)^(−κ)`.
//!
//! Unlike the sharded Gibbs path, no per-shard state is spilled between
//! visits: `γ` is re-fit from `λ` at every visit, so a checkpoint is just
//! `(step, λ)` — resuming mid-epoch is bit-identical because document
//! chunks, merge order, and the step counter are all deterministic.
//!
//! The result depends on the shard layout (that is what "minibatch" means),
//! so unlike Gibbs there is no claim that different shard counts agree —
//! only that the same layout gives the same bits regardless of thread
//! count, backing store, or interruptions.

use crate::model::{LdaConfig, LdaModel};
use crate::sharded::DocShardSource;
use crate::vb::{doc_e_step, fill_e_log_phi, VB_DOC_CHUNK};
use hlm_linalg::Matrix;
use hlm_par::Pool;
use hlm_resilience::{Checkpoint, ResilienceError, TrainControl};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Checkpoint kind tag for online variational-Bayes runs.
pub const ONLINE_VB_CHECKPOINT_KIND: &str = "lda-online-vb";

/// Optimizer state after a completed shard step. `γ` is re-derived from `λ`
/// at each visit, so `λ` and the step counter are the whole state.
#[derive(Serialize, Deserialize)]
struct OnlineVbState {
    step: u64,
    n_shards: u64,
    n_docs: u64,
    lambda: Matrix,
}

/// Settings for the online optimizer.
#[derive(Debug, Clone)]
pub struct OnlineVbOptions {
    /// Passes over the full shard sequence (one epoch = one pass).
    pub epochs: usize,
    /// Per-document E-step iterations.
    pub doc_iters: usize,
    /// Per-document `γ` convergence tolerance.
    pub tol: f64,
    /// Forgetting rate `κ ∈ (0.5, 1]` of the Robbins–Monro schedule.
    pub kappa: f64,
    /// Delay `τ₀ ≥ 0` down-weighting the first steps.
    pub tau0: f64,
}

impl Default for OnlineVbOptions {
    fn default() -> Self {
        OnlineVbOptions {
            epochs: 1,
            doc_iters: 30,
            tol: 1e-4,
            kappa: 0.7,
            tau0: 1024.0,
        }
    }
}

/// Online variational-Bayes trainer sharing [`LdaConfig`] with the other
/// estimators (the Gibbs scheduling fields are ignored; use
/// [`OnlineVbOptions`]).
#[derive(Debug, Clone)]
pub struct OnlineVbTrainer {
    cfg: LdaConfig,
    opts: OnlineVbOptions,
}

impl OnlineVbTrainer {
    /// Creates a trainer.
    ///
    /// # Panics
    /// Panics on an inconsistent configuration or schedule.
    pub fn new(cfg: LdaConfig, opts: OnlineVbOptions) -> Self {
        cfg.validate();
        assert!(
            opts.epochs >= 1 && opts.doc_iters >= 1,
            "iteration budgets must be positive"
        );
        assert!(
            opts.kappa > 0.5 && opts.kappa <= 1.0,
            "kappa must lie in (0.5, 1] for convergence, got {}",
            opts.kappa
        );
        assert!(opts.tau0 >= 0.0 && opts.tol >= 0.0);
        OnlineVbTrainer { cfg, opts }
    }

    /// The configuration.
    pub fn config(&self) -> &LdaConfig {
        &self.cfg
    }

    /// Runs `epochs` shard passes and returns the estimated model
    /// (expected `phi` under the final variational posterior `λ`).
    ///
    /// # Panics
    /// Panics on out-of-vocabulary words or non-positive token weights.
    pub fn fit<S: DocShardSource + ?Sized>(&self, source: &S) -> LdaModel {
        self.fit_resumable(source, &mut TrainControl::noop(), None)
            .expect("noop control cannot interrupt training")
    }

    /// Like [`fit`](Self::fit), but consults `ctrl` at every shard-step
    /// boundary and optionally resumes from a checkpoint — bit-identical to
    /// the uninterrupted run over the same shard layout.
    pub fn fit_resumable<S: DocShardSource + ?Sized>(
        &self,
        source: &S,
        ctrl: &mut TrainControl,
        resume: Option<&Checkpoint>,
    ) -> Result<LdaModel, ResilienceError> {
        let k = self.cfg.n_topics;
        let m = self.cfg.vocab_size;
        let alpha = self.cfg.effective_alpha();
        let beta = self.cfg.beta;
        let n_docs = source.n_docs();
        let n_shards = source.n_shards();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        // Initialize λ exactly as batch VB does.
        let mut lambda = Matrix::from_fn(k, m, |_, _| beta + 0.5 + 0.1 * rng.gen::<f64>());
        let mut start_step = 0u64;

        if let Some(ckpt) = resume {
            if ckpt.kind != ONLINE_VB_CHECKPOINT_KIND {
                return Err(ResilienceError::Mismatch {
                    reason: format!("kind {} != {ONLINE_VB_CHECKPOINT_KIND}", ckpt.kind),
                });
            }
            let text = std::str::from_utf8(&ckpt.payload)
                .map_err(|_| ResilienceError::corrupt("online vb payload is not UTF-8"))?;
            let state: OnlineVbState = serde_json::from_str(text).map_err(|e| {
                ResilienceError::corrupt(format!("online vb payload does not parse: {e}"))
            })?;
            if state.n_docs != n_docs as u64 || state.n_shards != n_shards as u64 {
                return Err(ResilienceError::Mismatch {
                    reason: format!(
                        "checkpoint is for {} docs in {} shards, source has {n_docs} in {n_shards}",
                        state.n_docs, state.n_shards
                    ),
                });
            }
            if state.lambda.rows() != k || state.lambda.cols() != m {
                return Err(ResilienceError::Mismatch {
                    reason: "checkpoint lambda shape does not match the configuration".to_string(),
                });
            }
            start_step = state.step;
            lambda = state.lambda;
        }

        let mut e_log_phi = Matrix::zeros(k, m);
        let pool = Pool::global();
        let rec = hlm_obs::global();
        let total_steps = self.opts.epochs as u64 * n_shards as u64;

        for step in start_step..total_steps {
            ctrl.begin_iteration(step)?;
            let step_t0 = rec.is_enabled().then(std::time::Instant::now);
            let s = (step % n_shards as u64) as usize;
            let docs = source.shard_docs(s);
            for doc in &docs {
                for &(w, weight) in doc {
                    assert!(w < m, "word {w} outside vocabulary of {m}");
                    assert!(
                        weight.is_finite() && weight > 0.0,
                        "token weight must be positive, got {weight}"
                    );
                }
            }

            fill_e_log_phi(&lambda, &mut e_log_phi);

            // Minibatch E-step over fixed document chunks, merged in chunk
            // order (deterministic at any thread count).
            let n_chunks = hlm_par::chunk_count(docs.len(), VB_DOC_CHUNK);
            let contribs = pool.run(n_chunks, |c| {
                let (d_lo, d_hi) = hlm_par::chunk_bounds(docs.len(), VB_DOC_CHUNK, c);
                let mut contrib = Matrix::zeros(k, m);
                let mut resp = vec![0.0f64; k];
                for doc in docs.iter().take(d_hi).skip(d_lo) {
                    doc_e_step(
                        doc,
                        alpha,
                        k,
                        &e_log_phi,
                        self.opts.doc_iters,
                        self.opts.tol,
                        &mut resp,
                        &mut contrib,
                    );
                }
                contrib
            });
            let mut ss = Matrix::zeros(k, m);
            for contrib in &contribs {
                ss.axpy(1.0, contrib);
            }

            // Natural-gradient step: blend the minibatch estimate of λ into
            // the running one. An empty shard (possible only when the whole
            // corpus is empty) contributes nothing.
            let rho = (self.opts.tau0 + step as f64).powf(-self.opts.kappa);
            let mut mean_change = 0.0;
            if !docs.is_empty() {
                let scale = n_docs as f64 / docs.len() as f64;
                for (l, &s_tw) in lambda.as_mut_slice().iter_mut().zip(ss.as_slice()) {
                    let hat = beta + scale * s_tw;
                    let new = (1.0 - rho) * *l + rho * hat;
                    mean_change += (new - *l).abs();
                    *l = new;
                }
                mean_change /= (k * m) as f64;
            }

            if let Some(t0) = step_t0 {
                rec.observe("lda.online_vb.step_seconds", t0.elapsed().as_secs_f64());
                rec.add("lda.online_vb.steps", 1);
                rec.trace("lda.online_vb.mean_lambda_change", step, mean_change);
            }
            ctrl.check_metric(step, "mean lambda change", mean_change)?;
            ctrl.checkpoint(step + 1, || {
                let state = OnlineVbState {
                    step: step + 1,
                    n_shards: n_shards as u64,
                    n_docs: n_docs as u64,
                    lambda: lambda.clone(),
                };
                serde_json::to_string(&state)
                    .expect("online vb state serializes")
                    .into_bytes()
            });
        }

        let mut phi = lambda;
        phi.normalize_rows();
        Ok(LdaModel::new(phi, alpha, beta))
    }

    /// Materializes a model directly from a checkpoint — the rollback path.
    /// Any step's `λ` is a usable (if less converged) posterior estimate.
    pub fn model_from_checkpoint(&self, ckpt: &Checkpoint) -> Result<LdaModel, ResilienceError> {
        if ckpt.kind != ONLINE_VB_CHECKPOINT_KIND {
            return Err(ResilienceError::Mismatch {
                reason: format!("kind {} != {ONLINE_VB_CHECKPOINT_KIND}", ckpt.kind),
            });
        }
        let text = std::str::from_utf8(&ckpt.payload)
            .map_err(|_| ResilienceError::corrupt("online vb payload is not UTF-8"))?;
        let state: OnlineVbState = serde_json::from_str(text).map_err(|e| {
            ResilienceError::corrupt(format!("online vb payload does not parse: {e}"))
        })?;
        let mut phi = state.lambda;
        phi.normalize_rows();
        Ok(LdaModel::new(
            phi,
            self.cfg.effective_alpha(),
            self.cfg.beta,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::MemDocShards;
    use crate::unit_weights;
    use crate::WeightedDoc;
    use hlm_resilience::{CheckpointStore, MemIo, RunGuard};

    fn planted_docs(n_docs: usize, seed: u64) -> Vec<WeightedDoc> {
        let mut rng = StdRng::seed_from_u64(seed);
        unit_weights(
            &(0..n_docs)
                .map(|i| {
                    let base = if i % 2 == 0 { 0usize } else { 3 };
                    (0..8).map(|_| base + rng.gen_range(0..3)).collect()
                })
                .collect::<Vec<_>>(),
        )
    }

    fn cfg(seed: u64) -> LdaConfig {
        LdaConfig {
            n_topics: 2,
            vocab_size: 6,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn online_vb_recovers_planted_topics() {
        let docs = planted_docs(300, 1);
        let opts = OnlineVbOptions {
            epochs: 8,
            tau0: 4.0,
            ..Default::default()
        };
        let model = OnlineVbTrainer::new(cfg(7), opts).fit(&MemDocShards::new(&docs, 4));
        let phi = model.phi();
        for t in 0..2 {
            let row = phi.row(t);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let lo: f64 = row[..3].iter().sum();
            let hi: f64 = row[3..].iter().sum();
            assert!(
                lo > 0.9 || hi > 0.9,
                "topic {t} should concentrate on one planted block, got {row:?}"
            );
        }
    }

    #[test]
    fn online_vb_is_deterministic_for_a_fixed_layout() {
        let docs = planted_docs(200, 2);
        let opts = OnlineVbOptions {
            epochs: 2,
            ..Default::default()
        };
        let a = OnlineVbTrainer::new(cfg(5), opts.clone()).fit(&MemDocShards::new(&docs, 3));
        let b = OnlineVbTrainer::new(cfg(5), opts).fit(&MemDocShards::new(&docs, 3));
        assert_eq!(a.phi(), b.phi());
    }

    #[test]
    fn kill_mid_epoch_and_resume_is_bit_identical() {
        let docs = planted_docs(200, 3);
        let opts = OnlineVbOptions {
            epochs: 3,
            ..Default::default()
        };
        let source = MemDocShards::new(&docs, 4);
        let full = OnlineVbTrainer::new(cfg(11), opts.clone()).fit(&source);

        let trainer = OnlineVbTrainer::new(cfg(11), opts);
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let mut ctrl = TrainControl::new(ONLINE_VB_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(6));
        let err = trainer.fit_resumable(&source, &mut ctrl, None).unwrap_err();
        assert!(err.is_interruption());

        let ckpt = store
            .latest_good(ONLINE_VB_CHECKPOINT_KIND)
            .unwrap()
            .unwrap();
        assert_eq!(ckpt.iteration, 6);
        let resumed = trainer
            .fit_resumable(&source, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap();
        assert_eq!(resumed.phi(), full.phi());
    }

    #[test]
    fn resume_rejects_a_different_shard_layout() {
        let docs = planted_docs(200, 4);
        let opts = OnlineVbOptions {
            epochs: 2,
            ..Default::default()
        };
        let trainer = OnlineVbTrainer::new(cfg(13), opts);
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let mut ctrl = TrainControl::new(ONLINE_VB_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(3));
        trainer
            .fit_resumable(&MemDocShards::new(&docs, 4), &mut ctrl, None)
            .unwrap_err();
        let ckpt = store
            .latest_good(ONLINE_VB_CHECKPOINT_KIND)
            .unwrap()
            .unwrap();
        let err = trainer
            .fit_resumable(
                &MemDocShards::new(&docs, 2),
                &mut TrainControl::noop(),
                Some(&ckpt),
            )
            .unwrap_err();
        assert!(matches!(err, ResilienceError::Mismatch { .. }));
    }
}
