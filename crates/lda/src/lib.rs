//! Latent Dirichlet Allocation via collapsed Gibbs sampling.
//!
//! The paper's best-performing model (Section 3.5, 4.1): companies are
//! documents, product categories are words, and a company is a finite
//! mixture over `K` latent topics. This crate implements
//!
//! * a **weighted collapsed Gibbs sampler** ([`gibbs`]) — token weights are
//!   real numbers, so the model trains on both binary bag-of-words documents
//!   (weight 1 per owned product) and TF-IDF-weighted documents, exactly the
//!   two inputs compared in Figure 2;
//! * **fold-in inference** for held-out companies ([`LdaModel::infer_theta`])
//!   used for document-completion perplexity, company representations
//!   (`B_i` in the paper), and the LDA recommender;
//! * **document-completion perplexity** ([`perplexity`]) — the goodness-of-
//!   fit measure of Section 4.1; and
//! * **product embeddings** (`p(topic | product)` columns) that feed the
//!   t-SNE maps of Figures 8–9.
//!
//! # Example
//!
//! ```
//! use hlm_lda::{GibbsTrainer, LdaConfig};
//!
//! // Three tiny documents over a 4-product vocabulary.
//! let docs = vec![vec![0usize, 1], vec![0, 1, 2], vec![2, 3]];
//! let weighted: Vec<Vec<(usize, f64)>> =
//!     docs.iter().map(|d| d.iter().map(|&w| (w, 1.0)).collect()).collect();
//! let cfg = LdaConfig { n_topics: 2, vocab_size: 4, ..Default::default() };
//! let model = GibbsTrainer::new(cfg).fit(&weighted);
//! let theta = model.infer_theta(&[(0, 1.0), (1, 1.0)]);
//! assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

pub mod fold_in;
pub mod gibbs;
pub mod model;
pub mod online_vb;
pub mod perplexity;
pub mod sharded;
pub mod vb;

pub use fold_in::{fold_in, FoldInOptions};
pub use gibbs::{GibbsTrainer, GIBBS_CHECKPOINT_KIND};
pub use model::{LdaConfig, LdaModel, SamplerChoice};
pub use online_vb::{OnlineVbOptions, OnlineVbTrainer, ONLINE_VB_CHECKPOINT_KIND};
pub use perplexity::{document_completion_perplexity, held_out_log_likelihood};
pub use sharded::{
    DocShardSource, MemDocShards, ShardedGibbsTrainer, SHARDED_GIBBS_CHECKPOINT_KIND,
};
pub use vb::{VbOptions, VbTrainer, VB_CHECKPOINT_KIND};

/// A document as `(word index, weight)` pairs. Binary install bases use
/// weight 1.0 per owned product; TF-IDF input uses the IDF weight.
pub type WeightedDoc = Vec<(usize, f64)>;

/// Converts plain word-index documents into unit-weight [`WeightedDoc`]s.
pub fn unit_weights(docs: &[Vec<usize>]) -> Vec<WeightedDoc> {
    docs.iter()
        .map(|d| d.iter().map(|&w| (w, 1.0)).collect())
        .collect()
}
