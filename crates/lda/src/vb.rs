//! Batch variational-Bayes inference for LDA (Blei, Ng & Jordan 2003).
//!
//! The paper's experiments used gensim, whose LDA implementation is
//! variational Bayes rather than collapsed Gibbs. This module provides the
//! same mean-field coordinate ascent so the two estimators can be compared
//! (see the inference ablation): per-document variational Dirichlet
//! parameters `γ_d` with token responsibilities
//! `φ_{dwk} ∝ exp(ψ(γ_dk)) · exp(ψ(λ_kw) − ψ(Σ_w λ_kw))`, and a global
//! topic-word Dirichlet `λ`.
//!
//! Token weights are honoured exactly as in the Gibbs sampler, so binary and
//! TF-IDF inputs both work.

use crate::model::{LdaConfig, LdaModel};
use crate::WeightedDoc;
use hlm_linalg::special::digamma;
use hlm_linalg::Matrix;
use hlm_par::Pool;
use hlm_resilience::{Checkpoint, ResilienceError, TrainControl};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Documents per parallel E-step chunk (fixed so results are independent of
/// the worker count).
pub(crate) const VB_DOC_CHUNK: usize = 64;

/// Mean-field E-step for one document: iterates the variational Dirichlet
/// `γ_d` to (near-)convergence against the current `exp(E[log φ])` cache,
/// then accumulates the document's `λ` sufficient statistics into
/// `lambda_contrib` and returns `γ_d`. Shared verbatim by the batch and the
/// online (Hoffman-style) optimizers so both produce the same per-document
/// floating-point sequence.
#[allow(clippy::too_many_arguments)]
pub(crate) fn doc_e_step(
    doc: &WeightedDoc,
    alpha: f64,
    k: usize,
    e_log_phi: &Matrix,
    doc_iters: usize,
    tol: f64,
    resp: &mut [f64],
    lambda_contrib: &mut Matrix,
) -> Vec<f64> {
    let mut g = vec![alpha + doc.len() as f64 / k as f64; k];
    for _ in 0..doc_iters {
        let mut g_new = vec![alpha; k];
        for &(w, weight) in doc {
            let mut s = 0.0;
            for t in 0..k {
                resp[t] = digamma(g[t]).exp() * e_log_phi.get(t, w);
                s += resp[t];
            }
            if s <= 0.0 {
                continue;
            }
            for t in 0..k {
                g_new[t] += weight * resp[t] / s;
            }
        }
        let delta: f64 = g
            .iter()
            .zip(&g_new)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / k as f64;
        g = g_new;
        if delta < tol {
            break;
        }
    }
    // Accumulate sufficient statistics into λ.
    for &(w, weight) in doc {
        let mut s = 0.0;
        for (t, r) in resp.iter_mut().enumerate().take(k) {
            *r = digamma(g[t]).exp() * e_log_phi.get(t, w);
            s += *r;
        }
        if s <= 0.0 {
            continue;
        }
        for (t, &r) in resp.iter().enumerate().take(k) {
            lambda_contrib.add_at(t, w, weight * r / s);
        }
    }
    g
}

/// Fills the `exp(E[log φ_kw])` cache from the current `λ` (shared by the
/// batch and online optimizers).
pub(crate) fn fill_e_log_phi(lambda: &Matrix, e_log_phi: &mut Matrix) {
    let (k, m) = (lambda.rows(), lambda.cols());
    for t in 0..k {
        let row_sum: f64 = lambda.row(t).iter().sum();
        let psi_sum = digamma(row_sum);
        for w in 0..m {
            e_log_phi.set(t, w, (digamma(lambda.get(t, w)) - psi_sum).exp());
        }
    }
}

/// One chunk's E-step output: its contribution to the new `λ` sufficient
/// statistics, its documents' updated `γ` rows, and the summed absolute
/// `γ` change.
struct EStepOut {
    lambda_contrib: Matrix,
    gamma_rows: Vec<f64>,
    gamma_change: f64,
}

/// Checkpoint kind tag for variational-Bayes runs.
pub const VB_CHECKPOINT_KIND: &str = "lda-vb";

/// Optimizer state after a completed E-M iteration. The RNG is only used to
/// initialize `λ`, which is part of the state, so it needs no capture.
#[derive(Serialize, Deserialize)]
struct VbState {
    iters_done: u64,
    converged: bool,
    lambda: Matrix,
    gamma: Matrix,
}

/// Settings for the variational optimizer.
#[derive(Debug, Clone)]
pub struct VbOptions {
    /// Maximum E-M iterations over the corpus.
    pub max_iters: usize,
    /// Per-document E-step iterations.
    pub doc_iters: usize,
    /// Stop when the mean absolute change of `γ` falls below this.
    pub tol: f64,
}

impl Default for VbOptions {
    fn default() -> Self {
        VbOptions {
            max_iters: 60,
            doc_iters: 30,
            tol: 1e-4,
        }
    }
}

/// Variational-Bayes trainer sharing [`LdaConfig`] with the Gibbs sampler
/// (the `n_iters` / `burn_in` / `sample_lag` fields are ignored; use
/// [`VbOptions`]).
#[derive(Debug, Clone)]
pub struct VbTrainer {
    cfg: LdaConfig,
    opts: VbOptions,
}

impl VbTrainer {
    /// Creates a trainer.
    ///
    /// # Panics
    /// Panics on an inconsistent configuration or zero iteration budgets.
    pub fn new(cfg: LdaConfig, opts: VbOptions) -> Self {
        cfg.validate();
        assert!(
            opts.max_iters >= 1 && opts.doc_iters >= 1,
            "iteration budgets must be positive"
        );
        assert!(opts.tol >= 0.0);
        VbTrainer { cfg, opts }
    }

    /// Runs mean-field coordinate ascent and returns the estimated model
    /// (expected `phi` under the variational posterior `λ`).
    ///
    /// # Panics
    /// Panics on out-of-vocabulary words or non-positive token weights.
    pub fn fit(&self, docs: &[WeightedDoc]) -> LdaModel {
        self.fit_resumable(docs, &mut TrainControl::noop(), None)
            .expect("noop control cannot interrupt training")
    }

    /// Like [`VbTrainer::fit`], but consults `ctrl` at every E-M iteration
    /// boundary and optionally continues from an earlier run's checkpoint,
    /// producing a model bit-identical to an uninterrupted run.
    ///
    /// # Panics
    /// Panics on the same malformed-input conditions as `fit`.
    pub fn fit_resumable(
        &self,
        docs: &[WeightedDoc],
        ctrl: &mut TrainControl,
        resume: Option<&Checkpoint>,
    ) -> Result<LdaModel, ResilienceError> {
        let k = self.cfg.n_topics;
        let m = self.cfg.vocab_size;
        let alpha = self.cfg.effective_alpha();
        let beta = self.cfg.beta;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        for doc in docs {
            for &(w, weight) in doc {
                assert!(w < m, "word {w} outside vocabulary of {m}");
                assert!(
                    weight.is_finite() && weight > 0.0,
                    "token weight must be positive, got {weight}"
                );
            }
        }

        // Initialize λ with small positive noise around β.
        let mut lambda = Matrix::from_fn(k, m, |_, _| beta + 0.5 + 0.1 * rng.gen::<f64>());
        let mut gamma = Matrix::filled(docs.len(), k, alpha + 1.0);
        let mut start_iter = 0u64;

        if let Some(ckpt) = resume {
            let state = decode_state(ckpt, docs.len(), k, m)?;
            if state.converged {
                let mut phi = state.lambda;
                phi.normalize_rows();
                return Ok(LdaModel::new(phi, alpha, beta));
            }
            start_iter = state.iters_done;
            lambda = state.lambda;
            gamma = state.gamma;
        }

        // exp(E[log φ_kw]) cache.
        let mut e_log_phi = Matrix::zeros(k, m);
        let pool = Pool::global();
        let rec = hlm_obs::global();
        let n_chunks = hlm_par::chunk_count(docs.len(), VB_DOC_CHUNK);

        for iter in start_iter as usize..self.opts.max_iters {
            ctrl.begin_iteration(iter as u64)?;
            let iter_t0 = rec.is_enabled().then(std::time::Instant::now);
            // Cache expected log topic-word probabilities.
            fill_e_log_phi(&lambda, &mut e_log_phi);

            // Per-document E-steps are independent given λ; run them over
            // fixed document chunks and merge the sufficient statistics in
            // chunk order (deterministic at any thread count).
            let e_outs = pool.run(n_chunks, |c| {
                let (d_lo, d_hi) = hlm_par::chunk_bounds(docs.len(), VB_DOC_CHUNK, c);
                let mut out = EStepOut {
                    lambda_contrib: Matrix::zeros(k, m),
                    gamma_rows: Vec::with_capacity((d_hi - d_lo) * k),
                    gamma_change: 0.0,
                };
                let mut resp = vec![0.0f64; k];
                for (d, doc) in docs.iter().enumerate().take(d_hi).skip(d_lo) {
                    let g = doc_e_step(
                        doc,
                        alpha,
                        k,
                        &e_log_phi,
                        self.opts.doc_iters,
                        self.opts.tol,
                        &mut resp,
                        &mut out.lambda_contrib,
                    );
                    for (t, &gt) in g.iter().enumerate().take(k) {
                        out.gamma_change += (gamma.get(d, t) - gt).abs();
                    }
                    out.gamma_rows.extend_from_slice(&g);
                }
                out
            });

            let mut lambda_new = Matrix::filled(k, m, beta);
            let mut mean_gamma_change = 0.0;
            for (c, out) in e_outs.into_iter().enumerate() {
                let (d_lo, d_hi) = hlm_par::chunk_bounds(docs.len(), VB_DOC_CHUNK, c);
                lambda_new.axpy(1.0, &out.lambda_contrib);
                gamma.as_mut_slice()[d_lo * k..d_hi * k].copy_from_slice(&out.gamma_rows);
                mean_gamma_change += out.gamma_change;
            }
            lambda = lambda_new;
            mean_gamma_change /= (docs.len().max(1) * k) as f64;
            // Read-only observation: the trace mirrors the convergence
            // criterion without influencing it.
            if let Some(t0) = iter_t0 {
                rec.observe("lda.vb.iter_seconds", t0.elapsed().as_secs_f64());
                rec.add("lda.vb.iters", 1);
                rec.trace("lda.vb.mean_gamma_change", iter as u64, mean_gamma_change);
            }
            let change = ctrl.check_metric(iter as u64, "mean gamma change", mean_gamma_change)?;
            let converged = change < self.opts.tol;
            ctrl.checkpoint(iter as u64 + 1, || {
                encode_state(&VbState {
                    iters_done: iter as u64 + 1,
                    converged,
                    lambda: lambda.clone(),
                    gamma: gamma.clone(),
                })
            });
            if converged {
                break;
            }
        }

        let mut phi = lambda;
        phi.normalize_rows();
        Ok(LdaModel::new(phi, alpha, beta))
    }

    /// Materializes a model directly from a checkpoint, without further
    /// E-M iterations — the rollback path when a later iteration diverges.
    pub fn model_from_checkpoint(&self, ckpt: &Checkpoint) -> Result<LdaModel, ResilienceError> {
        let state = decode_state(ckpt, usize::MAX, self.cfg.n_topics, self.cfg.vocab_size)?;
        let mut phi = state.lambda;
        phi.normalize_rows();
        Ok(LdaModel::new(
            phi,
            self.cfg.effective_alpha(),
            self.cfg.beta,
        ))
    }
}

fn encode_state(state: &VbState) -> Vec<u8> {
    serde_json::to_string(state)
        .expect("vb state serializes")
        .into_bytes()
}

fn decode_state(
    ckpt: &Checkpoint,
    n_docs: usize,
    k: usize,
    m: usize,
) -> Result<VbState, ResilienceError> {
    if ckpt.kind != VB_CHECKPOINT_KIND {
        return Err(ResilienceError::Mismatch {
            reason: format!("kind {} != {VB_CHECKPOINT_KIND}", ckpt.kind),
        });
    }
    let text = std::str::from_utf8(&ckpt.payload)
        .map_err(|_| ResilienceError::corrupt("vb payload is not UTF-8"))?;
    let state: VbState = serde_json::from_str(text)
        .map_err(|e| ResilienceError::corrupt(format!("vb payload does not parse: {e}")))?;
    if state.lambda.rows() != k || state.lambda.cols() != m {
        return Err(ResilienceError::Mismatch {
            reason: "checkpoint lambda shape does not match the configuration".to_string(),
        });
    }
    // n_docs == usize::MAX skips the document-count check (rollback path,
    // where the corpus is not at hand).
    if n_docs != usize::MAX && (state.gamma.rows() != n_docs || state.gamma.cols() != k) {
        return Err(ResilienceError::Mismatch {
            reason: "checkpoint gamma shape does not match the corpus".to_string(),
        });
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::GibbsTrainer;
    use crate::perplexity::document_completion_perplexity;
    use crate::unit_weights;

    fn planted_docs(n_docs: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_docs)
            .map(|i| {
                let base = if i % 2 == 0 { 0usize } else { 3 };
                // 3 distinct words from the topic's block (set semantics).
                let mut block: Vec<usize> = (base..base + 3).collect();
                hlm_linalg::dist::shuffle(&mut rng, &mut block);
                block
            })
            .collect()
    }

    fn cfg(k: usize, vocab: usize) -> LdaConfig {
        LdaConfig {
            n_topics: k,
            vocab_size: vocab,
            alpha: Some(0.3),
            beta: 0.1,
            ..Default::default()
        }
    }

    #[test]
    fn vb_recovers_planted_topics() {
        let docs = unit_weights(&planted_docs(150, 1));
        let model = VbTrainer::new(cfg(2, 6), VbOptions::default()).fit(&docs);
        let phi = model.phi();
        // Topic 0 owns one of the two 3-word blocks nearly entirely — its
        // mass on block {0,1,2} is near 1 (it owns that block) or near 0
        // (it owns the other one).
        let block0: f64 = (0..3).map(|w| phi.get(0, w)).sum();
        assert!(
            !(0.1..=0.9).contains(&block0),
            "topics must separate the planted blocks, block mass {block0}"
        );
    }

    #[test]
    fn vb_and_gibbs_agree_on_heldout_fit() {
        let docs = unit_weights(&planted_docs(200, 2));
        let (train, test) = docs.split_at(160);
        let vb = VbTrainer::new(cfg(2, 6), VbOptions::default()).fit(train);
        let gibbs = GibbsTrainer::new(LdaConfig {
            n_iters: 150,
            burn_in: 75,
            sample_lag: 5,
            ..cfg(2, 6)
        })
        .fit(train);
        let p_vb = document_completion_perplexity(&vb, test);
        let p_gibbs = document_completion_perplexity(&gibbs, test);
        assert!(
            (p_vb - p_gibbs).abs() < 0.15 * p_gibbs,
            "VB {p_vb} vs Gibbs {p_gibbs} should agree within 15%"
        );
    }

    #[test]
    fn vb_is_deterministic_given_seed() {
        let docs = unit_weights(&planted_docs(50, 3));
        let a = VbTrainer::new(cfg(3, 6), VbOptions::default()).fit(&docs);
        let b = VbTrainer::new(cfg(3, 6), VbOptions::default()).fit(&docs);
        assert_eq!(a.phi(), b.phi());
    }

    #[test]
    fn vb_handles_weighted_and_empty_documents() {
        let mut docs: Vec<WeightedDoc> = vec![vec![(0, 2.5), (1, 0.3)]; 20];
        docs.push(Vec::new());
        let model = VbTrainer::new(cfg(2, 4), VbOptions::default()).fit(&docs);
        assert!(model.phi().is_finite());
        for t in 0..2 {
            assert!((model.phi().row(t).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn vb_rejects_out_of_vocab() {
        VbTrainer::new(cfg(2, 3), VbOptions::default()).fit(&[vec![(7, 1.0)]]);
    }

    #[test]
    fn vb_kill_and_resume_matches_uninterrupted_run() {
        use hlm_resilience::{CheckpointStore, MemIo, RunGuard, TrainControl};

        let docs = unit_weights(&planted_docs(80, 5));
        let trainer = VbTrainer::new(cfg(2, 6), VbOptions::default());
        let full = trainer.fit(&docs);

        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let mut ctrl = TrainControl::new(VB_CHECKPOINT_KIND, &store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(3));
        let err = trainer.fit_resumable(&docs, &mut ctrl, None).unwrap_err();
        assert!(err.is_interruption());

        let ckpt = store.latest_good(VB_CHECKPOINT_KIND).unwrap().unwrap();
        assert_eq!(ckpt.iteration, 3);
        let resumed = trainer
            .fit_resumable(&docs, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap();
        assert_eq!(resumed.phi(), full.phi(), "resume must be bit-identical");
    }

    #[test]
    fn vb_resume_from_converged_checkpoint_returns_final_model() {
        use hlm_resilience::{CheckpointStore, MemIo, TrainControl};

        let docs = unit_weights(&planted_docs(80, 6));
        let trainer = VbTrainer::new(cfg(2, 6), VbOptions::default());
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let mut ctrl = TrainControl::new(VB_CHECKPOINT_KIND, &store);
        let full = trainer.fit_resumable(&docs, &mut ctrl, None).unwrap();

        let ckpt = store.latest_good(VB_CHECKPOINT_KIND).unwrap().unwrap();
        let resumed = trainer
            .fit_resumable(&docs, &mut TrainControl::noop(), Some(&ckpt))
            .unwrap();
        assert_eq!(resumed.phi(), full.phi());

        let rolled_back = trainer.model_from_checkpoint(&ckpt).unwrap();
        assert_eq!(rolled_back.phi(), full.phi());
    }
}
