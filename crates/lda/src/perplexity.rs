//! Document-completion perplexity for LDA.
//!
//! The paper selects models by "average perplexity per product" on a test
//! set: `exp(−(1/n) Σ ln P(a_i))` (Section 4.1). Evaluating LDA honestly on
//! held-out documents requires that a word's own occurrence not inform the θ
//! it is scored under, so we use the standard *document completion* scheme:
//! the even-indexed tokens of each test document estimate θ (fold-in), the
//! odd-indexed tokens are scored under `Σ_k θ_k φ_kw`.

use crate::model::LdaModel;
use crate::WeightedDoc;

/// Splits a document into (observed, held-out) halves by alternating
/// positions. Documents with fewer than two tokens contribute their token to
/// the observed half only.
pub fn completion_split(doc: &[(usize, f64)]) -> (WeightedDoc, WeightedDoc) {
    let mut observed = Vec::with_capacity(doc.len() / 2 + 1);
    let mut held_out = Vec::with_capacity(doc.len() / 2);
    for (i, &tok) in doc.iter().enumerate() {
        if i % 2 == 0 {
            observed.push(tok);
        } else {
            held_out.push(tok);
        }
    }
    (observed, held_out)
}

/// Total held-out log-likelihood and token count under document completion.
///
/// Returns `(sum of ln P(w), number of scored tokens)`. Weights are ignored
/// for scoring (every held-out product counts once, matching the paper's
/// per-product measure); they still influence the fold-in θ estimate.
///
/// Install bases are *sets*: a held-out product is never one of the observed
/// products, and the model knows which products are already owned. The
/// predictive mixture is therefore conditioned on that information — mass on
/// observed products is removed and the distribution renormalized — exactly
/// as the LDA recommender never re-recommends an owned product.
///
/// Documents are scored independently and the per-document sums are reduced
/// in document order, so the parallel evaluation (above a small corpus size)
/// equals the serial one to the last ulp at any thread count.
pub fn held_out_log_likelihood(model: &LdaModel, docs: &[WeightedDoc]) -> (f64, usize) {
    // Documents per evaluation chunk; fixed so the reduction order is a
    // function of the corpus alone.
    const EVAL_DOC_CHUNK: usize = 32;
    let pool = hlm_par::Pool::global();
    hlm_par::par_map_reduce(
        &pool,
        docs,
        EVAL_DOC_CHUNK,
        |_c, chunk| {
            let mut ll = 0.0;
            let mut n = 0usize;
            for doc in chunk {
                let (doc_ll, doc_n) = doc_log_likelihood(model, doc);
                ll += doc_ll;
                n += doc_n;
            }
            (ll, n)
        },
        (0.0f64, 0usize),
        |(acc_ll, acc_n), (ll, n)| (acc_ll + ll, acc_n + n),
    )
}

/// One document's held-out log-likelihood under document completion:
/// `(sum of ln P(w), held-out token count)`.
fn doc_log_likelihood(model: &LdaModel, doc: &[(usize, f64)]) -> (f64, usize) {
    let (observed, held_out) = completion_split(doc);
    if held_out.is_empty() {
        return (0.0, 0);
    }
    let theta = model.infer_theta(&observed);
    let mut pred = model.predictive_distribution(&theta);
    for &(w, _) in &observed {
        if w < pred.len() {
            pred[w] = 0.0;
        }
    }
    let remaining: f64 = pred.iter().sum();
    if remaining > 0.0 {
        pred.iter_mut().for_each(|p| *p /= remaining);
    }
    let mut total_ll = 0.0;
    let mut scored = 0usize;
    for &(w, _) in &held_out {
        // Products outside the model's vocabulary (launched after training)
        // cannot be scored; they are excluded from the count rather than
        // charged an arbitrary penalty.
        if w < pred.len() {
            // beta smoothing keeps every p strictly positive.
            total_ll += pred[w].max(f64::MIN_POSITIVE).ln();
            scored += 1;
        }
    }
    (total_ll, scored)
}

/// Average perplexity per product on a test corpus:
/// `exp(−(1/n) Σ ln P(a_i))` under document completion.
///
/// Returns `NaN` when no document yields a held-out token.
pub fn document_completion_perplexity(model: &LdaModel, docs: &[WeightedDoc]) -> f64 {
    let (ll, n) = held_out_log_likelihood(model, docs);
    if n == 0 {
        return f64::NAN;
    }
    (-ll / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::GibbsTrainer;
    use crate::model::LdaConfig;
    use crate::unit_weights;
    use hlm_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sharp_model() -> LdaModel {
        let phi = Matrix::from_rows(&[&[0.45, 0.45, 0.05, 0.05], &[0.05, 0.05, 0.45, 0.45]]);
        LdaModel::new(phi, 0.1, 0.01)
    }

    #[test]
    fn split_alternates_positions() {
        let doc: WeightedDoc = vec![(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0), (4, 1.0)];
        let (obs, held) = completion_split(&doc);
        assert_eq!(obs.iter().map(|t| t.0).collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(held.iter().map(|t| t.0).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn single_token_docs_are_skipped() {
        let model = sharp_model();
        let ppl = document_completion_perplexity(&model, &[vec![(0, 1.0)]]);
        assert!(ppl.is_nan(), "no held-out token -> NaN");
    }

    #[test]
    fn coherent_docs_beat_incoherent_docs() {
        let model = sharp_model();
        // Documents drawn from topic 0.
        let coherent: Vec<WeightedDoc> = vec![vec![(0, 1.0), (1, 1.0), (0, 1.0), (1, 1.0)]; 10];
        // Documents that mix topics adversarially: observed half says topic 0,
        // held-out half is topic-1 words.
        let incoherent: Vec<WeightedDoc> = vec![vec![(0, 1.0), (2, 1.0), (0, 1.0), (3, 1.0)]; 10];
        let p_good = document_completion_perplexity(&model, &coherent);
        let p_bad = document_completion_perplexity(&model, &incoherent);
        assert!(
            p_good < p_bad,
            "coherent perplexity {p_good} must beat incoherent {p_bad}"
        );
    }

    #[test]
    fn perplexity_of_uniform_model_is_remaining_support_size() {
        // A uniform model over M products, documents with 2 observed and 2
        // held-out products: after removing the observed products'
        // mass, the predictive is uniform over M - 2 products.
        let m = 5;
        let mut phi = Matrix::filled(1, m, 1.0 / m as f64);
        phi.normalize_rows();
        let model = LdaModel::new(phi, 0.1, 0.1);
        let docs: Vec<WeightedDoc> = vec![vec![(0, 1.0), (3, 1.0), (2, 1.0), (4, 1.0)]; 4];
        let ppl = document_completion_perplexity(&model, &docs);
        assert!(
            (ppl - (m - 2) as f64).abs() < 1e-9,
            "uniform perplexity {ppl}"
        );
    }

    #[test]
    fn trained_lda_beats_unigram_on_mixture_data() {
        // Generate set-documents from two planted topics (distinct words per
        // doc, matching install-base semantics), train 2-topic LDA and a
        // 1-topic LDA (a smoothed unigram); 2 topics must fit better.
        let mut rng = StdRng::seed_from_u64(0);
        let docs: Vec<Vec<usize>> = (0..200)
            .map(|i| {
                let base = if i % 2 == 0 { 0usize } else { 6 };
                // 4 distinct words out of the topic's block of 6.
                let mut block: Vec<usize> = (base..base + 6).collect();
                hlm_linalg::dist::shuffle(&mut rng, &mut block);
                block.truncate(4);
                block
            })
            .collect();
        let weighted = unit_weights(&docs);
        let (train, test) = weighted.split_at(160);

        let fit = |k: usize| {
            GibbsTrainer::new(LdaConfig {
                n_topics: k,
                vocab_size: 12,
                n_iters: 150,
                burn_in: 75,
                sample_lag: 5,
                seed: 17,
                alpha: Some(0.5),
                beta: 0.1,
                ..Default::default()
            })
            .fit(train)
        };
        let p2 = document_completion_perplexity(&fit(2), test);
        let p1 = document_completion_perplexity(&fit(1), test);
        assert!(p2 < p1, "2-topic perplexity {p2} must beat unigram {p1}");
        // Held-out words come from the topic's remaining ~4 block words.
        assert!(p2 < 5.5, "2-topic perplexity should approach ~4, got {p2}");
        assert!(p1 > 6.0, "unigram sees a near-uniform marginal, got {p1}");
    }
}
