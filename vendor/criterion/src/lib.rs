//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Supports the surface the workspace's `harness = false` benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of upstream's
//! statistical analysis it runs a short calibrated loop and prints the mean
//! wall-clock time per iteration — enough to eyeball regressions offline.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            measurement: self.measurement,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters > 0 {
            bencher.total / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        println!("{id:<44} {:>12.3?}/iter ({} iters)", mean, bencher.iters);
        self
    }

    /// Opens a named group of benchmarks. The group prefixes its benchmark
    /// ids with `name/` and accepts (but does not interpret) the upstream
    /// sampling knobs.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks, matching the upstream surface the
/// workspace's benches use: [`BenchmarkGroup::sample_size`],
/// [`BenchmarkGroup::bench_function`] and [`BenchmarkGroup::finish`].
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; the shim's fixed time budget
    /// already bounds slow benchmarks.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` as `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op; provided for upstream compatibility).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measurement: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then measure until the time budget is spent.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            black_box(routine());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters.max(1);
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let budget = Instant::now();
        while budget.elapsed() < self.measurement {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.total = measured;
        self.iters = iters.max(1);
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("sum_0_to_99", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("batched_double", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn bench_function_runs_and_counts_iters() {
        let mut c = Criterion {
            measurement: std::time::Duration::from_millis(5),
        };
        tiny_bench(&mut c);
    }
}
