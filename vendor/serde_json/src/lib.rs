//! Offline vendored subset of `serde_json`: `to_string` / `from_str` over
//! the vendored serde's [`serde::Value`] data model.
//!
//! Floats are written with Rust's shortest-roundtrip formatting (the
//! behaviour the upstream `float_roundtrip` feature guarantees), and
//! non-finite floats serialize as `null` (deserialized back as `NaN` for
//! `f64` targets). Maps with non-string keys never reach this layer — the
//! vendored serde serializes all maps as pair sequences.

use serde::{de, ser, Deserialize, Serialize, Value, ValueDeserializer, ValueSerializer};
use std::fmt::{self, Display, Write as _};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value
        .serialize(ValueSerializer)
        .map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T>(s: &str) -> Result<T, Error>
where
    T: for<'de> Deserialize<'de>,
{
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize(ValueDeserializer(v)).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                let start = out.len();
                let _ = write!(out, "{f}");
                // Keep floats distinguishable from integers on re-parse.
                if !out[start..].contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}` at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: expect a low surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error("invalid surrogate pair".into()))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error("invalid \\u escape".into()))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(to_string(&-2i64).unwrap(), "-2");
        assert_eq!(from_str::<f64>("1.25").unwrap(), 1.25);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[0.1, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0, 2.5] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
        // NaN serializes as null and comes back as NaN.
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        assert!(from_str::<f64>(&s).unwrap().is_nan());
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "a \"quoted\" line\nwith\ttabs \\ and ünïcode 🚀";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""🚀""#).unwrap(), "🚀");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![vec![1usize, 2], vec![], vec![3]];
        let back: Vec<Vec<usize>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);

        let mut m: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        m.insert(4, 0.5);
        m.insert(7, -1.5);
        let back: std::collections::HashMap<usize, f64> =
            from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("3x").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }
}
