//! Offline vendored `#[derive(Serialize, Deserialize)]` for the in-tree
//! serde subset.
//!
//! Implemented directly over `proc_macro::TokenTree` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the item shapes this
//! workspace derives on:
//!
//! - named-field structs, tuple/newtype structs, unit structs (no generics),
//! - enums with unit and newtype variants (externally tagged),
//! - field attributes `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]`, `#[serde(with = "module")]`,
//!   and combinations thereof.
//!
//! Generated code targets the Value-based data model of the vendored
//! `serde` crate: structs become `Value::Map`, tuples `Value::Seq`, unit
//! enum variants `Value::Str(name)`, newtype variants a single-entry map.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Default)]
struct Field {
    name: String,
    skip: bool,
    /// `None`: required. `Some(None)`: `Default::default()`.
    /// `Some(Some(path))`: call `path()`.
    default: Option<Option<String>>,
    /// `#[serde(with = "module")]` path.
    with: Option<String>,
}

struct Variant {
    name: String,
    newtype: bool,
}

fn ident_text(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skips `#[...]` attribute tokens starting at `i`, parsing any
/// `#[serde(...)]` contents into `field`.
fn skip_attrs(toks: &[TokenTree], mut i: usize, mut field: Option<&mut Field>) -> usize {
    while i < toks.len() && is_punct(&toks[i], '#') {
        if let TokenTree::Group(g) = &toks[i + 1] {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if inner.first().and_then(ident_text).as_deref() == Some("serde") {
                if let (Some(TokenTree::Group(args)), Some(f)) = (inner.get(1), field.as_mut()) {
                    parse_serde_attr(args.stream(), f);
                }
            }
        }
        i += 2;
    }
    i
}

/// Parses the contents of `#[serde( ... )]`.
fn parse_serde_attr(stream: TokenStream, field: &mut Field) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let key = ident_text(&toks[i]).unwrap_or_else(|| {
            panic!(
                "serde_derive: unsupported serde attribute token `{}`",
                toks[i]
            )
        });
        i += 1;
        let value = if i < toks.len() && is_punct(&toks[i], '=') {
            let lit = toks[i + 1].to_string();
            i += 2;
            Some(lit.trim_matches('"').to_string())
        } else {
            None
        };
        match (key.as_str(), value) {
            ("skip", None) => field.skip = true,
            ("default", v) => field.default = Some(v),
            ("with", Some(path)) => field.with = Some(path),
            (other, _) => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)` at `i`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if toks.get(i).and_then(ident_text).as_deref() == Some("pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0, None);
    i = skip_vis(&toks, i);
    let kw = ident_text(&toks[i]).expect("serde_derive: expected `struct` or `enum`");
    i += 1;
    let name = ident_text(&toks[i]).expect("serde_derive: expected item name");
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("serde_derive: generic types are not supported by the vendored derive");
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive: malformed enum body"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Advances past one type, returning the index just after it (at a
/// top-level `,` or the end). Tracks `<...>` nesting by angle depth.
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut field = Field::default();
        i = skip_attrs(&toks, i, Some(&mut field));
        i = skip_vis(&toks, i);
        field.name = ident_text(&toks[i]).expect("serde_derive: expected field name");
        i += 1;
        assert!(
            is_punct(&toks[i], ':'),
            "serde_derive: expected `:` after field name"
        );
        i = skip_type(&toks, i + 1);
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i, None);
        i = skip_vis(&toks, i);
        i = skip_type(&toks, i);
        n += 1;
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i, None);
        let name = ident_text(&toks[i]).expect("serde_derive: expected variant name");
        i += 1;
        let mut newtype = false;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    assert_eq!(
                        count_tuple_fields(g.stream()),
                        1,
                        "serde_derive: only newtype enum variants are supported"
                    );
                    newtype = true;
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde_derive: struct enum variants are not supported")
                }
                _ => {}
            }
        }
        if i < toks.len() && is_punct(&toks[i], '=') {
            panic!("serde_derive: explicit discriminants are not supported");
        }
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, newtype });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const SER_CUSTOM: &str = "<__S::Error as ::serde::ser::Error>::custom";
const DE_CUSTOM: &str = "<__D::Error as ::serde::de::Error>::custom";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut out = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                if f.skip {
                    continue;
                }
                let value_expr = match &f.with {
                    Some(path) => format!(
                        "{path}::serialize(&self.{fname}, ::serde::ValueSerializer)\
                         .map_err({SER_CUSTOM})?",
                        fname = f.name
                    ),
                    None => format!(
                        "::serde::to_value(&self.{fname}).map_err({SER_CUSTOM})?",
                        fname = f.name
                    ),
                };
                out.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{fname}\"), {value_expr}));\n",
                    fname = f.name
                ));
            }
            out.push_str("__serializer.serialize_value(::serde::Value::Map(__fields))\n");
            out
        }
        Kind::TupleStruct(1) => {
            "::serde::Serialize::serialize(&self.0, __serializer)\n".to_string()
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::to_value(&self.{i}).map_err({SER_CUSTOM})?"))
                .collect();
            format!(
                "__serializer.serialize_value(::serde::Value::Seq(::std::vec![{}]))\n",
                items.join(", ")
            )
        }
        Kind::UnitStruct => "__serializer.serialize_value(::serde::Value::Null)\n".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                if v.newtype {
                    arms.push_str(&format!(
                        "{name}::{vname}(__inner) => {{\n\
                         let __v = ::serde::to_value(__inner).map_err({SER_CUSTOM})?;\n\
                         __serializer.serialize_value(::serde::Value::Map(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), __v)]))\n}}\n",
                        vname = v.name
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{vname} => __serializer.serialize_value(\
                         ::serde::Value::Str(::std::string::String::from(\"{vname}\"))),\n",
                        vname = v.name
                    ));
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut out = format!(
                "let mut __map = match __deserializer.take_value()? {{\n\
                 ::serde::Value::Map(__m) => __m,\n\
                 _ => return ::core::result::Result::Err({DE_CUSTOM}(\
                 \"expected map for struct {name}\")),\n}};\n\
                 let mut __take = |__k: &str| -> ::core::option::Option<::serde::Value> {{\n\
                 __map.iter().position(|(__key, _)| __key == __k)\
                 .map(|__i| __map.swap_remove(__i).1)\n}};\n"
            );
            let mut inits = String::new();
            let mut uses_take = false;
            for f in fields {
                if f.skip {
                    let init = match &f.default {
                        Some(Some(path)) => format!("{path}()"),
                        _ => "::core::default::Default::default()".to_string(),
                    };
                    inits.push_str(&format!("{fname}: {init},\n", fname = f.name));
                    continue;
                }
                uses_take = true;
                let some_expr = match &f.with {
                    Some(path) => format!(
                        "{path}::deserialize(::serde::ValueDeserializer(__v))\
                         .map_err({DE_CUSTOM})?"
                    ),
                    None => format!("::serde::from_value(__v).map_err({DE_CUSTOM})?"),
                };
                let none_expr = match &f.default {
                    None => format!(
                        "return ::core::result::Result::Err({DE_CUSTOM}(\
                         \"missing field `{fname}` in {name}\"))",
                        fname = f.name
                    ),
                    Some(None) => "::core::default::Default::default()".to_string(),
                    Some(Some(path)) => format!("{path}()"),
                };
                inits.push_str(&format!(
                    "{fname}: match __take(\"{fname}\") {{\n\
                     ::core::option::Option::Some(__v) => {some_expr},\n\
                     ::core::option::Option::None => {none_expr},\n}},\n",
                    fname = f.name
                ));
            }
            if !uses_take {
                out.push_str("let _ = &mut __take;\n");
            }
            out.push_str(&format!(
                "::core::result::Result::Ok({name} {{\n{inits}}})\n"
            ));
            out
        }
        Kind::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(\
             ::serde::from_value(__deserializer.take_value()?).map_err({DE_CUSTOM})?))\n"
        ),
        Kind::TupleStruct(n) => {
            let mut out = format!(
                "let __items = match __deserializer.take_value()? {{\n\
                 ::serde::Value::Seq(__s) => __s,\n\
                 _ => return ::core::result::Result::Err({DE_CUSTOM}(\
                 \"expected sequence for tuple struct {name}\")),\n}};\n\
                 if __items.len() != {n} {{\n\
                 return ::core::result::Result::Err({DE_CUSTOM}(\
                 \"wrong tuple length for {name}\"));\n}}\n\
                 let mut __iter = __items.into_iter();\n"
            );
            let items: Vec<String> = (0..*n)
                .map(|_| {
                    format!("::serde::from_value(__iter.next().unwrap()).map_err({DE_CUSTOM})?")
                })
                .collect();
            out.push_str(&format!(
                "::core::result::Result::Ok({name}({}))\n",
                items.join(", ")
            ));
            out
        }
        Kind::UnitStruct => {
            format!(
                "let _ = __deserializer.take_value()?;\n\
                 ::core::result::Result::Ok({name})\n"
            )
        }
        Kind::Enum(variants) => {
            let units: Vec<&Variant> = variants.iter().filter(|v| !v.newtype).collect();
            let newtypes: Vec<&Variant> = variants.iter().filter(|v| v.newtype).collect();
            let mut out = String::from("match __deserializer.take_value()? {\n");
            if !units.is_empty() {
                let mut arms = String::new();
                for v in &units {
                    arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n",
                        vname = v.name
                    ));
                }
                out.push_str(&format!(
                    "::serde::Value::Str(__s) => match __s.as_str() {{\n{arms}\
                     __other => ::core::result::Result::Err({DE_CUSTOM}(::std::format!(\
                     \"unknown variant `{{__other}}` for {name}\"))),\n}},\n"
                ));
            }
            if !newtypes.is_empty() {
                let mut arms = String::new();
                for v in &newtypes {
                    arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                         ::serde::from_value(__v).map_err({DE_CUSTOM})?)),\n",
                        vname = v.name
                    ));
                }
                out.push_str(&format!(
                    "::serde::Value::Map(mut __m) if __m.len() == 1 => {{\n\
                     let (__k, __v) = __m.remove(0);\n\
                     match __k.as_str() {{\n{arms}\
                     __other => ::core::result::Result::Err({DE_CUSTOM}(::std::format!(\
                     \"unknown variant `{{__other}}` for {name}\"))),\n}}\n}},\n"
                ));
            }
            out.push_str(&format!(
                "_ => ::core::result::Result::Err({DE_CUSTOM}(\
                 \"unexpected value shape for enum {name}\")),\n}}\n"
            ));
            out
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n{body}}}\n}}\n"
    )
}
