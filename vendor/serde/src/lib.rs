//! Offline vendored subset of the `serde` API.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external `serde` crate is replaced by this in-tree implementation that is
//! signature-compatible with the slice of serde the workspace uses:
//!
//! - generic [`Serialize`] / [`Deserialize`] traits (so hand-written
//!   `#[serde(with = "module")]` adapters written against upstream serde
//!   compile unchanged),
//! - `#[derive(Serialize, Deserialize)]` via the companion `serde_derive`
//!   proc-macro (re-exported under the `derive` feature),
//! - the `ser::Error` / `de::Error` traits with `custom`.
//!
//! Unlike upstream's visitor-based data model, everything funnels through a
//! single self-describing [`Value`] tree. A [`Serializer`] receives a fully
//! built `Value`; a [`Deserializer`] hands one out. That is sufficient for
//! the JSON round-trips this workspace performs and keeps the surface small.

use std::collections::{BTreeMap, HashMap};
use std::fmt::{self, Display};
use std::hash::Hash;

/// Self-describing data tree — the entire data model of this serde subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Ordered key/value pairs (insertion order preserved).
    Map(Vec<(String, Value)>),
}

/// Serialization error helpers.
pub mod ser {
    use std::fmt::Display;

    /// Trait for serializer error types, mirroring `serde::ser::Error`.
    pub trait Error: Sized + std::error::Error {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization error helpers.
pub mod de {
    use std::fmt::Display;

    /// Trait for deserializer error types, mirroring `serde::de::Error`.
    pub trait Error: Sized + std::error::Error {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A sink that consumes one [`Value`] tree.
pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;

    /// Consumes the fully built value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A source that produces one [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    /// Yields the value to deserialize from.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Types convertible into the data model.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Types constructible from the data model.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Error produced by the built-in [`ValueSerializer`] / [`ValueDeserializer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError(pub String);

impl Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// The identity [`Serializer`]: returns the built [`Value`].
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// The identity [`Deserializer`]: yields the wrapped [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn take_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Serializes any `T: Serialize` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserializes any `T: Deserialize` from a [`Value`] tree.
pub fn from_value<T>(value: Value) -> Result<T, ValueError>
where
    T: for<'de> Deserialize<'de>,
{
    T::deserialize(ValueDeserializer(value))
}

fn type_error<E: de::Error>(expected: &str, got: &Value) -> E {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::I64(_) | Value::U64(_) => "integer",
        Value::F64(_) => "float",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    };
    E::custom(format!("expected {expected}, found {kind}"))
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::I64(*self as i64))
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::U64(*self as u64))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(*self as f64))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn collect_seq<'a, S, T, I>(serializer: S, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut out = Vec::new();
    for item in iter {
        out.push(
            item.serialize(ValueSerializer)
                .map_err(<S::Error as ser::Error>::custom)?,
        );
    }
    serializer.serialize_value(Value::Seq(out))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(self.$idx.serialize(ValueSerializer)
                        .map_err(<S::Error as ser::Error>::custom)?,)+
                ];
                serializer.serialize_value(Value::Seq(items))
            }
        }
    )*};
}
serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<K: Serialize, V: Serialize, S2> Serialize for HashMap<K, V, S2> {
    /// Maps serialize as a sequence of `[key, value]` pairs so non-string
    /// keys survive the trip through formats with string-only object keys.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for (k, v) in self {
            let pair = (k, v)
                .serialize(ValueSerializer)
                .map_err(<S::Error as ser::Error>::custom)?;
            out.push(pair);
        }
        serializer.serialize_value(Value::Seq(out))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for (k, v) in self {
            let pair = (k, v)
                .serialize(ValueSerializer)
                .map_err(<S::Error as ser::Error>::custom)?;
            out.push(pair);
        }
        serializer.serialize_value(Value::Seq(out))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(type_error("bool", &other)),
        }
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.take_value()?;
                let wide: i128 = match v {
                    Value::I64(i) => i as i128,
                    Value::U64(u) => u as i128,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => f as i128,
                    other => return Err(type_error("integer", &other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    <D::Error as de::Error>::custom(format!(
                        "integer {wide} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::F64(f) => Ok(f),
            Value::I64(i) => Ok(i as f64),
            Value::U64(u) => Ok(u as f64),
            // Non-finite floats serialize as null (JSON has no NaN literal).
            Value::Null => Ok(f64::NAN),
            other => Err(type_error("float", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(type_error("single-char string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(type_error("string", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            v => {
                let inner = T::deserialize(ValueDeserializer(v))
                    .map_err(<D::Error as de::Error>::custom)?;
                Ok(Some(inner))
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| {
                    T::deserialize(ValueDeserializer(v)).map_err(<D::Error as de::Error>::custom)
                })
                .collect(),
            other => Err(type_error("sequence", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        let len = items.len();
        items.try_into().map_err(|_| {
            <D::Error as de::Error>::custom(format!("expected {N} elements, got {len}"))
        })
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal, $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                let items = match deserializer.take_value()? {
                    Value::Seq(items) => items,
                    other => return Err(type_error("tuple sequence", &other)),
                };
                if items.len() != $len {
                    return Err(<De::Error as de::Error>::custom(format!(
                        "expected tuple of length {}, found {}", $len, items.len()
                    )));
                }
                let mut iter = items.into_iter();
                Ok(($(
                    $name::deserialize(ValueDeserializer(iter.next().unwrap()))
                        .map_err(|e| <De::Error as de::Error>::custom(e))?,
                )+))
            }
        }
    )*};
}
deserialize_tuple! {
    (1, T0)
    (2, T0, T1)
    (3, T0, T1, T2)
    (4, T0, T1, T2, T3)
    (5, T0, T1, T2, T3, T4)
}

impl<'de, K, V, S2> Deserialize<'de> for HashMap<K, V, S2>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S2: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let pairs: Vec<(K, V)> = Vec::deserialize(deserializer)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let pairs: Vec<(K, V)> = Vec::deserialize(deserializer)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_value::<u16>(to_value(&7u16).unwrap()).unwrap(), 7);
        assert_eq!(from_value::<i32>(to_value(&-3i32).unwrap()).unwrap(), -3);
        assert_eq!(from_value::<f64>(to_value(&1.5f64).unwrap()).unwrap(), 1.5);
        assert_eq!(from_value::<String>(to_value("hi").unwrap()).unwrap(), "hi");
        assert_eq!(from_value::<Option<u8>>(Value::Null).unwrap(), None);
    }

    #[test]
    fn nested_collections_round_trip() {
        let mut m: HashMap<Vec<usize>, HashMap<usize, u64>> = HashMap::new();
        m.insert(vec![1, 2], [(3usize, 4u64)].into_iter().collect());
        let back: HashMap<Vec<usize>, HashMap<usize, u64>> =
            from_value(to_value(&m).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn wrong_shape_is_an_error() {
        assert!(from_value::<u8>(Value::Str("x".into())).is_err());
        assert!(from_value::<Vec<u8>>(Value::Bool(true)).is_err());
        assert!(from_value::<u8>(Value::I64(300)).is_err());
    }
}
