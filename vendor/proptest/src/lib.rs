//! Offline vendored subset of the `proptest` API.
//!
//! Provides the slice of proptest this workspace's property tests use: the
//! [`Strategy`] trait with range / tuple / `prop::collection::vec`
//! strategies, the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros, and [`ProptestConfig`] with `with_cases`.
//!
//! Semantics differ from upstream in two deliberate ways: generation is
//! deterministic (seeded from the test function's name, so failures
//! reproduce run-to-run), and there is no shrinking — a failing case
//! reports its inputs via the standard assert message instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generation source used by [`proptest!`].
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Seeds the runner from a stable hash of the test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Element count for [`prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRunner};
        use rand::Rng;

        /// Strategy for `Vec`s whose elements come from `element`.
        pub struct VecStrategy<S: Strategy> {
            element: S,
            size: SizeRange,
        }

        /// `vec(element, len)` with `len` a count, range, or inclusive range.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let n = if self.size.lo + 1 >= self.size.hi_exclusive {
                    self.size.lo
                } else {
                    runner.rng().gen_range(self.size.lo..self.size.hi_exclusive)
                };
                (0..n).map(|_| self.element.generate(runner)).collect()
            }
        }
    }
}

/// The proptest prelude: everything the `proptest!` macro and typical
/// property tests need.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property-based test functions.
///
/// Supports the upstream surface used in this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]`-annotated
/// functions whose arguments are drawn from strategies via `arg in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@with_config ($cfg) $($rest)*}
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __runner = $crate::TestRunner::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __runner);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!{@with_config ($crate::ProptestConfig::default()) $($rest)*}
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 2usize..9, y in -1.5f64..1.5) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_bounds(
            xs in prop::collection::vec(0usize..5, 1..4),
            pairs in prop::collection::vec((0usize..8, 0.1f64..5.0), 0..12),
        ) {
            prop_assert!((1..4).contains(&xs.len()));
            prop_assert!(pairs.len() < 12);
            for (a, b) in pairs {
                prop_assert!(a < 8);
                prop_assert!((0.1..5.0).contains(&b));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn nested_vec_strategy_composes() {
        fn sequences(vocab: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
            prop::collection::vec(prop::collection::vec(0..vocab, 1..10), 1..20)
        }
        let mut runner = crate::TestRunner::deterministic("nested");
        let seqs = sequences(6).generate(&mut runner);
        assert!((1..20).contains(&seqs.len()));
        for s in seqs {
            assert!((1..10).contains(&s.len()));
            assert!(s.iter().all(|&t| t < 6));
        }
    }
}
