//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external `rand` crate is replaced by this in-tree implementation of the
//! slice of the 0.8 API the workspace actually uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, [`rngs::StdRng`] and [`rngs::SmallRng`],
//! and sampling helpers (`gen`, `gen_range`, `gen_bool`).
//!
//! The generator behind both named RNGs is xoshiro256++ seeded via
//! SplitMix64 — a different stream than upstream `StdRng` (ChaCha12), but of
//! comparable statistical quality for simulation workloads. All repo tests
//! assert statistical properties or run-to-run determinism, not exact
//! upstream streams, so the substitution is observationally safe here.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`]
/// (the stand-in for upstream's `Standard: Distribution<T>` bound).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`Rng::gen_range`] can sample uniformly from a bounded interval.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
///
/// A single blanket impl per range shape (mirroring upstream) so integer
/// literals in `gen_range(0..n)` infer their type from the use site.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_range(rng, start, end, true)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R, low: Self, high: Self, inclusive: bool,
            ) -> Self {
                let span = (high as i128)
                    .wrapping_sub(low as i128)
                    .wrapping_add(inclusive as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((low as i128) + v as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R, low: Self, high: Self, _inclusive: bool,
            ) -> Self {
                let u = <$t as StandardSample>::sample_standard(rng);
                low + (high - low) * u
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly (floats in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded RNG (xoshiro256++). Stands in for upstream's
    /// `StdRng`; same trait surface, different (but fixed) stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a generator
        /// mid-stream (upstream `StdRng` offers no such hook; this vendored
        /// generator does so resumable training can restore the exact
        /// stream position).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position captured by
        /// [`StdRng::state`]. An all-zero state (never produced by a live
        /// generator) is nudged the same way as in `from_seed`.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Small fast RNG; here identical to [`StdRng`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(StdRng);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(StdRng::from_seed(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs, (0..16).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn unit_floats_in_range_with_sane_mean() {
        let mut r = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000).map(|_| r.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let a = r.gen_range(3..9usize);
            assert!((3..9).contains(&a));
            let b = r.gen_range(0..=4u16);
            assert!(b <= 4);
            let c = r.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&c));
            let d = r.gen_range(-7i32..-3);
            assert!((-7..-3).contains(&d));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(13);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }
}
